"""Regression tests for the paper-pseudocode defects fixed in this repo.

Each test reproduces the concrete scenario in which implementing Figures
4-5 *verbatim* breaks (DESIGN.md §4b), and asserts the fixed behavior.
These scenarios were discovered by the property suite and the Experiment 2
reproduction; keep them deterministic so the defects can never sneak back.
"""

from __future__ import annotations

import pytest

from repro.core import (
    DgmcNetwork,
    JoinEvent,
    LeaveEvent,
    ProtocolConfig,
)
from repro.core.switch import DgmcSwitch
from repro.harness.figures import (
    EXP2_COMPUTE,
    EXP2_PER_HOP,
    _bursty_scenario,
)
from repro.sim.rng import RngRegistry
from repro.topo.generators import waxman_network


class TestWithdrawalScopeFix:
    """DESIGN.md deviation 2: withdrawal must not discard received candidates.

    Historical failure: Experiment 2 (WAN regime, dense burst), seed 1996,
    size 20, graph 1 -- switch 19's compute windows always overlapped new
    arrivals, every own proposal was withdrawn, and the verbatim line 29
    threw away the received winning proposals batch after batch, leaving
    switch 19 permanently split (proposer 3 vs proposer 1 elsewhere).
    """

    def test_dense_wan_burst_converges(self):
        reg = RngRegistry(1996).fork("size=20/graph=1")
        scenario = _bursty_scenario(20, 1, reg, EXP2_PER_HOP, EXP2_COMPUTE, "reg")
        config = ProtocolConfig(
            compute_time=scenario.compute_time,
            per_hop_delay=scenario.per_hop_delay,
        )
        dgmc = DgmcNetwork(scenario.net, config)
        dgmc.register_symmetric(1)
        t = 4 * scenario.round_length
        for sw in sorted(scenario.schedule.initial_members):
            dgmc.inject(JoinEvent(sw, 1), at=t)
            t += 4 * scenario.round_length
        dgmc.run()
        t0 = dgmc.sim.now + 4 * scenario.round_length
        for ev in scenario.schedule.events:
            event = JoinEvent(ev.switch, 1) if ev.join else LeaveEvent(ev.switch, 1)
            dgmc.inject(event, at=t0 + ev.time)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        # withdrawals definitely happened (the fix mattered in this run)
        withdrawn = sum(
            st.proposals_withdrawn
            for sw in dgmc.switches.values()
            for st in sw.states.values()
        )
        assert withdrawn > 0


class TestEqualStampTieBreak:
    """DESIGN.md deviation 3: equal-stamp proposals resolve by proposer id."""

    def test_beats_relation(self):
        beats = DgmcSwitch._beats
        # strictly newer event set always wins, regardless of proposer
        assert beats((2, 1), 9, (1, 1), 0)
        assert not beats((1, 1), 0, (2, 1), 9)
        # equal stamps: lower proposer wins
        assert beats((1, 1), 2, (1, 1), 5)
        assert not beats((1, 1), 5, (1, 1), 2)
        assert not beats((1, 1), 5, (1, 1), 5)

    def test_history_dependent_burst_agrees(self):
        """Historical failure: Experiment-1 style burst, seed 1996, n=20,
        graph 1 -- two switches proposed different trees (incremental
        algorithm, different histories) under the same timestamp, and
        last-arrival acceptance split the network."""
        import random

        rng = random.Random(41)
        net = waxman_network(20, rng)
        dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=1.0, per_hop_delay=0.05))
        dgmc.register_symmetric(1)  # default: history-dependent incremental
        for i, sw in enumerate(rng.sample(range(20), 6)):
            dgmc.inject(JoinEvent(sw, 1), at=50.0 * (i + 1))
        dgmc.run()
        # two simultaneous events from opposite corners of the network
        dgmc.inject(JoinEvent(0, 1), at=1000.0)
        dgmc.inject(JoinEvent(19, 1), at=1000.0)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        # every switch holds the same proposer for the same stamp
        proposers = {
            s.current_proposer for s in dgmc.states_for(1).values()
        }
        assert len(proposers) == 1


class TestTombstoneFix:
    """DESIGN.md deviation 4: destruction must not restart vector clocks.

    Historical failure (hypothesis workload (5, 0, 4, 1.0, 72)): a leave
    emptied the connection, some switches destroyed state while a re-join
    raced in, and the rebuilt zero clocks made every later LSA look stale
    to switches that kept memory -- permanent C disagreement.
    """

    def test_destroy_rejoin_race_converges(self):
        import random

        rng = random.Random(0)
        net = waxman_network(5, rng)
        dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
        dgmc.register_symmetric(1)
        # the historical event sequence: join, leave (empties), re-join
        # spaced about one expovariate gap apart so destruction and the
        # re-join LSA race across the network
        dgmc.inject(JoinEvent(4, 1), at=1.0)
        dgmc.inject(LeaveEvent(4, 1), at=1.8)
        dgmc.inject(JoinEvent(0, 1), at=2.1)
        dgmc.inject(JoinEvent(3, 1), at=2.2)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        state = dgmc.states_for(1)[0]
        assert state.member_set == frozenset({0, 3})
        state.installed.shared_tree.validate({0, 3})

    def test_tombstone_preserves_counts(self):
        from repro.topo.generators import ring_network

        dgmc = DgmcNetwork(
            ring_network(4), ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
        )
        dgmc.register_symmetric(1)
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(LeaveEvent(0, 1), at=50.0)  # destroys everywhere
        dgmc.run()
        assert not dgmc.states_for(1)
        # recreate: the new state resumes from the tombstone, not zero
        dgmc.inject(JoinEvent(0, 1), at=100.0)
        dgmc.run()
        state = dgmc.states_for(1)[2]
        assert state.received[0] == 3  # join + leave + join, never reset
        ok, detail = dgmc.agreement(1)
        assert ok, detail
