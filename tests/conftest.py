"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.sim.kernel import Simulator
from repro.topo.generators import grid_network, waxman_network


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xD61C)


@pytest.fixture
def small_waxman(rng):
    """A 20-switch connected Waxman graph (deterministic)."""
    return waxman_network(20, rng)


@pytest.fixture
def grid4x4():
    """A 4x4 grid with unit delays (easy to reason about by hand)."""
    return grid_network(4, 4)
