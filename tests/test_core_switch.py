"""Switch-level tests of the EventHandler / ReceiveLSA mechanics.

These drive small, hand-analyzable deployments through specific protocol
paths: single events, conflicting events, proposal withdrawal, deferral,
MC creation and destruction (Figure 2 / Figures 4-5 behaviors).
"""

from __future__ import annotations

import pytest

from repro.core import (
    DgmcNetwork,
    JoinEvent,
    LeaveEvent,
    LinkEvent,
    ProtocolConfig,
    Role,
)
from repro.core.lsa import McEvent
from repro.topo.generators import grid_network, ring_network


def deployment(net=None, **config_kw):
    config_kw.setdefault("compute_time", 1.0)
    config_kw.setdefault("per_hop_delay", 0.1)
    dgmc = DgmcNetwork(net or ring_network(4), ProtocolConfig(**config_kw))
    dgmc.register_symmetric(1)
    return dgmc


class TestSingleEvent:
    def test_one_computation_one_flood(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.run()
        assert dgmc.total_computations() == 1
        assert dgmc.mc_floodings() == 1
        assert dgmc.computation_log[0].switch == 0

    def test_all_switches_create_state_on_first_join(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(2, 1), at=1.0)
        dgmc.run()
        for x, sw in dgmc.switches.items():
            assert sw.has_connection(1)
            assert sw.states[1].member_set == frozenset({2})

    def test_event_lsa_carries_proposal_and_all_install(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.inject(JoinEvent(2, 1), at=50.0)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        state = dgmc.states_for(1)[1]
        tree = state.installed.shared_tree
        tree.validate({0, 2})

    def test_compute_time_respected(self):
        dgmc = deployment(compute_time=5.0)
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.run()
        # flood happens after the Tc window
        state = dgmc.states_for(1)[0]
        assert state.last_install_time == pytest.approx(6.0)


class TestConflictingEvents:
    def test_simultaneous_events_trigger_extra_work(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.inject(JoinEvent(2, 1), at=1.0)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        # both origins computed; consensus may need triggered proposals
        assert dgmc.total_computations() >= 2
        assert dgmc.mc_floodings() >= 2

    def test_conflicting_events_converge_to_union(self):
        dgmc = deployment()
        for sw in (0, 1, 2, 3):
            dgmc.inject(JoinEvent(sw, 1), at=1.0)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        assert dgmc.states_for(1)[0].member_set == frozenset({0, 1, 2, 3})

    def test_event_during_computation_withdraws_or_defers(self):
        # Switch 0's computation takes 10 time units; switch 2's event LSA
        # arrives mid-computation, so 0's EventHandler floods without a
        # proposal (deferral) and ReceiveLSA eventually proposes.
        dgmc = deployment(compute_time=10.0, per_hop_delay=0.1)
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.inject(JoinEvent(2, 1), at=1.5)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        switches = dgmc.switches
        deferred = sum(sw.triggered_lsas_flooded for sw in switches.values())
        withdrawn = sum(
            st.proposals_withdrawn
            for sw in switches.values()
            for st in sw.states.values()
        )
        # at least one switch had to fall back to the ReceiveLSA path
        assert deferred + withdrawn >= 1


class TestDestruction:
    def test_last_leave_destroys_state_everywhere(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.inject(JoinEvent(2, 1), at=20.0)
        dgmc.inject(LeaveEvent(0, 1), at=40.0)
        dgmc.inject(LeaveEvent(2, 1), at=60.0)
        dgmc.run()
        for sw in dgmc.switches.values():
            assert not sw.has_connection(1)
        ok, detail = dgmc.agreement(1)
        assert ok and "destroyed" in detail

    def test_connection_can_be_recreated(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.inject(LeaveEvent(0, 1), at=20.0)
        dgmc.inject(JoinEvent(3, 1), at=40.0)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        assert dgmc.states_for(1)[0].member_set == frozenset({3})


class TestLinkEvents:
    def test_link_event_does_not_change_membership(self):
        dgmc = deployment(net=ring_network(4))
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.inject(JoinEvent(1, 1), at=20.0)
        dgmc.run()
        members_before = dgmc.states_for(1)[2].member_set
        dgmc.inject(LinkEvent(0, 0, 1, up=False), at=40.0)
        dgmc.run()
        assert dgmc.states_for(1)[2].member_set == members_before

    def test_tree_reroutes_around_failed_link(self):
        dgmc = deployment(net=ring_network(4))
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.inject(JoinEvent(1, 1), at=20.0)
        dgmc.run()
        tree = dgmc.states_for(1)[0].installed.shared_tree
        assert (0, 1) in tree.edges
        dgmc.inject(LinkEvent(0, 0, 1, up=False), at=40.0)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        tree = dgmc.states_for(1)[0].installed.shared_tree
        assert (0, 1) not in tree.edges
        tree.validate({0, 1})

    def test_unaffected_connection_sees_no_mc_event(self):
        net = grid_network(2, 3)
        dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=1.0, per_hop_delay=0.1))
        dgmc.register_symmetric(1)
        dgmc.register_symmetric(2)
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.inject(JoinEvent(1, 1), at=20.0)  # conn 1 tree: edge (0,1)
        dgmc.inject(JoinEvent(4, 2), at=40.0)
        dgmc.inject(JoinEvent(5, 2), at=60.0)  # conn 2 tree: edge (4,5)
        dgmc.run()
        events_before = dgmc.mc_event_count
        # fail a link only connection 1 uses
        dgmc.inject(LinkEvent(0, 0, 1, up=False), at=80.0)
        dgmc.run()
        assert dgmc.mc_event_count == events_before + 1  # only conn 1 affected

    def test_link_recovery_silent_by_default(self):
        dgmc = deployment(net=ring_network(4))
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.inject(JoinEvent(1, 1), at=20.0)
        dgmc.inject(LinkEvent(0, 0, 1, up=False), at=40.0)
        dgmc.run()
        before = dgmc.mc_event_count
        dgmc.inject(LinkEvent(0, 0, 1, up=True), at=60.0)
        dgmc.run()
        assert dgmc.mc_event_count == before

    def test_link_recovery_reoptimizes_when_enabled(self):
        net = ring_network(4)
        dgmc = DgmcNetwork(
            net,
            ProtocolConfig(
                compute_time=1.0, per_hop_delay=0.1, reoptimize_on_link_up=True
            ),
        )
        dgmc.register_symmetric(1)
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.inject(JoinEvent(1, 1), at=20.0)
        dgmc.inject(LinkEvent(0, 0, 1, up=False), at=40.0)
        dgmc.run()
        dgmc.inject(LinkEvent(0, 0, 1, up=True), at=60.0)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        tree = dgmc.states_for(1)[2].installed.shared_tree
        assert tree.edges == frozenset({(0, 1)})  # direct link restored


class TestRoles:
    def test_asymmetric_join_roles_propagate(self):
        net = ring_network(4)
        dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=1.0, per_hop_delay=0.1))
        dgmc.register_asymmetric(1)
        dgmc.inject(JoinEvent(0, 1, role=Role.SENDER), at=1.0)
        dgmc.inject(JoinEvent(2, 1, role=Role.RECEIVER), at=20.0)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        state = dgmc.states_for(1)[3]
        assert state.members[0] == frozenset({"sender"})
        assert state.members[2] == frozenset({"receiver"})
        trees = state.installed.tree_map()
        assert list(trees) == [0]
        trees[0].validate({0, 2})

    def test_asymmetric_join_without_role_rejected(self):
        net = ring_network(4)
        dgmc = DgmcNetwork(net, ProtocolConfig())
        dgmc.register_asymmetric(1)
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        with pytest.raises(ValueError):
            dgmc.run()


class TestForwardingView:
    def test_forwarding_links_incident_only(self):
        dgmc = deployment(net=ring_network(4))
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.inject(JoinEvent(2, 1), at=20.0)
        dgmc.run()
        for x, sw in dgmc.switches.items():
            for edge in sw.forwarding_links(1):
                assert x in edge

    def test_forwarding_links_empty_without_state(self):
        dgmc = deployment()
        assert dgmc.switches[0].forwarding_links(1) == []


class TestRegistry:
    def test_unregistered_connection_rejected(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 99), at=1.0)
        with pytest.raises(KeyError):
            dgmc.run()

    def test_duplicate_registration_rejected(self):
        dgmc = deployment()
        with pytest.raises(ValueError):
            dgmc.register_symmetric(1)
