"""Tests for the experiment harness: trial runners, sweeps, rendering."""

from __future__ import annotations

import random

import pytest

from repro.harness.experiment import (
    run_brute_force_trial,
    run_dgmc_trial,
    run_mospf_trial,
)
from repro.harness.figures import (
    EXP1_COMPUTE,
    EXP1_PER_HOP,
    baseline_comparison,
    experiment1,
    experiment2,
    experiment3,
)
from repro.harness.report import render_comparison, render_rows
from repro.harness.sweeps import sweep
from repro.sim.rng import RngRegistry
from repro.topo.generators import waxman_network
from repro.workloads.membership import bursty_schedule, sparse_schedule
from repro.workloads.scenario import Scenario


def tiny_scenario(n=12, sparse=True, seed=3):
    rng = random.Random(seed)
    net = waxman_network(n, rng)
    if sparse:
        sched = sparse_schedule(n, rng, count=5, mean_gap=500.0)
    else:
        sched = bursty_schedule(n, rng, count=5, window=1.0)
    return Scenario(
        net=net,
        schedule=sched,
        compute_time=EXP1_COMPUTE,
        per_hop_delay=EXP1_PER_HOP,
        label="tiny",
    )


class TestTrialRunners:
    def test_dgmc_sparse_trial_near_unity(self):
        m = run_dgmc_trial(tiny_scenario(sparse=True))
        assert m.events == 5
        assert m.agreed
        assert m.computations_per_event <= 1.5
        assert m.floodings_per_event <= 1.5
        assert m.protocol == "dgmc"

    def test_dgmc_bursty_trial(self):
        m = run_dgmc_trial(tiny_scenario(sparse=False))
        assert m.events == 5
        assert m.agreed
        assert m.convergence_rounds > 0

    def test_brute_force_costs_n_per_event(self):
        sc = tiny_scenario(n=12, sparse=True)
        m = run_brute_force_trial(sc)
        assert m.computations_per_event == pytest.approx(12.0)
        assert m.agreed
        assert m.protocol == "brute-force"

    def test_mospf_costs_tree_size_per_event(self):
        sc = tiny_scenario(n=12, sparse=True)
        m = run_mospf_trial(sc)
        # senders = initial member (1); each event triggers computations at
        # every on-tree router: strictly more than D-GMC's ~1.
        assert m.computations_per_event > 1.5
        assert m.protocol == "mospf"

    def test_asymmetric_scenarios_supported(self):
        sc = tiny_scenario()
        sc.connection_type = "asymmetric"
        m = run_dgmc_trial(sc)
        assert m.agreed
        assert m.events == 5

    def test_unknown_connection_type_rejected(self):
        sc = tiny_scenario()
        sc.connection_type = "broadcast"
        with pytest.raises(ValueError):
            run_dgmc_trial(sc)

    def test_trials_reproducible(self):
        a = run_dgmc_trial(tiny_scenario(sparse=False))
        b = run_dgmc_trial(tiny_scenario(sparse=False))
        assert (a.computations, a.floodings, a.last_install_time) == (
            b.computations,
            b.floodings,
            b.last_install_time,
        )


class TestSweep:
    def test_rows_per_size(self):
        def factory(n, g, reg):
            return tiny_scenario(n=n, seed=reg.root_seed % 1000)

        rows = sweep((8, 12), 3, factory, run_dgmc_trial, seed=1)
        assert [r.size for r in rows] == [8, 12]
        assert all(len(r.trials) == 3 for r in rows)
        assert all(r.all_agreed for r in rows)

    def test_aggregates_exposed(self):
        def factory(n, g, reg):
            return tiny_scenario(n=n, seed=g)

        rows = sweep((10,), 3, factory, run_dgmc_trial)
        row = rows[0]
        assert row.computations_per_event.count == 3
        assert row.floodings_per_event.mean > 0


class TestFigureDrivers:
    def test_experiment1_smoke(self):
        rows = experiment1(sizes=(10,), graphs_per_size=2)
        assert rows[0].all_agreed
        assert rows[0].computations_per_event.mean >= 1.0

    def test_experiment2_smoke(self):
        rows = experiment2(sizes=(10,), graphs_per_size=2)
        assert rows[0].all_agreed

    def test_experiment3_near_unity(self):
        rows = experiment3(sizes=(10,), graphs_per_size=2)
        assert rows[0].all_agreed
        assert rows[0].computations_per_event.mean == pytest.approx(1.0, abs=0.3)
        assert rows[0].floodings_per_event.mean == pytest.approx(1.0, abs=0.3)

    def test_baseline_comparison_ordering(self):
        rows = baseline_comparison(sizes=(12,), graphs_per_size=2)
        row = rows[0]
        assert row.dgmc.mean < row.mospf.mean
        assert row.dgmc.mean < row.brute_force.mean
        assert row.brute_force.mean == pytest.approx(12.0)


class TestReport:
    def test_render_rows(self):
        rows = experiment3(sizes=(8,), graphs_per_size=2)
        text = render_rows(rows, "My Title")
        assert "My Title" in text
        assert "proposals/event" in text
        assert "    8 " in text

    def test_render_rows_without_convergence(self):
        rows = experiment3(sizes=(8,), graphs_per_size=2)
        text = render_rows(rows, "T", include_convergence=False)
        assert "convergence" not in text

    def test_render_comparison(self):
        rows = baseline_comparison(sizes=(8,), graphs_per_size=2)
        text = render_comparison(rows, "Versus")
        assert "D-GMC" in text and "MOSPF" in text and "brute-force" in text
