"""Tests for connection types, roles, and specs."""

from __future__ import annotations

import pytest

from repro.core.mc import ConnectionSpec, ConnectionType, Role, default_role
from repro.trees.algorithms import (
    RECEIVER,
    SENDER,
    SharedTreeAlgorithm,
    SourceTreesAlgorithm,
)


class TestRole:
    def test_both_expands(self):
        assert Role.BOTH.as_role_set() == frozenset({SENDER, RECEIVER})

    def test_single_roles(self):
        assert Role.SENDER.as_role_set() == frozenset({SENDER})
        assert Role.RECEIVER.as_role_set() == frozenset({RECEIVER})


class TestDefaultRole:
    def test_symmetric_is_both(self):
        assert default_role(ConnectionType.SYMMETRIC) is Role.BOTH

    def test_receiver_only_is_receiver(self):
        assert default_role(ConnectionType.RECEIVER_ONLY) is Role.RECEIVER

    def test_asymmetric_has_no_default(self):
        with pytest.raises(ValueError):
            default_role(ConnectionType.ASYMMETRIC)


class TestConnectionSpec:
    def test_default_algorithms(self):
        sym = ConnectionSpec(1, ConnectionType.SYMMETRIC)
        assert isinstance(sym.make_algorithm(), SharedTreeAlgorithm)
        asym = ConnectionSpec(2, ConnectionType.ASYMMETRIC)
        assert isinstance(asym.make_algorithm(), SourceTreesAlgorithm)

    def test_named_algorithm(self):
        spec = ConnectionSpec(1, ConnectionType.SYMMETRIC, algorithm="kmb")
        algo = spec.make_algorithm()
        assert isinstance(algo, SharedTreeAlgorithm)
        assert algo.method == "kmb"

    def test_algorithm_options(self):
        spec = ConnectionSpec(
            1,
            ConnectionType.RECEIVER_ONLY,
            algorithm="cbt",
            algorithm_options=(("core_strategy", "member-center"),),
        )
        algo = spec.make_algorithm()
        assert algo.method == "cbt"
        assert algo.core_strategy == "member-center"

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            ConnectionSpec(-1, ConnectionType.SYMMETRIC)

    def test_each_call_returns_fresh_instance(self):
        spec = ConnectionSpec(1, ConnectionType.SYMMETRIC)
        assert spec.make_algorithm() is not spec.make_algorithm()
