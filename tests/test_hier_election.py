"""Tests for group-leader election / failover in hierarchical D-GMC.

The authors' companion work ("Group Leader Election under Link-State
Routing") addresses exactly this: the area leader is derived from shared
link-state knowledge, so when a border switch dies every survivor elects
the same replacement deterministically.
"""

from __future__ import annotations

import random

import pytest

from repro.core import ProtocolConfig
from repro.hier import AreaPlan, HierDgmcNetwork
from repro.topo.generators import clustered_network


def deployment(seed=9, clusters=3, size=8, inter_links=2):
    rng = random.Random(seed)
    net, assignment = clustered_network(
        clusters, size, rng, inter_links_per_pair=inter_links
    )
    plan = AreaPlan(net, assignment)
    hier = HierDgmcNetwork(
        plan, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
    )
    hier.register_symmetric(1)
    return plan, hier


def area_with_spare_border(plan):
    """An area with >= 2 borders (so failover has a candidate)."""
    for a in plan.area_ids:
        if len(plan.area(a).borders) >= 2:
            return a
    pytest.skip("no area with two borders in this topology")


class TestElection:
    def test_initial_leader_is_smallest_live_border(self):
        plan, hier = deployment()
        a = plan.area_ids[0]
        assert hier._elect_leader(a) == plan.area(a).borders[0]

    def test_election_skips_dead_borders(self):
        plan, hier = deployment()
        a = area_with_spare_border(plan)
        borders = plan.area(a).borders
        hier.dead_borders.add(borders[0])
        assert hier._elect_leader(a) == borders[1]

    def test_election_none_when_all_borders_dead(self):
        plan, hier = deployment()
        a = plan.area_ids[0]
        hier.dead_borders.update(plan.area(a).borders)
        assert hier._elect_leader(a) is None


class TestFailover:
    def test_leader_failure_promotes_next_border(self):
        plan, hier = deployment()
        a = area_with_spare_border(plan)
        borders = plan.area(a).borders
        # put a real member in the area (not a border) and another area
        member = next(
            x for x in plan.net.switches()
            if plan.area_of(x) == a and x not in borders
        )
        other_area = next(b for b in plan.area_ids if b != a)
        other_member = next(
            x for x in plan.net.switches() if plan.area_of(x) == other_area
        )
        hier.inject_join(member, 1, at=10.0)
        hier.inject_join(other_member, 1, at=30.0)
        hier.run()
        conn = hier.connections[1]
        assert conn.acting_leader[a] == borders[0]

        hier.inject_border_failure(borders[0], at=100.0)
        hier.run()
        assert conn.acting_leader[a] == borders[1]
        ok, detail = hier.agreement(1)
        assert ok, detail
        # the new leader represents the area on the backbone
        bb_states = hier.backbone_protocol.states_for(1)
        live_bb = {
            x: s
            for x, s in bb_states.items()
            if hier.plan.backbone_to_global[x] not in hier.dead_borders
        }
        members = live_bb[min(live_bb)].member_set
        assert hier.plan.backbone_to_local[borders[1]] in members

    def test_non_leader_border_failure_keeps_leader(self):
        plan, hier = deployment()
        a = area_with_spare_border(plan)
        borders = plan.area(a).borders
        member = next(
            x for x in plan.net.switches()
            if plan.area_of(x) == a and x not in borders
        )
        hier.inject_join(member, 1, at=10.0)
        hier.run()
        conn = hier.connections[1]
        leader_before = conn.acting_leader[a]
        victim = next(b for b in borders if b != leader_before)
        hier.inject_border_failure(victim, at=100.0)
        hier.run()
        assert conn.acting_leader[a] == leader_before

    def test_double_failure_is_idempotent(self):
        plan, hier = deployment()
        a = area_with_spare_border(plan)
        b0 = plan.area(a).borders[0]
        hier.inject_border_failure(b0, at=10.0)
        hier.inject_border_failure(b0, at=20.0)
        hier.run()
        assert hier.dead_borders == {b0}

    def test_non_border_failure_rejected(self):
        plan, hier = deployment()
        a = plan.area_ids[0]
        non_border = next(
            x for x in plan.net.switches()
            if plan.area_of(x) == a and x not in plan.area(a).borders
        )
        with pytest.raises(ValueError, match="border"):
            hier.inject_border_failure(non_border, at=10.0)

    def test_members_still_stitched_after_failover(self):
        plan, hier = deployment(seed=11)
        a = area_with_spare_border(plan)
        borders = plan.area(a).borders
        members = [
            x for x in plan.net.switches()
            if plan.area_of(x) == a and x not in borders
        ][:2]
        other_area = next(b for b in plan.area_ids if b != a)
        other = next(
            x for x in plan.net.switches()
            if plan.area_of(x) == other_area
            and x not in plan.area(other_area).borders
        )
        for i, sw in enumerate(members + [other]):
            hier.inject_join(sw, 1, at=20.0 * (i + 1))
        hier.run()
        hier.inject_border_failure(borders[0], at=200.0)
        hier.run()
        ok, detail = hier.agreement(1)
        assert ok, detail
