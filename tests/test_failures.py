"""Tests for failure injection and long-run fault tolerance (Section 6)."""

from __future__ import annotations

import random

import pytest

from repro.core import DgmcNetwork, JoinEvent, ProtocolConfig
from repro.dataplane import ForwardingEngine, McPacket
from repro.topo.generators import grid_network, waxman_network
from repro.workloads.failures import FailureInjector


def brute_force_safe_candidates(net):
    """The old O(E * (V + E)) selection: probe each removal on a copy."""
    safe = []
    for link in net.links():
        probe = net.copy()
        probe.set_link_state(*link.key, up=False)
        if probe.is_connected():
            safe.append(link.key)
    return safe


def deployment(rng, n=25, reoptimize=True):
    net = waxman_network(n, rng)
    dgmc = DgmcNetwork(
        net,
        ProtocolConfig(
            compute_time=0.5, per_hop_delay=0.05, reoptimize_on_link_up=reoptimize
        ),
    )
    dgmc.register_symmetric(1)
    members = rng.sample(range(n), 6)
    for i, sw in enumerate(members):
        dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
    dgmc.run()
    return dgmc, members


class TestInjector:
    def test_single_cycle_fails_and_repairs(self, rng):
        dgmc, _ = deployment(rng)
        injector = FailureInjector(dgmc, rng)
        injector.schedule_cycle(fail_at=200.0, repair_after=50.0)
        dgmc.run()
        assert injector.failures_injected == 1
        assert injector.repairs_completed == 1
        record = injector.records[0]
        assert record.repaired_at == pytest.approx(record.failed_at + 50.0)
        assert dgmc.net.link(*record.edge).up

    def test_permanent_failure(self, rng):
        dgmc, _ = deployment(rng)
        injector = FailureInjector(dgmc, rng)
        injector.schedule_cycle(fail_at=200.0, repair_after=None)
        dgmc.run()
        assert injector.repairs_completed == 0
        assert not dgmc.net.link(*injector.records[0].edge).up

    def test_network_stays_connected_by_default(self, rng):
        dgmc, _ = deployment(rng)
        injector = FailureInjector(dgmc, rng)
        injector.schedule_campaign(start=200.0, count=8, mean_gap=100.0)
        dgmc.run()
        assert dgmc.net.is_connected()

    def test_campaign_is_reproducible(self):
        def run_once():
            rng = random.Random(4)
            dgmc, _ = deployment(rng)
            injector = FailureInjector(dgmc, rng)
            injector.schedule_campaign(
                start=200.0, count=5, mean_gap=80.0, mean_downtime=40.0
            )
            dgmc.run()
            return [(r.edge, r.failed_at, r.repaired_at) for r in injector.records]

        assert run_once() == run_once()


class TestSafeCandidates:
    """The bridge-based selection must match the old per-link probing."""

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force_probing(self, seed):
        rng = random.Random(seed)
        dgmc, _ = deployment(rng, n=20)
        injector = FailureInjector(dgmc, rng)
        assert sorted(injector._safe_candidates()) == sorted(
            brute_force_safe_candidates(dgmc.net)
        )

    def test_matches_brute_force_after_failures(self, rng):
        """Mid-campaign (some links already down) the sets still agree."""
        dgmc, _ = deployment(rng, n=20)
        injector = FailureInjector(dgmc, rng)
        injector.schedule_campaign(start=200.0, count=5, mean_gap=60.0)
        dgmc.run()
        assert sorted(injector._safe_candidates()) == sorted(
            brute_force_safe_candidates(dgmc.net)
        )

    def test_every_link_is_a_bridge_on_a_line(self, rng):
        net = grid_network(1, 5)
        dgmc = DgmcNetwork(net, ProtocolConfig())
        injector = FailureInjector(dgmc, rng)
        assert injector._safe_candidates() == []
        assert brute_force_safe_candidates(net) == []

    def test_disconnected_network_has_no_candidates(self, rng):
        """Matches the old probing: is_connected() fails for every probe."""
        net = grid_network(1, 5)
        net.set_link_state(1, 2, up=False)
        dgmc = DgmcNetwork(net, ProtocolConfig())
        injector = FailureInjector(dgmc, rng)
        assert injector._safe_candidates() == []

    def test_allow_partition_returns_all_up_links(self, rng):
        net = grid_network(1, 5)
        dgmc = DgmcNetwork(net, ProtocolConfig())
        injector = FailureInjector(dgmc, rng, allow_partition=True)
        up = sorted(link.key for link in net.links())
        assert sorted(injector._safe_candidates()) == up


class TestAllowPartition:
    """Degradation path: failures may disconnect the network."""

    def line_deployment(self, rng):
        # 0-1-2-3-4-5 line: every link is a bridge, so only
        # allow_partition=True can ever fire a failure here.
        net = grid_network(1, 6)
        dgmc = DgmcNetwork(
            net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
        )
        dgmc.register_symmetric(1)
        for i, sw in enumerate((0, 2, 5)):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        return dgmc

    def test_default_injector_never_fires_on_a_line(self, rng):
        dgmc = self.line_deployment(rng)
        injector = FailureInjector(dgmc, rng)
        injector.schedule_campaign(start=100.0, count=5, mean_gap=50.0)
        dgmc.run()
        assert injector.failures_injected == 0
        assert dgmc.net.is_connected()

    def test_partitioning_failure_degrades_gracefully(self, rng):
        """A bridge failure partitions the net; each side keeps serving."""
        dgmc = self.line_deployment(rng)
        injector = FailureInjector(dgmc, rng, allow_partition=True)
        injector.schedule_cycle(fail_at=100.0, repair_after=None)
        dgmc.run()  # must not raise
        assert injector.failures_injected == 1
        assert not dgmc.net.is_connected()
        # The detector's side recomputed: its trees live entirely on up
        # links (unreachable members pruned instead of wedging).  The far
        # side never hears the new proposal -- the flood cannot cross the
        # cut -- so it retains the pre-failure tree: graceful staleness,
        # not a crash.
        detector = injector.records[0].edge[0]
        near_side = set(dgmc.net.hop_distances(detector))
        up_edges = {link.key for link in dgmc.net.links()}
        saw_stale = False
        for switch, state in dgmc.states_for(1).items():
            if state.installed is None:
                continue
            for _, tree in state.installed.trees:
                assert tree.is_tree()
                if switch in near_side:
                    assert tree.edges <= up_edges
                else:
                    saw_stale = saw_stale or not (tree.edges <= up_edges)
        assert saw_stale

    def test_repair_after_partition_restores_agreement(self, rng):
        dgmc = self.line_deployment(rng)
        injector = FailureInjector(dgmc, rng, allow_partition=True)
        injector.schedule_cycle(fail_at=100.0, repair_after=40.0)
        dgmc.run()
        assert injector.repairs_completed == 1
        assert dgmc.net.is_connected()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        tree = dgmc.states_for(1)[0].installed.shared_tree
        tree.validate({0, 2, 5})


class TestFaultTolerance:
    def test_protocol_survives_failure_repair_churn(self, rng):
        """Sustained failure/repair cycles: agreement + valid trees hold."""
        dgmc, members = deployment(rng)
        injector = FailureInjector(dgmc, rng)
        injector.schedule_campaign(
            start=200.0, count=10, mean_gap=60.0, mean_downtime=30.0
        )
        dgmc.run()
        assert injector.failures_injected == 10
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        state = dgmc.states_for(1)[0]
        tree = state.installed.shared_tree
        tree.validate(members)
        up_edges = {link.key for link in dgmc.net.links()}
        assert tree.edges <= up_edges

    def test_delivery_recovers_after_each_failure(self, rng):
        dgmc, members = deployment(rng)
        injector = FailureInjector(dgmc, rng)
        engine = ForwardingEngine(dgmc)
        t = 300.0
        for _ in range(5):
            injector.schedule_cycle(fail_at=t, repair_after=None)
            # send a probe well after reconvergence
            engine.send(McPacket(members[0], 1), at=t + 50.0)
            t += 100.0
        dgmc.run()
        assert engine.report.packets == 5
        assert engine.report.mean_delivery_ratio == 1.0

    def test_reoptimize_off_still_converges(self, rng):
        dgmc, members = deployment(rng, reoptimize=False)
        injector = FailureInjector(dgmc, rng)
        injector.schedule_campaign(
            start=200.0, count=6, mean_gap=80.0, mean_downtime=40.0
        )
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
