"""Tests for failure injection and long-run fault tolerance (Section 6)."""

from __future__ import annotations

import random

import pytest

from repro.core import DgmcNetwork, JoinEvent, ProtocolConfig
from repro.dataplane import ForwardingEngine, McPacket
from repro.topo.generators import waxman_network
from repro.workloads.failures import FailureInjector


def deployment(rng, n=25, reoptimize=True):
    net = waxman_network(n, rng)
    dgmc = DgmcNetwork(
        net,
        ProtocolConfig(
            compute_time=0.5, per_hop_delay=0.05, reoptimize_on_link_up=reoptimize
        ),
    )
    dgmc.register_symmetric(1)
    members = rng.sample(range(n), 6)
    for i, sw in enumerate(members):
        dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
    dgmc.run()
    return dgmc, members


class TestInjector:
    def test_single_cycle_fails_and_repairs(self, rng):
        dgmc, _ = deployment(rng)
        injector = FailureInjector(dgmc, rng)
        injector.schedule_cycle(fail_at=200.0, repair_after=50.0)
        dgmc.run()
        assert injector.failures_injected == 1
        assert injector.repairs_completed == 1
        record = injector.records[0]
        assert record.repaired_at == pytest.approx(record.failed_at + 50.0)
        assert dgmc.net.link(*record.edge).up

    def test_permanent_failure(self, rng):
        dgmc, _ = deployment(rng)
        injector = FailureInjector(dgmc, rng)
        injector.schedule_cycle(fail_at=200.0, repair_after=None)
        dgmc.run()
        assert injector.repairs_completed == 0
        assert not dgmc.net.link(*injector.records[0].edge).up

    def test_network_stays_connected_by_default(self, rng):
        dgmc, _ = deployment(rng)
        injector = FailureInjector(dgmc, rng)
        injector.schedule_campaign(start=200.0, count=8, mean_gap=100.0)
        dgmc.run()
        assert dgmc.net.is_connected()

    def test_campaign_is_reproducible(self):
        def run_once():
            rng = random.Random(4)
            dgmc, _ = deployment(rng)
            injector = FailureInjector(dgmc, rng)
            injector.schedule_campaign(
                start=200.0, count=5, mean_gap=80.0, mean_downtime=40.0
            )
            dgmc.run()
            return [(r.edge, r.failed_at, r.repaired_at) for r in injector.records]

        assert run_once() == run_once()


class TestFaultTolerance:
    def test_protocol_survives_failure_repair_churn(self, rng):
        """Sustained failure/repair cycles: agreement + valid trees hold."""
        dgmc, members = deployment(rng)
        injector = FailureInjector(dgmc, rng)
        injector.schedule_campaign(
            start=200.0, count=10, mean_gap=60.0, mean_downtime=30.0
        )
        dgmc.run()
        assert injector.failures_injected == 10
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        state = dgmc.states_for(1)[0]
        tree = state.installed.shared_tree
        tree.validate(members)
        up_edges = {link.key for link in dgmc.net.links()}
        assert tree.edges <= up_edges

    def test_delivery_recovers_after_each_failure(self, rng):
        dgmc, members = deployment(rng)
        injector = FailureInjector(dgmc, rng)
        engine = ForwardingEngine(dgmc)
        t = 300.0
        for _ in range(5):
            injector.schedule_cycle(fail_at=t, repair_after=None)
            # send a probe well after reconvergence
            engine.send(McPacket(members[0], 1), at=t + 50.0)
            t += 100.0
        dgmc.run()
        assert engine.report.packets == 5
        assert engine.report.mean_delivery_ratio == 1.0

    def test_reoptimize_off_still_converges(self, rng):
        dgmc, members = deployment(rng, reoptimize=False)
        injector = FailureInjector(dgmc, rng)
        injector.schedule_campaign(
            start=200.0, count=6, mean_gap=80.0, mean_downtime=40.0
        )
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
