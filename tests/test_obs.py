"""The observability layer: tracer, metrics registry, attach plumbing, profiler."""

from __future__ import annotations

import json
import pathlib
import warnings

import pytest

from repro.core import DgmcNetwork, JoinEvent, ProtocolConfig
from repro.metrics import TrialMetrics
from repro.obs import attach
from repro.obs.metrics import MetricsRegistry, merge_sum
from repro.obs.profile import PHASE_ORDER, PhaseBreakdown, run_profile
from repro.obs.tracer import (
    JsonlSink,
    RingBufferSink,
    TraceEvent,
    Tracer,
    get_tracer,
    use_tracer,
)
from repro.sim import Simulator
from repro.topo.generators import ring_network
from repro.trace import build_timeline

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_trace.json"


def ring_deployment(record_history: bool = False) -> DgmcNetwork:
    """The deterministic two-join scenario shared by the trace tests."""
    dgmc = DgmcNetwork(
        ring_network(6), ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
    )
    dgmc.fabric.record_history = record_history
    dgmc.register_symmetric(1)
    dgmc.inject(JoinEvent(0, 1), at=10.0)
    dgmc.inject(JoinEvent(3, 1), at=30.0)
    return dgmc


def traced_run(dgmc: DgmcNetwork) -> Tracer:
    tracer = Tracer(enabled=True)
    tracer.add_sink(RingBufferSink())
    with use_tracer(tracer):
        dgmc.run()
    return tracer


class TestSpans:
    def test_nesting_emits_in_exit_order_and_partitions_self_time(self):
        tracer = Tracer(enabled=True)
        ring = tracer.add_sink(RingBufferSink())
        with tracer.span("outer", cat="a"):
            with tracer.span("inner", cat="b"):
                pass
        assert [e.name for e in ring.events()] == ["inner", "outer"]
        outer = ring.events()[1]
        inner = ring.events()[0]
        # Self time (duration minus enclosed spans) partitions the outer
        # span exactly: a + b == outer duration, b == inner duration.
        assert tracer.phase_self["b"] == pytest.approx(inner.dur / 1e6)
        assert tracer.phase_self["a"] + tracer.phase_self["b"] == pytest.approx(
            outer.dur / 1e6
        )
        assert tracer.phase_self["a"] >= 0.0

    def test_same_category_accumulates(self):
        tracer = Tracer(enabled=True)
        for _ in range(3):
            with tracer.span("s", cat="c"):
                pass
        assert tracer.phase_self["c"] > 0.0
        assert set(tracer.phase_breakdown()) == {"c"}

    def test_span_carries_both_clocks(self):
        tracer = Tracer(enabled=True)
        ring = tracer.add_sink(RingBufferSink())
        with tracer.span("first", cat="c", sim_time=42.5):
            pass
        with tracer.span("second", cat="c", sim_time=41.0):
            pass
        first, second = ring.events()
        # Wall clock: microseconds from the tracer epoch, monotone.
        assert 0.0 <= first.ts <= second.ts
        assert first.dur >= 0.0
        # Sim clock: carried verbatim (may run against the wall clock).
        assert first.sim_ts == 42.5 and second.sim_ts == 41.0
        chrome = first.to_chrome()
        assert chrome["ts"] == first.ts
        assert chrome["args"]["sim_time"] == 42.5

    def test_span_args_mutable_until_exit(self):
        tracer = Tracer(enabled=True)
        ring = tracer.add_sink(RingBufferSink())
        with tracer.span("flood", cat="flood", fanout=0) as span:
            span.args["fanout"] = 7
        assert ring.events()[0].args["fanout"] == 7

    def test_instant_event(self):
        tracer = Tracer(enabled=True)
        ring = tracer.add_sink(RingBufferSink())
        tracer.instant("withdraw", cat="arbitration", tid=3, sim_time=9.0, conn=1)
        [event] = ring.events()
        assert event.ph == "i" and event.tid == 3
        assert event.to_chrome()["s"] == "t"

    def test_disabled_tracer_hot_path_emits_nothing(self):
        tracer = Tracer(enabled=False)
        ring = tracer.add_sink(RingBufferSink())
        with use_tracer(tracer):
            sim = Simulator()
            sim.schedule(1.0, lambda: None)
            sim.run()
        assert len(ring) == 0 and tracer.events_emitted == 0


class TestRingBufferSink:
    def test_eviction_keeps_newest_and_counts(self):
        sink = RingBufferSink(capacity=4)
        for i in range(6):
            sink.emit(TraceEvent(name=f"e{i}", cat="c", ph="X", ts=float(i)))
        assert len(sink) == 4
        assert sink.evicted == 2
        assert [e.name for e in sink.events()] == ["e2", "e3", "e4", "e5"]

    def test_eviction_reported_in_chrome_metadata(self):
        tracer = Tracer(enabled=True)
        sink = tracer.add_sink(RingBufferSink(capacity=2))
        for _ in range(5):
            with tracer.span("s", cat="c"):
                pass
        assert tracer.chrome_trace()["metadata"]["evicted_events"] == sink.evicted == 3


class TestChromeTraceSchema:
    def test_export_is_valid_trace_event_json(self, tmp_path):
        dgmc = ring_deployment()
        tracer = traced_run(dgmc)
        out = tmp_path / "trace.json"
        written = tracer.export_chrome(str(out))
        trace = json.loads(out.read_text())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert len(events) == written + 1  # + process_name metadata
        assert events[0]["ph"] == "M" and events[0]["name"] == "process_name"
        for event in events:
            assert isinstance(event["name"], str) and event["name"]
            assert event["ph"] in {"X", "i", "M"}
            assert isinstance(event["ts"], float) and event["ts"] >= 0.0
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            elif event["ph"] == "i":
                assert event["s"] == "t"
        names = {e["name"] for e in events}
        assert {"dispatch", "dijkstra", "compute", "install", "flood"} <= names

    def test_protocol_spans_use_switch_tids(self):
        tracer = traced_run(ring_deployment())
        computes = [e for e in tracer.events() if e.name == "compute"]
        assert computes and all(0 <= e.tid < 6 for e in computes)
        floods = [e for e in tracer.events() if e.name == "flood"]
        assert all(e.args.get("fanout", 0) > 0 for e in floods)


class TestJsonlSink:
    def test_one_chrome_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(enabled=True)
        sink = tracer.add_sink(JsonlSink(str(path)))
        with tracer.span("s", cat="c", sim_time=1.0):
            pass
        tracer.instant("i", cat="c")
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        span, instant = (json.loads(line) for line in lines)
        assert span["name"] == "s" and span["ph"] == "X"
        assert instant["name"] == "i" and instant["ph"] == "i"


class TestGoldenTrace:
    def test_fixed_seed_trace_matches_committed_golden(self):
        """The deterministic projection of the traced two-join scenario.

        Wall times vary run to run; the *sequence* of emitted events --
        names, categories, switch tids, simulated timestamps -- is fully
        deterministic (DESIGN.md invariant 7) and pinned here.  Refresh
        with ``python tests/data/regen_golden_trace.py`` when the
        instrumentation points intentionally change.
        """
        tracer = traced_run(ring_deployment())
        events = tracer.events()
        projection = {
            "kernel_events": sum(1 for e in events if e.cat == "kernel"),
            "events": [
                [e.name, e.cat, e.tid, e.sim_ts]
                for e in events
                if e.cat != "kernel"
            ],
        }
        assert projection == json.loads(GOLDEN_PATH.read_text())


class TestMetricsInstruments:
    def test_counter_is_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value == 3.0

    def test_histogram_buckets_and_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1, 4))
        for v in (0.5, 3, 100):
            h.observe(v)
        assert h.cumulative() == [(1.0, 1), (4.0, 2), (float("inf"), 3)]
        assert h.mean == pytest.approx(103.5 / 3)

    def test_get_or_create_is_idempotent_but_type_strict(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_merge_sum(self):
        assert merge_sum([{"a": 1.0, "b": 2.0}, {"a": 3.0, "c": 1.0}]) == {
            "a": 4.0,
            "b": 2.0,
            "c": 1.0,
        }


class TestSnapshotDelta:
    def test_counters_subtract_gauges_report_current(self):
        reg = MetricsRegistry()
        c, g, h = reg.counter("c"), reg.gauge("g"), reg.histogram("h", buckets=(1,))
        c.inc(2)
        g.set(5)
        h.observe(1)
        snap = reg.snapshot()
        assert snap == {"c": 2.0, "g": 5.0, "h_count": 1.0, "h_sum": 1.0}
        c.inc(3)
        g.set(1)
        h.observe(4)
        assert reg.delta(snap) == {"c": 3.0, "g": 1.0, "h_count": 1.0, "h_sum": 4.0}

    def test_collectors_run_before_every_snapshot(self):
        reg = MetricsRegistry()
        source = {"n": 0}
        reg.register_collector(
            lambda r: r.counter("mirrored_total").set_total(source["n"])
        )
        assert reg.snapshot()["mirrored_total"] == 0.0
        source["n"] = 7
        assert reg.snapshot()["mirrored_total"] == 7.0


class TestPrometheusText:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", "total requests").inc(3)
        reg.gauge("depth").set(2.5)
        h = reg.histogram("latency", "latencies", buckets=(1, 2))
        h.observe(0.5)
        h.observe(5)
        text = reg.to_prometheus()
        assert "# HELP requests_total total requests" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text
        assert "depth 2.5" in text
        assert "# TYPE latency histogram" in text
        assert 'latency_bucket{le="1"} 1' in text
        assert 'latency_bucket{le="2"} 1' in text
        assert 'latency_bucket{le="+Inf"} 2' in text
        assert "latency_sum 5.5" in text
        assert "latency_count 2" in text
        assert text.endswith("\n")


class TestNetworkMetrics:
    @pytest.fixture(scope="class")
    def run(self):
        dgmc = ring_deployment()
        snap0 = dgmc.metrics.snapshot()
        dgmc.run()
        return dgmc, snap0

    def test_delta_tracks_the_protocol_counters(self, run):
        dgmc, snap0 = run
        delta = dgmc.metrics.delta(snap0)
        assert delta[attach.COMPUTATIONS] == dgmc.total_computations() > 0
        assert delta[attach.FLOOD_OPERATIONS] == dgmc.fabric.total_floods > 0
        assert delta[attach.LSA_DELIVERIES] == dgmc.fabric.delivery_count > 0
        assert delta[attach.EVENTS_DISPATCHED] == dgmc.sim.events_dispatched > 0
        assert delta[attach.DIJKSTRA_RUNS] > 0

    def test_spf_cache_stats_reads_the_registry(self, run):
        dgmc, _ = run
        stats = dgmc.spf_cache_stats()
        snap = dgmc.metrics.snapshot()
        assert stats.hits == int(snap[attach.SPF_HITS])
        assert stats.misses == int(snap[attach.SPF_MISSES])
        assert stats.invalidations == int(snap[attach.SPF_INVALIDATIONS])
        assert stats.full_runs == int(snap[attach.SPF_FULL_RUNS])

    def test_prometheus_dump_covers_the_stack(self, run):
        dgmc, _ = run
        text = dgmc.metrics.to_prometheus()
        assert "# TYPE spf_cache_hits_total counter" in text
        assert "# TYPE flood_fanout histogram" in text
        assert "flood_hops_bucket" in text  # per_hop_delay was configured
        assert "sim_events_dispatched_total" in text

    def test_trial_metrics_properties_read_the_sample_names(self):
        tm = TrialMetrics(
            events=4,
            computations=4,
            floodings=4,
            metrics={
                attach.DIJKSTRA_RUNS: 7,
                attach.SPF_HITS: 9,
                attach.SPF_MISSES: 3,
                attach.SPF_INVALIDATIONS: 2,
            },
        )
        assert tm.dijkstra_runs == 7
        assert (tm.spf_hits, tm.spf_misses, tm.spf_invalidations) == (9, 3, 2)
        assert tm.spf_hit_rate == 0.75
        empty = TrialMetrics(events=0, computations=0, floodings=0)
        assert empty.dijkstra_runs == 0 and empty.spf_hit_rate == 0.0


class TestTimelineWarning:
    def test_warns_when_history_was_never_recorded(self):
        dgmc = ring_deployment(record_history=False)
        dgmc.run()
        with pytest.warns(UserWarning, match="record_history"):
            entries = build_timeline(dgmc)
        assert not any(e.kind == "flood" for e in entries)

    def test_silent_when_history_recorded(self):
        dgmc = ring_deployment(record_history=True)
        dgmc.run()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            entries = build_timeline(dgmc)
        assert any(e.kind == "flood" for e in entries)

    def test_silent_when_nothing_flooded(self):
        dgmc = DgmcNetwork(
            ring_network(4), ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
        )
        dgmc.register_symmetric(1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert build_timeline(dgmc) == []


class TestProfile:
    def test_breakdown_arithmetic_and_render(self):
        b = PhaseBreakdown(
            phases={"spf": 0.3, "kernel-overhead": 0.6},
            wall_s=1.0,
            events_dispatched=10,
            sim_time=5.0,
        )
        assert b.accounted_s == pytest.approx(0.9)
        assert b.coverage == pytest.approx(0.9)
        text = b.render()
        assert "spf" in text and "kernel-overhead" in text and "accounted" in text

    def test_quick_profile_accounts_for_the_wall_time(self):
        breakdown = run_profile(quick=True)
        assert breakdown.coverage >= 0.9
        assert set(breakdown.phases) <= set(PHASE_ORDER)
        assert breakdown.events_dispatched > 0
        assert breakdown.sim_time > 0.0


class TestCliExport:
    def test_trace_command_writes_all_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "t.json"
        jsonl_path = tmp_path / "t.jsonl"
        prom_path = tmp_path / "m.prom"
        rc = main(
            [
                "trace",
                "--export-trace",
                str(trace_path),
                "--export-jsonl",
                str(jsonl_path),
                "--metrics",
                str(prom_path),
            ]
        )
        assert rc == 0
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"compute", "install", "flood", "dijkstra", "dispatch"} <= names
        for line in jsonl_path.read_text().splitlines():
            json.loads(line)
        assert "# TYPE spf_cache_hits_total counter" in prom_path.read_text()
        assert get_tracer().enabled is False  # CLI restores the disabled default
        assert "wrote" in capsys.readouterr().out
