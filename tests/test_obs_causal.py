"""Causal observability: trace contexts, SLO chains, flight recorder, merge.

The distributed half of :mod:`repro.obs` -- everything that exists so a
cause born on one host can be followed across the wire: the 12-byte
:class:`TraceContext`, its ride inside version-2 frames, the flow events
that draw the causal arrows, the convergence-SLO chains keyed on trace
ids, the flight recorder that snapshots the lot on a violation, and the
per-host trace merge that puts it all on one wall-clock axis.
"""

from __future__ import annotations

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lsa import McEvent, McLsa
from repro.lsr.lsa import NonMcLsa, RouterLsa
from repro.net.frames import (
    FRAME_VERSION,
    LEGACY_FRAME_VERSION,
    DataFrame,
    FrameDecodeError,
    LsuFrame,
    McSnapshot,
    SnapFrame,
    decode_frame,
    encode_ack,
    encode_data,
    encode_lsu,
    encode_snap,
)
from repro.obs.context import (
    CAUSE_CODES,
    CAUSE_NAMES,
    TraceContext,
    TraceContextError,
)
from repro.obs.flight import (
    FlightRecorder,
    dump_on_violation,
    install_recorder,
    installed_recorder,
    uninstall_recorder,
)
from repro.obs.merge import MergeError, export_host_traces, merge_traces
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLO_BUCKETS, SloTracker
from repro.obs.tracer import RingBufferSink, Tracer, use_tracer

HEADER_SIZE = len(encode_ack(0, 0, 0))


def ctx(cause="join", origin=3, connection_id=1, seq=7, hop=0):
    return TraceContext(origin, connection_id, cause, seq, hop)


class FakeClock:
    """Deterministic monotonic clock for SLO-window arithmetic."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ---------------------------------------------------------------------------
# TraceContext wire form
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_wire_round_trip_every_cause(self):
        for cause in CAUSE_CODES:
            original = ctx(cause=cause, origin=41, connection_id=-1, seq=9, hop=4)
            blob = original.to_wire()
            assert len(blob) == TraceContext.WIRE_SIZE == 12
            decoded = TraceContext.from_wire(blob)
            assert decoded == original
            assert decoded.hop == 4  # hop survives the wire despite compare=False

    def test_cause_tables_are_inverse(self):
        assert {CAUSE_NAMES[c]: c for c in CAUSE_NAMES} == CAUSE_CODES

    def test_unknown_cause_name_rejected_at_construction(self):
        with pytest.raises(TraceContextError, match="unknown trace cause"):
            TraceContext(0, 1, "reboot", 0)

    def test_wrong_length_rejected(self):
        with pytest.raises(TraceContextError, match="12 bytes"):
            TraceContext.from_wire(b"\x00" * 11)
        with pytest.raises(TraceContextError, match="12 bytes"):
            TraceContext.from_wire(ctx().to_wire() + b"\x00")

    def test_unknown_cause_code_rejected(self):
        blob = bytearray(ctx().to_wire())
        blob[10] = 200  # the cause-code byte (origin u16 | conn i32 | seq u32)
        with pytest.raises(TraceContextError, match="cause code 200"):
            TraceContext.from_wire(bytes(blob))

    def test_hop_excluded_from_equality_and_trace_id(self):
        a, b = ctx(hop=0), ctx(hop=9)
        assert a == b
        assert a.trace_id() == b.trace_id() == "o3.7.join"

    def test_next_hop_increments_and_caps(self):
        stepped = ctx(hop=0).next_hop()
        assert stepped.hop == 1
        assert stepped == ctx()  # identity unchanged
        assert ctx(hop=255).next_hop().hop == 255  # capped, still wire-packable
        ctx(hop=255).next_hop().to_wire()

    def test_flow_id_is_chrome_safe_and_transfer_unique(self):
        c = ctx()
        a = c.flow_id(0, 1, 5)
        assert 0 <= a <= 0x7FFFFFFF
        assert a == c.flow_id(0, 1, 5)  # deterministic per arrow
        ids = {c.flow_id(0, 1, 5), c.flow_id(1, 0, 5), c.flow_id(0, 1, 6)}
        assert len(ids) == 3  # direction and frame seq both fold in

    def test_to_args_names_the_chain(self):
        args = ctx(cause="link-down", hop=2).to_args()
        assert args == {
            "trace_id": "o3.7.link-down",
            "cause": "link-down",
            "origin": 3,
            "hop": 2,
        }

    @given(
        origin=st.integers(0, 0xFFFF),
        connection_id=st.integers(-(2**31), 2**31 - 1),
        cause=st.sampled_from(sorted(CAUSE_CODES)),
        seq=st.integers(0, 2**32 - 1),
        hop=st.integers(0, 255),
    )
    @settings(max_examples=100, deadline=None)
    def test_fuzz_round_trip_full_field_ranges(
        self, origin, connection_id, cause, seq, hop
    ):
        original = TraceContext(origin, connection_id, cause, seq, hop)
        decoded = TraceContext.from_wire(original.to_wire())
        assert decoded == original and decoded.hop == hop

    @given(blob=st.binary(min_size=12, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_fuzz_decode_never_crashes_uncontrolled(self, blob):
        try:
            decoded = TraceContext.from_wire(blob)
        except TraceContextError:
            return
        assert decoded.to_wire() == blob  # anything accepted re-encodes exactly


# ---------------------------------------------------------------------------
# Trace context inside version-2 frames
# ---------------------------------------------------------------------------


def _as_legacy(wire: bytes) -> bytes:
    """Rewrite a ctx-free v2 frame as the version-1 bytes of the same frame."""
    assert wire[HEADER_SIZE] == 0  # has_ctx flag must be clear to downgrade
    header = bytearray(wire[:HEADER_SIZE])
    header[1] = LEGACY_FRAME_VERSION
    return bytes(header) + wire[HEADER_SIZE + 1 :]


def _snapshot(with_ctx=None) -> McSnapshot:
    return McSnapshot(
        connection_id=1,
        received=(1, 0, 2),
        expected=(1, 1, 2),
        current=(1, 0, 2),
        proposer=2,
        member_stamp=(1, 0, 1),
        members=((0, frozenset(["sender"])), (2, frozenset(["receiver"]))),
        topology=None,
        ctx=with_ctx,
    )


class TestFrameContextPropagation:
    def test_data_frame_reattaches_context(self):
        c = ctx(cause="leave", seq=12)
        lsa = McLsa(3, McEvent.LEAVE, 1, None, (0, 0, 0, 5), ctx=c)
        frame = decode_frame(encode_data(3, 8, 42, lsa))
        assert isinstance(frame, DataFrame)
        assert frame.lsa == lsa  # ctx excluded from LSA equality
        assert frame.lsa.ctx == c
        assert frame.lsa.ctx.trace_id() == c.trace_id()

    def test_snap_frame_reattaches_context(self):
        c = ctx(cause="resync", origin=2, connection_id=1)
        frame = decode_frame(encode_snap(2, 5, 9, _snapshot(with_ctx=c)))
        assert isinstance(frame, SnapFrame)
        assert frame.snapshot == _snapshot()  # ctx excluded from equality
        assert frame.snapshot.ctx == c

    def test_lsu_frame_reattaches_context(self):
        c = ctx(cause="link-down", connection_id=-1)
        lsa = NonMcLsa(4, RouterLsa(4, 3, ((5, 1.0, True),)), ctx=c)
        frame = decode_frame(encode_lsu(4, 5, 2, lsa))
        assert isinstance(frame, LsuFrame)
        assert frame.lsa.ctx == c

    def test_context_free_frames_decode_with_none(self):
        lsa = McLsa(0, McEvent.LEAVE, 1, None, (1,))
        frame = decode_frame(encode_data(0, 1, 1, lsa))
        assert frame.lsa.ctx is None

    def test_legacy_v1_data_frame_still_decodes(self):
        lsa = McLsa(0, McEvent.LEAVE, 1, None, (1,))
        v2 = encode_data(0, 1, 1, lsa)
        frame = decode_frame(_as_legacy(v2))
        assert isinstance(frame, DataFrame)
        assert frame.lsa == lsa and frame.lsa.ctx is None

    def test_legacy_v1_snap_and_lsu_still_decode(self):
        snap = decode_frame(_as_legacy(encode_snap(2, 5, 9, _snapshot())))
        assert isinstance(snap, SnapFrame) and snap.snapshot == _snapshot()
        lsa = NonMcLsa(4, RouterLsa(4, 3, ((5, 1.0, True),)))
        lsu = decode_frame(_as_legacy(encode_lsu(4, 5, 2, lsa)))
        assert isinstance(lsu, LsuFrame) and lsu.lsa == lsa

    def test_legacy_body_is_one_byte_shorter_per_context_free_frame(self):
        v2 = encode_data(0, 1, 1, McLsa(0, McEvent.LEAVE, 1, None, (1,)))
        assert len(_as_legacy(v2)) == len(v2) - 1

    def test_v1_frame_with_ctx_prefix_is_rejected_as_payload(self):
        """A v1 decoder path must not interpret a has_ctx prefix."""
        c = ctx()
        lsa = McLsa(3, McEvent.LEAVE, 1, None, (0, 0, 0, 5), ctx=c)
        wire = bytearray(encode_data(3, 8, 42, lsa))
        wire[1] = LEGACY_FRAME_VERSION
        # The \x01 flag plus 12 ctx bytes now lead the LSA payload, which
        # cannot be a valid wire LSA.
        with pytest.raises(FrameDecodeError, match="DATA payload"):
            decode_frame(bytes(wire))

    @given(
        cause=st.sampled_from(sorted(CAUSE_CODES)),
        origin=st.integers(0, 0xFFFF),
        seq=st.integers(0, 2**32 - 1),
        hop=st.integers(0, 255),
        frame_seq=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_fuzz_ctx_carrying_data_frames_round_trip(
        self, cause, origin, seq, hop, frame_seq
    ):
        c = TraceContext(origin, 1, cause, seq, hop)
        lsa = McLsa(0, McEvent.LEAVE, 1, None, (1, 2), ctx=c)
        frame = decode_frame(encode_data(0, 1, frame_seq, lsa))
        assert frame.lsa.ctx == c and frame.lsa.ctx.hop == hop
        assert frame.seq == frame_seq

    def test_version_constants(self):
        assert FRAME_VERSION == 2
        assert LEGACY_FRAME_VERSION == 1


# ---------------------------------------------------------------------------
# Flow events: the causal arrows between host lanes
# ---------------------------------------------------------------------------


class TestFlowEvents:
    def _tracer(self):
        tracer = Tracer(enabled=True)
        ring = tracer.add_sink(RingBufferSink())
        return tracer, ring

    def test_matched_pair_shares_id_and_binds_to_slice_end(self):
        tracer, ring = self._tracer()
        c = ctx()
        fid = c.flow_id(0, 1, 5)
        tracer.flow("udp_send", "s", fid, cat="net", pid=0, **c.to_args())
        tracer.flow("udp_recv", "f", fid, cat="net", pid=1, **c.to_args())
        start, finish = (e.to_chrome() for e in ring.events())
        assert start["ph"] == "s" and finish["ph"] == "f"
        assert start["id"] == finish["id"] == fid
        assert "bp" not in start and finish["bp"] == "e"
        assert start["pid"] == 0 and finish["pid"] == 1
        assert start["args"]["trace_id"] == finish["args"]["trace_id"]

    def test_golden_flow_event_schema(self):
        """The exact Chrome dict shape Perfetto ingests for an arrow."""
        tracer, ring = self._tracer()
        tracer.flow("udp_send", "s", 77, cat="net", tid=3, pid=2, trace_id="o0.1.join")
        (event,) = ring.events()
        chrome = event.to_chrome()
        ts = chrome.pop("ts")
        assert isinstance(ts, float) and ts >= 0.0
        assert chrome == {
            "name": "udp_send",
            "cat": "net",
            "ph": "s",
            "pid": 2,
            "tid": 3,
            "id": 77,
            "args": {"trace_id": "o0.1.join"},
        }

    def test_invalid_phase_rejected(self):
        tracer, _ = self._tracer()
        with pytest.raises(ValueError, match="flow phase"):
            tracer.flow("x", "t", 1)

    def test_sinkless_flow_is_a_cheap_no_op(self):
        tracer = Tracer(enabled=True)
        tracer.flow("udp_send", "s", 1)
        assert tracer.events_emitted == 0


# ---------------------------------------------------------------------------
# SLO chains
# ---------------------------------------------------------------------------


class TestSloTracker:
    def _tracker(self):
        clock = FakeClock()
        tracker = SloTracker(MetricsRegistry(), clock=clock)
        return tracker, clock

    def test_install_chain_closes_when_needed_covered(self):
        tracker, clock = self._tracker()
        c = ctx(cause="join")
        tracker.begin(c, {0, 1, 2})
        clock.advance(0.010)
        tracker.record_install(c, 0, {0, 1, 2})
        tracker.record_install(c, 1, {0, 1, 2})
        assert tracker.install_latency.count == 0  # 2 of 3, still open
        clock.advance(0.020)
        tracker.record_install(c, 2, {0, 1, 2})
        assert tracker.install_latency.count == 1
        assert tracker.install_latency.sum == pytest.approx(0.030)
        assert tracker.open_chains() == {}

    def test_cause_routes_to_the_matching_histogram(self):
        tracker, clock = self._tracker()
        for cause, hist in (
            ("link-down", tracker.repair_latency),
            ("resync", tracker.resync_duration),
            ("leave", tracker.install_latency),
        ):
            c = ctx(cause=cause, seq=hash(cause) & 0xFFFF)
            tracker.begin(c, {0})
            clock.advance(0.001)
            tracker.record_install(c, 0, {0})
            assert hist.count == 1, cause

    def test_needed_set_refreshes_from_installer_view(self):
        """A member leaving mid-chain stops being waited for."""
        tracker, clock = self._tracker()
        c = ctx(cause="join")
        tracker.begin(c, {0, 1, 2})
        clock.advance(0.005)
        tracker.record_install(c, 0, {0, 2})  # 1 left while converging
        assert tracker.install_latency.count == 0
        tracker.record_install(c, 2, {0, 2})
        assert tracker.install_latency.count == 1  # 1 was never required

    def test_zero_member_event_converges_immediately(self):
        tracker, _ = self._tracker()
        tracker.begin(ctx(cause="leave"), set())
        assert tracker.zero_member_events.value == 1
        assert tracker.open_chains() == {}
        assert tracker.finalize() == 0  # nothing dangling

    def test_installs_without_context_or_chain_are_ignored(self):
        tracker, _ = self._tracker()
        tracker.record_install(None, 0, {0})
        tracker.record_install(ctx(seq=999), 0, {0})  # never begun
        assert tracker.install_latency.count == 0

    def test_finalize_counts_never_converged(self):
        tracker, _ = self._tracker()
        tracker.begin(ctx(seq=1), {0, 1})
        tracker.begin(ctx(seq=2), {0})
        assert set(tracker.open_chains()) == {"o3.1.join", "o3.2.join"}
        assert tracker.finalize() == 2
        assert tracker.never_converged.value == 2
        assert tracker.finalize() == 0  # books already closed

    def test_resync_handshake_timing(self):
        tracker, clock = self._tracker()
        tracker.resync_started(4, 7)
        clock.advance(0.250)
        tracker.resync_finished(4, 7)
        assert tracker.resync_duration.count == 1
        assert tracker.resync_duration.sum == pytest.approx(0.250)
        tracker.resync_finished(4, 7)  # unmatched reply: no-op
        tracker.resync_finished(9, 9)  # never started: no-op
        assert tracker.resync_duration.count == 1

    def test_control_frame_counters_per_cause(self):
        tracker, _ = self._tracker()
        tracker.record_control("link-down")
        tracker.record_control("link-down")
        tracker.record_control("join")
        tracker.record_control("not-a-cause")  # silently dropped
        prom = tracker.registry.to_prometheus()
        assert "slo_control_frames_link_down_total 2" in prom
        assert "slo_control_frames_join_total 1" in prom

    def test_buckets_cover_sub_millisecond_to_seconds(self):
        assert SLO_BUCKETS[0] <= 0.001 and SLO_BUCKETS[-1] >= 5.0
        assert list(SLO_BUCKETS) == sorted(SLO_BUCKETS)


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


@pytest.fixture
def no_recorder():
    """Leave the process-wide hook as the tests found it."""
    previous = installed_recorder()
    uninstall_recorder()
    yield
    if previous is not None:
        install_recorder(previous)


class TestFlightRecorder:
    def test_dump_payload_is_self_describing(self, tmp_path, no_recorder):
        tracer = Tracer(enabled=True, pid=3)
        tracer.add_sink(RingBufferSink())
        registry = MetricsRegistry()
        registry.counter("violations_total", "t").inc(2)
        with use_tracer(tracer):
            tracer.instant("mc_install", cat="protocol", tid=1)
            recorder = FlightRecorder(str(tmp_path))
            path = recorder.dump(
                "chaos agreement", context={"seed": 1996}, registry=registry
            )
        payload = json.loads(open(path, encoding="utf-8").read())
        assert payload["kind"] == "flight-recorder"
        assert payload["reason"] == "chaos agreement"
        assert payload["context"] == {"seed": 1996}
        assert payload["metrics"]["violations_total"] == 2
        assert payload["host_pid"] == 3
        assert payload["tracer_epoch_unix"] == tracer.epoch_unix
        assert [e["name"] for e in payload["trace_events"]] == ["mc_install"]

    def test_sequence_numbers_and_slug_sanitization(self, tmp_path, no_recorder):
        recorder = FlightRecorder(str(tmp_path))
        first = recorder.dump("agreement: s1 != s2")
        second = recorder.dump("agreement: s1 != s2")
        weird = recorder.dump("///")
        assert first.endswith("FLIGHT_agreement-s1-s2_001.json")
        assert second.endswith("FLIGHT_agreement-s1-s2_002.json")
        assert weird.endswith("FLIGHT_violation_003.json")
        assert recorder.dumps == [first, second, weird]

    def test_dump_keeps_only_the_ring_tail(self, tmp_path, no_recorder):
        tracer = Tracer(enabled=True)
        tracer.add_sink(RingBufferSink())
        with use_tracer(tracer):
            for i in range(10):
                tracer.instant(f"e{i}")
            path = FlightRecorder(str(tmp_path), max_events=3).dump("x")
        payload = json.loads(open(path, encoding="utf-8").read())
        assert [e["name"] for e in payload["trace_events"]] == ["e7", "e8", "e9"]

    def test_dump_without_ring_buffer_still_writes(self, tmp_path, no_recorder):
        with use_tracer(Tracer()):  # no sinks at all
            path = FlightRecorder(str(tmp_path)).dump("no-ring")
        assert json.loads(open(path, encoding="utf-8").read())["trace_events"] == []

    def test_hook_lifecycle(self, tmp_path, no_recorder):
        assert installed_recorder() is None
        assert dump_on_violation("nothing installed") is None  # silent no-op
        recorder = install_recorder(FlightRecorder(str(tmp_path)))
        assert installed_recorder() is recorder
        path = dump_on_violation("hooked", context={"k": "v"})
        assert path is not None and recorder.dumps == [path]
        uninstall_recorder()
        assert dump_on_violation("gone again") is None
        assert recorder.dumps == [path]

    def test_dump_on_violation_swallows_io_errors(self, tmp_path, no_recorder):
        target = tmp_path / "not-a-dir"
        target.write_text("file, not directory")
        install_recorder(FlightRecorder(str(target)))
        assert dump_on_violation("disk trouble") is None  # never raises


# ---------------------------------------------------------------------------
# Cross-host trace merge
# ---------------------------------------------------------------------------


class TestTraceMerge:
    def _host_trace(self, path, epoch, events, pid=0):
        lines = [
            {
                "name": "clock_sync",
                "cat": "__metadata",
                "ph": "M",
                "ts": 0.0,
                "pid": pid,
                "tid": 0,
                "args": {"epoch_unix": epoch},
            }
        ]
        lines.extend(events)
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        return str(path)

    def test_export_splits_lanes_and_leads_with_clock_sync(self, tmp_path):
        tracer = Tracer(enabled=True)
        tracer.add_sink(RingBufferSink())
        tracer.instant("a", pid=0)
        tracer.instant("b", pid=2)
        tracer.instant("c", pid=0)
        paths = export_host_traces(tracer, str(tmp_path), prefix="t")
        assert [p.rsplit("/", 1)[1] for p in paths] == [
            "t_host0.jsonl",
            "t_host2.jsonl",
        ]
        lane0 = [json.loads(line) for line in open(paths[0], encoding="utf-8")]
        assert lane0[0]["name"] == "clock_sync"
        assert lane0[0]["args"]["epoch_unix"] == tracer.epoch_unix
        assert [e["name"] for e in lane0[1:]] == ["a", "c"]

    def test_epoch_delta_shifts_onto_one_axis(self, tmp_path):
        # Host 1 booted 2 seconds after host 0; its local ts=100us event
        # really happened 2.0001s into host 0's axis.
        early = self._host_trace(
            tmp_path / "h0.jsonl",
            1000.0,
            [{"name": "send", "ph": "s", "ts": 50.0, "pid": 0, "tid": 0, "id": 9}],
            pid=0,
        )
        late = self._host_trace(
            tmp_path / "h1.jsonl",
            1002.0,
            [{"name": "recv", "ph": "f", "ts": 100.0, "pid": 1, "tid": 0, "id": 9}],
            pid=1,
        )
        out = tmp_path / "merged.json"
        trace = merge_traces([early, late], out_path=str(out))
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        assert by_name["send"]["ts"] == pytest.approx(50.0)
        assert by_name["recv"]["ts"] == pytest.approx(2_000_100.0)
        assert by_name["send"]["id"] == by_name["recv"]["id"]  # arrow survives
        assert trace["metadata"]["base_epoch_unix"] == 1000.0
        assert json.loads(out.read_text()) == trace

    def test_clock_sync_dropped_but_other_metadata_kept(self, tmp_path):
        path = self._host_trace(
            tmp_path / "h.jsonl",
            5.0,
            [
                {
                    "name": "process_name",
                    "cat": "__metadata",
                    "ph": "M",
                    "ts": 0.0,
                    "pid": 0,
                    "tid": 0,
                    "args": {"name": "host0"},
                },
                {"name": "e", "ph": "i", "ts": 1.0, "pid": 0, "tid": 0},
            ],
        )
        names = [e["name"] for e in merge_traces([path])["traceEvents"]]
        assert "clock_sync" not in names
        assert names == ["process_name", "e"]  # metadata sorts first

    def test_file_without_clock_sync_is_accepted_unshifted(self, tmp_path):
        anchored = self._host_trace(
            tmp_path / "a.jsonl",
            1000.0,
            [{"name": "x", "ph": "i", "ts": 10.0, "pid": 0, "tid": 0}],
        )
        bare = tmp_path / "b.jsonl"
        bare.write_text(
            json.dumps({"name": "y", "ph": "i", "ts": 20.0, "pid": 1, "tid": 0})
            + "\n"
        )
        trace = merge_traces([anchored, str(bare)])
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        assert by_name["x"]["ts"] == 10.0 and by_name["y"]["ts"] == 20.0

    def test_merge_errors(self, tmp_path):
        with pytest.raises(MergeError, match="no trace files"):
            merge_traces([])
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(MergeError, match="not JSON"):
            merge_traces([str(bad)])
        listy = tmp_path / "list.jsonl"
        listy.write_text("[1, 2]\n")
        with pytest.raises(MergeError, match="not a trace object"):
            merge_traces([str(listy)])

    def test_export_then_merge_round_trips_same_process(self, tmp_path):
        """The writer half and reader half agree without any real network."""
        tracer = Tracer(enabled=True)
        tracer.add_sink(RingBufferSink())
        c = ctx()
        fid = c.flow_id(0, 1, 1)
        tracer.flow("udp_send", "s", fid, pid=0, **c.to_args())
        tracer.flow("udp_recv", "f", fid, pid=1, **c.to_args())
        paths = export_host_traces(tracer, str(tmp_path))
        trace = merge_traces(paths)
        arrows = [e for e in trace["traceEvents"] if e["ph"] in ("s", "f")]
        assert len(arrows) == 2
        assert arrows[0]["id"] == arrows[1]["id"] == fid
        # Same tracer, same epoch: the merge must not have shifted anything.
        assert arrows[0]["ts"] <= arrows[1]["ts"]


# ---------------------------------------------------------------------------
# `repro trace` regression: the timeline must actually record
# ---------------------------------------------------------------------------


class TestTraceCommandHistory:
    def test_trace_command_records_flood_history(self, capsys):
        """`repro trace` must flip record_history on before running --
        without it the timeline silently renders empty and warns."""
        from repro.cli import main

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            rc = main(["--seed", "2", "trace", "--switches", "6", "--members", "3"])
        assert rc == 0
        assert not [w for w in caught if "record_history" in str(w.message)]
        out = capsys.readouterr().out
        assert "agreement: True" in out
        assert "flood" in out  # timeline rows exist, not just headers
