"""Tests for the systematic state-space explorer (repro.stress).

Covers the three properties the methodology rests on:

* canonicalization -- symmetric interleavings collapse to one canonical
  state, distinct states never do, and replays are bit-identical;
* exploration -- the shipped protocol survives exhaustive 3-switch
  exploration with zero counterexamples, while each deviation knob
  (ablating the M vector, ablating degraded-tree repair) yields a
  counterexample within the same budget;
* minimization -- a minimized schedule still violates, and removing any
  single step makes the violation disappear (1-minimality).
"""

from __future__ import annotations

import pytest

from repro.stress import (
    StressExecutor,
    StressOptions,
    explore,
    minimize_schedule,
    replay_violates,
)
from repro.workloads.stress import get_scenario


def _fresh(scenario, **overrides) -> StressExecutor:
    return StressExecutor(scenario, scenario.make_config(**overrides))


class TestCanonicalKey:
    def test_fresh_executors_agree(self):
        sc = get_scenario("membership-race")
        assert _fresh(sc).canonical_key() == _fresh(sc).canonical_key()

    def test_replay_is_deterministic(self):
        sc = get_scenario("membership-race")
        schedule = [("event", 0), ("advance",), ("event", 1)]
        a, b = _fresh(sc), _fresh(sc)
        a.replay(schedule)
        b.replay(schedule)
        assert a.canonical_key() == b.canonical_key()

    def test_commuting_deliveries_collapse(self):
        """Two pending LSAs to different switches commute: delivering
        them in either order reaches the same canonical state."""
        sc = get_scenario("membership-race")
        probe = _fresh(sc)
        probe.replay([("event", 0), ("advance",)])
        by_seq = sorted(probe.transport.pending.items())
        assert len(by_seq) >= 2
        (s1, p1), (s2, p2) = by_seq[0], by_seq[1]
        assert p1.dest != p2.dest  # deliveries genuinely independent
        a, b = _fresh(sc), _fresh(sc)
        a.replay([("event", 0), ("advance",), ("deliver", s1), ("deliver", s2)])
        b.replay([("event", 0), ("advance",), ("deliver", s2), ("deliver", s1)])
        assert a.canonical_key() == b.canonical_key()

    def test_distinct_states_differ(self):
        sc = get_scenario("membership-race")
        probe = _fresh(sc)
        probe.replay([("event", 0), ("advance",)])
        seq = min(probe.transport.pending)
        full = _fresh(sc)
        full.replay([("event", 0), ("advance",), ("deliver", seq)])
        partial = _fresh(sc)
        partial.replay([("event", 0), ("advance",)])
        assert full.canonical_key() != partial.canonical_key()
        assert _fresh(sc).canonical_key() != partial.canonical_key()

    def test_drop_and_deliver_differ(self):
        sc = get_scenario("membership-race")
        probe = StressExecutor(sc, sc.make_config(), loss_branching=True)
        probe.replay([("event", 0), ("advance",)])
        seq = min(probe.transport.pending)
        delivered = StressExecutor(sc, sc.make_config(), loss_branching=True)
        delivered.replay([("event", 0), ("advance",), ("deliver", seq)])
        dropped = StressExecutor(sc, sc.make_config(), loss_branching=True)
        dropped.replay([("event", 0), ("advance",), ("drop", seq)])
        assert delivered.canonical_key() != dropped.canonical_key()


class TestExploration:
    @pytest.mark.parametrize("name", ["membership-race", "degraded-repair"])
    def test_shipped_protocol_exhausts_clean(self, name):
        report = explore(get_scenario(name), StressOptions())
        assert report.exhaustive and not report.budget_hit
        assert report.ok, [ce.detail for ce in report.counterexamples]
        assert report.states_explored > 0
        assert report.terminal_states > 0

    def test_m_vector_ablation_finds_agreement_violation(self):
        report = explore(
            get_scenario("membership-race"),
            StressOptions(config_overrides={"ablate_member_stamp": True}),
        )
        assert not report.ok
        ce = report.counterexamples[0]
        assert ce.invariant == "agreement"
        assert ce.minimized
        assert ce.config == {"ablate_member_stamp": True}

    def test_degraded_repair_ablation_finds_spans_violation(self):
        report = explore(
            get_scenario("degraded-repair"),
            StressOptions(config_overrides={"ablate_degraded_repair": True}),
        )
        assert not report.ok
        assert report.counterexamples[0].invariant == "spans"

    @pytest.mark.parametrize("strategy", ["bfs", "guided"])
    def test_other_strategies_find_the_same_race(self, strategy):
        report = explore(
            get_scenario("membership-race"),
            StressOptions(
                strategy=strategy,
                config_overrides={"ablate_member_stamp": True},
            ),
        )
        assert not report.ok
        assert report.counterexamples[0].invariant == "agreement"

    def test_strategies_explore_the_same_state_space(self):
        """dfs and bfs visit different orders but the same canonical set."""
        dfs = explore(get_scenario("degraded-repair"), StressOptions())
        bfs = explore(
            get_scenario("degraded-repair"), StressOptions(strategy="bfs")
        )
        assert dfs.exhaustive and bfs.exhaustive
        assert dfs.states_explored == bfs.states_explored
        assert dfs.terminal_states == bfs.terminal_states

    def test_budget_truncates_and_reports(self):
        report = explore(
            get_scenario("membership-race"), StressOptions(max_transitions=10)
        )
        assert report.budget_hit
        assert not report.exhaustive
        assert report.transitions <= 10

    def test_depth_bound_truncates_and_reports(self):
        report = explore(
            get_scenario("membership-race"), StressOptions(max_depth=2)
        )
        assert not report.exhaustive
        assert report.max_depth_seen <= 2

    def test_counterexample_stop_is_not_exhaustive(self):
        report = explore(
            get_scenario("membership-race"),
            StressOptions(config_overrides={"ablate_member_stamp": True}),
        )
        assert not report.ok
        assert not report.exhaustive  # stopped at the counterexample cap


class TestMinimizer:
    def _find_violation(self):
        scenario = get_scenario("membership-race")
        overrides = {"ablate_member_stamp": True}
        report = explore(
            scenario,
            StressOptions(config_overrides=overrides, minimize=False),
        )
        assert not report.ok
        return scenario, overrides, report.counterexamples[0]

    def test_minimized_still_violates(self):
        scenario, overrides, ce = self._find_violation()
        minimized = minimize_schedule(
            scenario, ce.schedule, config_overrides=overrides,
            invariant=ce.invariant,
        )
        assert len(minimized) <= len(ce.schedule)
        assert replay_violates(
            scenario, minimized, config_overrides=overrides,
            invariant=ce.invariant,
        )

    def test_minimized_is_1_minimal(self):
        scenario, overrides, ce = self._find_violation()
        minimized = minimize_schedule(
            scenario, ce.schedule, config_overrides=overrides,
            invariant=ce.invariant,
        )
        for i in range(len(minimized)):
            trial = minimized[:i] + minimized[i + 1 :]
            assert not replay_violates(
                scenario, trial, config_overrides=overrides,
                invariant=ce.invariant,
            ), f"removing step {i} ({minimized[i]}) should break the repro"

    def test_non_violating_schedule_returned_unchanged(self):
        scenario = get_scenario("membership-race")
        schedule = [("event", 0), ("event", 1)]
        assert not replay_violates(scenario, schedule)
        assert minimize_schedule(scenario, schedule) == schedule
