"""Tests for the simulation kernel: event ordering, cancellation, SimEvent."""

from __future__ import annotations

import pytest

from repro.sim.kernel import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_run_in_time_order(self, sim):
        seen = []
        sim.schedule(3.0, lambda: seen.append("c"))
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(2.0, lambda: seen.append("b"))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_same_time_events_run_in_schedule_order(self, sim):
        seen = []
        for tag in "abcde":
            sim.schedule(1.0, lambda t=tag: seen.append(t))
        sim.run()
        assert seen == list("abcde")

    def test_priority_breaks_same_time_ties(self, sim):
        seen = []
        sim.schedule(1.0, lambda: seen.append("low"), priority=1)
        sim.schedule(1.0, lambda: seen.append("high"), priority=0)
        sim.run()
        assert seen == ["high", "low"]

    def test_clock_advances_to_event_time(self, sim):
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        sim.schedule(1.0, lambda: None)
        hits = []
        sim.schedule_at(5.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [5.0]

    def test_nested_scheduling_from_action(self, sim):
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, lambda: seen.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]

    def test_zero_delay_event_runs_at_current_time(self, sim):
        seen = []
        sim.schedule(0.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.0]


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(10))
        stop = sim.run(until=5.0)
        assert seen == [1]
        assert stop == 5.0
        assert sim.now == 5.0
        sim.run()
        assert seen == [1, 10]

    def test_run_returns_last_event_time_when_drained(self, sim):
        sim.schedule(7.0, lambda: None)
        assert sim.run() == 7.0

    def test_run_empty_heap_is_noop(self, sim):
        assert sim.run() == 0.0

    def test_max_events_limits_dispatch(self, sim):
        seen = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: seen.append(i))
        sim.run(max_events=2)
        assert seen == [0, 1]

    def test_run_is_not_reentrant(self, sim):
        def evil():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, evil)
        sim.run()

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_peek_reports_next_time(self, sim):
        assert sim.peek() is None
        sim.schedule(4.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.peek() == 2.0

    def test_events_dispatched_counter(self, sim):
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_dispatched == 3


class TestCancellation:
    def test_cancelled_event_does_not_run(self, sim):
        seen = []
        entry = sim.schedule(1.0, lambda: seen.append("x"))
        entry.cancel()
        sim.run()
        assert seen == []

    def test_cancelled_event_skipped_by_peek(self, sim):
        entry = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        entry.cancel()
        assert sim.peek() == 2.0

    def test_cancel_is_idempotent(self, sim):
        entry = sim.schedule(1.0, lambda: None)
        entry.cancel()
        entry.cancel()
        sim.run()


class TestSimEvent:
    def test_fire_wakes_waiters_with_value(self, sim):
        ev = sim.event("go")
        got = []
        ev.add_waiter(got.append)
        ev.add_waiter(got.append)
        ev.fire("payload")
        sim.run()
        assert got == ["payload", "payload"]

    def test_waiting_on_fired_event_returns_immediately(self, sim):
        ev = sim.event()
        ev.fire(42)
        got = []
        ev.add_waiter(got.append)
        sim.run()
        assert got == [42]

    def test_double_fire_is_noop(self, sim):
        ev = sim.event()
        ev.fire(1)
        ev.fire(2)
        assert ev.value == 1

    def test_reset_allows_refire(self, sim):
        ev = sim.event()
        ev.fire(1)
        ev.reset()
        assert not ev.fired
        ev.fire(2)
        assert ev.value == 2


class TestQuiescence:
    def test_run_until_quiescent_with_true_check(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run_until_quiescent(lambda: True)
        assert sim.now == 1.0

    def test_run_until_quiescent_deadlock_detection(self, sim):
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_quiescent(lambda: False)

    def test_run_until_quiescent_respects_max_time(self, sim):
        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        sim.run_until_quiescent(lambda: True, max_time=5.5)
        assert sim.now == 5.5


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def trace():
            sim = Simulator()
            seen = []
            import random

            rng = random.Random(99)
            for i in range(50):
                sim.schedule(rng.random() * 10, lambda i=i: seen.append((sim.now, i)))
            sim.run()
            return seen

        assert trace() == trace()
