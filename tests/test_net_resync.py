"""Crash-recovery tests: hello failure detection, resync, partitions.

The acceptance bar of the robustness layer: a crashed-and-cold-restarted
switch rebuilds a complete LSDB and rejoins MC arbitration through the
resync protocol alone (``seed_converged_lsdb`` is never called after
boot), and a healed partition reconverges on members and trees --
including membership events the partition swallowed.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.events import JoinEvent
from repro.core.protocol import ProtocolConfig
from repro.lsr.lsa import RouterLsa
from repro.lsr.lsdb import LinkStateDatabase
from repro.net import frames
from repro.net.fabric import LiveConfig, LiveFabric, QuiescenceTimeout
from repro.net.faults import FaultPlan
from repro.net.resync import ResyncManager
from repro.net.transport import RetransmitPolicy
from repro.topo.generators import grid_network, ring_network


def fast_config(**kw) -> LiveConfig:
    defaults = dict(
        policy=RetransmitPolicy(rto=0.01, rto_max=0.1, max_attempts=8),
        hello_interval=0.05,
        dead_interval=0.3,
        quiesce_timeout=30.0,
    )
    defaults.update(kw)
    return LiveConfig(**defaults)


async def settle(fabric: LiveFabric, seconds: float) -> None:
    await asyncio.sleep(seconds)
    await fabric.quiesce()


class TestHelloFailureDetection:
    def test_crash_is_detected_and_fires_link_down(self):
        async def run():
            fab = LiveFabric(grid_network(1, 3), ProtocolConfig(), fast_config())
            fab.register_symmetric(1)
            await fab.start()
            try:
                fab.hosts[0].fire_membership(JoinEvent(0, 1))
                await fab.quiesce()
                fab.hosts[2].fire_membership(JoinEvent(2, 1))
                await fab.quiesce()
                await fab.crash(2)
                await settle(fab, 0.5)  # > dead_interval of hello silence
                link_down_at_1 = not fab.hosts[1].net.link(1, 2).up
                tree = fab.hosts[0].states[1].installed.shared_tree
                return fab.counters(), link_down_at_1, tree
            finally:
                await fab.shutdown()

        counters, link_down_at_1, tree = asyncio.run(run())
        assert counters["hello_neighbors_declared_dead_total"] >= 1
        # The physical neighbor ran its local Figure 2 reaction ...
        assert link_down_at_1
        # ... and the survivors' tree dropped the unreachable member.
        assert 2 not in tree.members

    def test_no_hellos_without_interval(self):
        """hello_interval=0 keeps the pre-resync behaviour: silence."""

        async def run():
            fab = LiveFabric(grid_network(1, 3), ProtocolConfig(), LiveConfig())
            fab.register_symmetric(1)
            await fab.start()
            try:
                fab.hosts[0].fire_membership(JoinEvent(0, 1))
                await fab.quiesce()
                await asyncio.sleep(0.2)
                return fab.counters()
            finally:
                await fab.shutdown()

        counters = asyncio.run(run())
        assert counters["live_hellos_sent_total"] == 0


class TestCrashRestart:
    def test_restart_rebuilds_lsdb_via_resync_alone(self):
        """The acceptance criterion: cold boot + resync = full LSDB."""

        async def run():
            fab = LiveFabric(ring_network(5), ProtocolConfig(), fast_config())
            fab.register_symmetric(1)
            await fab.start()
            try:
                for member in (0, 2, 4):
                    fab.hosts[member].fire_membership(JoinEvent(member, 1))
                    await fab.quiesce()
                await fab.crash(2)
                await settle(fab, 0.5)
                await fab.restart(2)
                await settle(fab, 0.4)
                await settle(fab, 0.4)
                host = fab.hosts[2]
                return (
                    fab.generations[2],
                    host.router.lsdb.complete(),
                    host.router.lsdb.headers(),
                    dict(host.states[1].members) if 1 in host.states else None,
                    fab.agreement(1),
                    fab.counters(),
                )
            finally:
                await fab.shutdown()

        generation, complete, headers, members, (ok, detail), counters = asyncio.run(
            run()
        )
        assert generation == 2
        # Full LSDB, rebuilt with no seed_converged_lsdb after boot.
        assert complete
        assert set(headers) == {0, 1, 2, 3, 4}
        # The restarted switch recovered its own membership from peers.
        assert members is not None and 2 in members
        assert ok, detail
        assert counters["resync_dbd_sent_total"] >= 1
        assert counters["resync_snapshots_applied_total"] >= 1

    def test_restart_recovers_own_seqnum(self):
        """Peers hold the pre-crash LSA; the new incarnation must jump it."""

        async def run():
            fab = LiveFabric(ring_network(4), ProtocolConfig(), fast_config())
            fab.register_symmetric(1)
            await fab.start()
            try:
                fab.hosts[0].fire_membership(JoinEvent(0, 1))
                await fab.quiesce()
                await fab.crash(3)
                await settle(fab, 0.5)
                await fab.restart(3)
                await settle(fab, 0.4)
                return fab.hosts[3].router.seqnum, fab.counters()
            finally:
                await fab.shutdown()

        seqnum, counters = asyncio.run(run())
        assert counters["resync_seqnum_recoveries_total"] >= 1
        # Strictly newer than the generation-1 boot origination.
        assert seqnum >= 2

    def test_crash_guards(self):
        async def run():
            fab = LiveFabric(grid_network(1, 3), ProtocolConfig(), fast_config())
            fab.register_symmetric(1)
            await fab.start()
            try:
                with pytest.raises(ValueError, match="not crashed"):
                    await fab.restart(0)
                await fab.crash(0)
                with pytest.raises(ValueError, match="not live"):
                    await fab.crash(0)
            finally:
                await fab.shutdown()

        asyncio.run(run())


class TestPartitionHeal:
    def test_heal_reconverges_membership_and_trees(self):
        """A join the partition swallowed must propagate after the heal."""

        async def run():
            fab = LiveFabric(grid_network(1, 4), ProtocolConfig(), fast_config())
            fab.register_symmetric(1)
            await fab.start()
            try:
                fab.hosts[0].fire_membership(JoinEvent(0, 1))
                await fab.quiesce()
                fab.hosts[3].fire_membership(JoinEvent(3, 1))
                await fab.quiesce()
                fab.partition([[0, 1], [2, 3]])
                assert fab.partitioned
                await settle(fab, 0.5)
                fab.hosts[2].fire_membership(JoinEvent(2, 1))
                await fab.quiesce()
                fab.heal_partition()
                assert not fab.partitioned
                await settle(fab, 0.4)
                await settle(fab, 0.4)
                ok, detail = fab.agreement(1)
                members = sorted(fab.hosts[0].states[1].members)
                tree = fab.hosts[0].states[1].installed.shared_tree
                return ok, detail, members, tree
            finally:
                await fab.shutdown()

        ok, detail, members, tree = asyncio.run(run())
        assert ok, detail
        assert members == [0, 2, 3]
        assert tree.spans({0, 2, 3})

    def test_partition_guards(self):
        fab = LiveFabric(grid_network(1, 4), ProtocolConfig(), fast_config())
        with pytest.raises(ValueError, match="overlap"):
            fab.partition([[0, 1], [1, 2]])
        fab.partition([[0, 1], [2, 3]])
        with pytest.raises(RuntimeError, match="heal it first"):
            fab.partition([[0], [1]])
        fab.heal_partition()
        fab.partition([[0], [1, 2, 3]])
        fab.heal_partition()


class _StubTransport:
    """Records the control frames a ResyncManager would emit."""

    def __init__(self) -> None:
        self.dbds: list = []
        self.lsus: list = []
        self.snaps: list = []
        self.hellos: list = []

    def send_dbd(self, src, dest, headers, reply=False):
        self.dbds.append((src, dest, dict(headers), reply))

    def send_lsu(self, src, dest, lsa):
        self.lsus.append((src, dest, lsa))

    def send_snap(self, src, dest, snapshot):
        self.snaps.append((src, dest, snapshot))

    def send_hello(self, src, dest, generation):
        self.hellos.append((src, dest, generation))


class _StubSwitch:
    def capture_resync_snapshots(self):
        return []


class _StubRouter:
    def __init__(self, lsdb: LinkStateDatabase) -> None:
        self.lsdb = lsdb


class _StubFloodOut:
    peers: list = []


class _StubHost:
    """Just enough host surface for ResyncManager unit tests."""

    def __init__(self, net, switch_id: int = 0, dead_interval: float = 0.3) -> None:
        self.net = net
        self.switch_id = switch_id
        self.dead_interval = dead_interval
        self.switch = _StubSwitch()
        self.flood_out = _StubFloodOut()
        lsdb = LinkStateDatabase(net.n)
        lsdb.install(RouterLsa(switch_id, 5, ()))
        self.router = _StubRouter(lsdb)
        self.link_events: list = []

    def fire_link(self, u, v, up):
        self.link_events.append((u, v, up))
        return []


class TestResyncManagerUnit:
    def test_admin_down_link_is_not_resurrected(self):
        """Hello recovery must not re-up a link an operator took down."""
        net = grid_network(1, 2)
        net.set_link_state(0, 1, up=False)  # admin-down before any silence
        host = _StubHost(net)
        mgr = ResyncManager(host, _StubTransport())
        mgr.mark_boot(0.0)
        mgr.check_dead(10.0)  # way past the dead interval
        assert mgr.dead == {1: False}  # dead, but *we* did not down the link
        assert host.link_events == []  # no link-down: it was already down
        mgr.on_hello(frames.HelloFrame(src=1, dest=0, generation=1), 11.0)
        assert 1 not in mgr.dead
        assert host.link_events == []  # and no link-up either

    def test_dead_neighbor_with_up_link_fires_both_transitions(self):
        net = grid_network(1, 2)
        host = _StubHost(net)
        mgr = ResyncManager(host, _StubTransport())
        mgr.mark_boot(0.0)
        mgr.check_dead(10.0)
        assert mgr.dead == {1: True}
        assert host.link_events == [(0, 1, False)]
        mgr.on_hello(frames.HelloFrame(src=1, dest=0, generation=1), 11.0)
        assert host.link_events == [(0, 1, False), (0, 1, True)]

    def test_generation_bump_triggers_resync(self):
        net = grid_network(1, 2)
        host = _StubHost(net)
        transport = _StubTransport()
        mgr = ResyncManager(host, transport, generation=1, cold_boot=False)
        mgr.on_hello(frames.HelloFrame(src=1, dest=0, generation=1), 1.0)
        assert transport.dbds == []  # steady state: no resync
        mgr.on_hello(frames.HelloFrame(src=1, dest=0, generation=2), 2.0)
        assert len(transport.dbds) == 1  # the peer restarted: resync
        mgr.on_hello(frames.HelloFrame(src=1, dest=0, generation=2), 3.0)
        assert len(transport.dbds) == 1  # same generation again: no repeat

    def test_cold_boot_first_contact_triggers_resync(self):
        net = grid_network(1, 2)
        host = _StubHost(net)
        transport = _StubTransport()
        mgr = ResyncManager(host, transport, generation=2, cold_boot=True)
        mgr.on_hello(frames.HelloFrame(src=1, dest=0, generation=1), 1.0)
        assert len(transport.dbds) == 1

    def test_dbd_reply_terminates_handshake(self):
        """A reply DBD must never trigger another DBD (no ping-pong)."""
        net = grid_network(1, 2)
        host = _StubHost(net)  # holds only its own LSA (origin 0, seq 5)
        transport = _StubTransport()
        mgr = ResyncManager(host, transport)
        # Request from a peer that knows origin 1 better than we do:
        request = frames.DbdFrame(
            src=1, dest=0, seq=0, reply=False, headers=((1, 3),)
        )
        mgr.on_dbd(request)
        # We owe the peer our better origin-0 LSA, and a reply DBD so it
        # sends us origin 1.
        assert [(s, d) for s, d, _ in transport.lsus] == [(0, 1)]
        assert [entry[3] for entry in transport.dbds] == [True]
        # The peer's reply (same headers, reply-flagged) must not re-reply.
        reply = frames.DbdFrame(src=1, dest=0, seq=1, reply=True, headers=((1, 3),))
        mgr.on_dbd(reply)
        assert [entry[3] for entry in transport.dbds] == [True]


class TestQuiesceDiagnostics:
    def test_timeout_names_the_culprits(self):
        """A stuck barrier must say who is busy, not just that it timed out."""

        async def run():
            fab = LiveFabric(
                grid_network(1, 3),
                ProtocolConfig(),
                LiveConfig(
                    # Frames into the cut retry far beyond the test timeout.
                    policy=RetransmitPolicy(rto=30.0, rto_max=30.0, max_attempts=9),
                    quiesce_timeout=0.3,
                ),
            )
            fab.register_symmetric(1)
            await fab.start()
            try:
                fab.cut_links([(0, 1), (1, 2)])
                fab.hosts[0].fire_membership(JoinEvent(0, 1))
                with pytest.raises(QuiescenceTimeout) as exc:
                    await fab.quiesce()
                return str(exc.value), fab.quiesce_diagnostics()
            finally:
                await fab.shutdown()

        message, diagnostics = asyncio.run(run())
        assert "no quiescence within" in message
        assert "frames unacked" in message
        assert "0->" in message  # the pending frame keys are named
        assert "cut pairs" in diagnostics
        assert "(0, 1)" in diagnostics

    def test_diagnostics_when_idle(self):
        fab = LiveFabric(grid_network(1, 2), ProtocolConfig(), LiveConfig())
        assert "busy hosts: none" in fab.quiesce_diagnostics()
