"""Tests for generator-based processes: Hold, subroutines, passivate, interrupt."""

from __future__ import annotations

import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.process import Hold, Passivate, ProcessState, WaitEvent


class TestHold:
    def test_hold_advances_time(self, sim):
        times = []

        def body():
            yield Hold(2.0)
            times.append(sim.now)
            yield Hold(3.0)
            times.append(sim.now)

        sim.spawn(body())
        sim.run()
        assert times == [2.0, 5.0]

    def test_zero_hold_is_allowed(self, sim):
        def body():
            yield Hold(0.0)
            return "done"

        proc = sim.spawn(body())
        sim.run()
        assert proc.result == "done"

    def test_negative_hold_rejected(self):
        with pytest.raises(SimulationError):
            Hold(-1.0)

    def test_two_processes_interleave(self, sim):
        trace = []

        def worker(name, step):
            for _ in range(3):
                yield Hold(step)
                trace.append((sim.now, name))

        sim.spawn(worker("fast", 1.0))
        sim.spawn(worker("slow", 2.5))
        sim.run()
        assert trace == [
            (1.0, "fast"),
            (2.0, "fast"),
            (2.5, "slow"),
            (3.0, "fast"),
            (5.0, "slow"),
            (7.5, "slow"),
        ]


class TestLifecycle:
    def test_process_starts_at_spawn_time(self, sim):
        started = []

        def body():
            started.append(sim.now)
            yield Hold(1.0)

        sim.schedule(4.0, lambda: sim.spawn(body()))
        sim.run()
        assert started == [4.0]

    def test_result_captured_from_return(self, sim):
        def body():
            yield Hold(1.0)
            return 123

        proc = sim.spawn(body())
        sim.run()
        assert proc.terminated
        assert proc.result == 123

    def test_done_event_fires_with_result(self, sim):
        def body():
            yield Hold(1.0)
            return "finished"

        proc = sim.spawn(body())
        got = []
        proc.done.add_waiter(got.append)
        sim.run()
        assert got == ["finished"]

    def test_waiting_on_done_from_another_process(self, sim):
        def worker():
            yield Hold(3.0)
            return "w"

        results = []

        def waiter(proc):
            value = yield WaitEvent(proc.done)
            results.append((sim.now, value))

        w = sim.spawn(worker())
        sim.spawn(waiter(w))
        sim.run()
        assert results == [(3.0, "w")]

    def test_yielding_garbage_raises(self, sim):
        def body():
            yield 42

        sim.spawn(body())
        with pytest.raises(SimulationError, match="unsupported"):
            sim.run()


class TestSubroutines:
    def test_yielded_generator_runs_as_subroutine(self, sim):
        def inner():
            yield Hold(2.0)
            return "inner-value"

        trace = []

        def outer():
            value = yield inner()
            trace.append((sim.now, value))

        sim.spawn(outer())
        sim.run()
        assert trace == [(2.0, "inner-value")]

    def test_nested_subroutines(self, sim):
        def level3():
            yield Hold(1.0)
            return 3

        def level2():
            v = yield level3()
            yield Hold(1.0)
            return v + 10

        def level1():
            v = yield level2()
            return v + 100

        proc = sim.spawn(level1())
        sim.run()
        assert proc.result == 113
        assert sim.now == 2.0

    def test_subroutine_loop(self, sim):
        def step():
            yield Hold(1.0)
            return 1

        def body():
            total = 0
            for _ in range(4):
                total += yield step()
            return total

        proc = sim.spawn(body())
        sim.run()
        assert proc.result == 4
        assert sim.now == 4.0


class TestPassivate:
    def test_passivate_until_activated(self, sim):
        trace = []

        def sleeper():
            trace.append(("sleep", sim.now))
            value = yield Passivate()
            trace.append(("woke", sim.now, value))

        proc = sim.spawn(sleeper())
        sim.schedule(5.0, lambda: proc.activate("hi"))
        sim.run()
        assert trace == [("sleep", 0.0), ("woke", 5.0, "hi")]

    def test_activate_non_passive_raises(self, sim):
        def body():
            yield Hold(10.0)

        proc = sim.spawn(body())
        sim.run(until=1.0)
        with pytest.raises(SimulationError):
            proc.activate()


class TestInterrupt:
    def test_interrupt_cancels_hold(self, sim):
        trace = []

        def body():
            try:
                yield Hold(100.0)
            except SimulationError:
                trace.append(("interrupted", sim.now))

        proc = sim.spawn(body())
        sim.schedule(2.0, proc.interrupt)
        sim.run()
        assert trace == [("interrupted", 2.0)]
        assert proc.terminated

    def test_interrupt_with_custom_exception(self, sim):
        class Boom(Exception):
            pass

        caught = []

        def body():
            try:
                yield Hold(100.0)
            except Boom:
                caught.append(True)
                yield Hold(1.0)
                return "recovered"

        proc = sim.spawn(body())
        sim.schedule(1.0, lambda: proc.interrupt(Boom()))
        sim.run()
        assert caught == [True]
        assert proc.result == "recovered"

    def test_interrupt_terminated_process_is_noop(self, sim):
        def body():
            yield Hold(1.0)

        proc = sim.spawn(body())
        sim.run()
        proc.interrupt()  # no raise
        assert proc.state is ProcessState.TERMINATED
