"""Round-trip and robustness tests for the LSA wire format."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lsa import McEvent, McLsa
from repro.core.mc import Role
from repro.core.wire import (
    MAGIC,
    WireDecodeError,
    WireError,
    decode_lsa,
    decode_topology,
    encode_lsa,
    encode_topology,
)
from repro.lsr.lsa import NonMcLsa, RouterLsa
from repro.trees.base import SHARED, McTopology, MulticastTree


def shared_topology():
    return McTopology.shared(
        MulticastTree.build([(0, 1), (1, 2)], [0, 2], root=None)
    )


def per_source_topology():
    return McTopology.per_source(
        {
            0: MulticastTree.build([(0, 3)], [0, 3], root=0),
            5: MulticastTree.build([(4, 5), (3, 4)], [3, 5], root=5),
        }
    )


class TestMcRoundTrip:
    def test_join_with_proposal(self):
        lsa = McLsa(3, McEvent.JOIN, 7, shared_topology(), (1, 0, 2, 0), Role.BOTH)
        assert decode_lsa(encode_lsa(lsa)) == lsa

    def test_leave_without_proposal(self):
        lsa = McLsa(1, McEvent.LEAVE, 42, None, (5, 5, 5))
        assert decode_lsa(encode_lsa(lsa)) == lsa

    def test_triggered_lsa(self):
        lsa = McLsa(0, McEvent.NONE, 9, per_source_topology(), (2, 1))
        assert decode_lsa(encode_lsa(lsa)) == lsa

    def test_link_event(self):
        lsa = McLsa(4, McEvent.LINK, 1, None, (0, 0, 0, 0, 1))
        assert decode_lsa(encode_lsa(lsa)) == lsa

    def test_empty_topology(self):
        lsa = McLsa(0, McEvent.NONE, 1, McTopology.empty(), (1,))
        assert decode_lsa(encode_lsa(lsa)) == lsa

    @given(
        source=st.integers(0, 500),
        conn=st.integers(0, 2**20),
        stamp=st.lists(st.integers(0, 2**20), min_size=1, max_size=30),
        event=st.sampled_from([McEvent.LEAVE, McEvent.LINK]),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_event_lsas(self, source, conn, stamp, event):
        lsa = McLsa(source, event, conn, None, tuple(stamp))
        assert decode_lsa(encode_lsa(lsa)) == lsa

    @given(
        members=st.sets(st.integers(0, 100), min_size=2, max_size=8),
        stamp=st.lists(st.integers(0, 100), min_size=1, max_size=10),
        role=st.sampled_from(list(Role)),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_join_with_tree(self, members, stamp, role):
        ordered = sorted(members)
        edges = list(zip(ordered, ordered[1:]))  # a path over the members
        topo = McTopology.shared(MulticastTree.build(edges, members))
        lsa = McLsa(0, McEvent.JOIN, 1, topo, tuple(stamp), role)
        assert decode_lsa(encode_lsa(lsa)) == lsa


class TestNonMcRoundTrip:
    def test_router_lsa(self):
        desc = RouterLsa(2, 17, ((0, 1.5, True), (5, 0.25, False)))
        lsa = NonMcLsa(2, desc)
        assert decode_lsa(encode_lsa(lsa)) == lsa

    def test_empty_links(self):
        lsa = NonMcLsa(0, RouterLsa(0, 1, ()))
        assert decode_lsa(encode_lsa(lsa)) == lsa

    @given(
        source=st.integers(0, 300),
        seqnum=st.integers(1, 2**20),
        links=st.lists(
            st.tuples(
                st.integers(0, 300),
                st.floats(0.001, 1000.0, allow_nan=False),
                st.booleans(),
            ),
            max_size=10,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, source, seqnum, links):
        lsa = NonMcLsa(source, RouterLsa(source, seqnum, tuple(links)))
        assert decode_lsa(encode_lsa(lsa)) == lsa


class TestRobustness:
    def test_bad_magic(self):
        data = bytes([0x00]) + encode_lsa(
            McLsa(0, McEvent.LEAVE, 1, None, (1,))
        )[1:]
        with pytest.raises(WireError, match="magic"):
            decode_lsa(data)

    def test_bad_version(self):
        good = bytearray(encode_lsa(McLsa(0, McEvent.LEAVE, 1, None, (1,))))
        good[1] = 99
        with pytest.raises(WireError, match="version"):
            decode_lsa(bytes(good))

    def test_truncation_detected(self):
        data = encode_lsa(McLsa(3, McEvent.JOIN, 7, shared_topology(), (1, 2), Role.BOTH))
        for cut in (3, 7, len(data) - 1):
            with pytest.raises(WireError):
                decode_lsa(data[:cut])

    def test_trailing_garbage_detected(self):
        data = encode_lsa(McLsa(0, McEvent.LEAVE, 1, None, (1,)))
        with pytest.raises(WireError, match="trailing"):
            decode_lsa(data + b"\x00")

    def test_encode_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            encode_lsa("not an lsa")

    def test_decode_error_is_single_type(self):
        """Every failure mode funnels into WireDecodeError (a ValueError)."""
        assert issubclass(WireDecodeError, WireError)
        assert issubclass(WireDecodeError, ValueError)
        for blob in (b"", b"\x00", b"\xd6", b"\xd6\x01", b"\xff" * 40):
            with pytest.raises(WireDecodeError):
                decode_lsa(blob)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_fuzz_never_crashes_uncontrolled(self, blob):
        """Arbitrary bytes either decode or raise WireDecodeError -- nothing else."""
        try:
            decode_lsa(blob)
        except WireDecodeError:
            pass

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_fuzz_valid_prefix_corruption(self, suffix):
        """Truncated/extended real encodings also fail with WireDecodeError."""
        data = encode_lsa(
            McLsa(3, McEvent.JOIN, 7, shared_topology(), (1, 2), Role.BOTH)
        )
        for blob in (data[: len(data) // 2] + suffix, data + suffix):
            try:
                decode_lsa(blob)
            except WireDecodeError:
                pass


class TestTopologyCodec:
    def test_roundtrip_shared(self):
        topo = shared_topology()
        assert decode_topology(encode_topology(topo)) == topo

    def test_roundtrip_per_source(self):
        topo = per_source_topology()
        assert decode_topology(encode_topology(topo)) == topo

    def test_roundtrip_empty(self):
        topo = McTopology.empty()
        assert decode_topology(encode_topology(topo)) == topo

    def test_canonical_bytes_stable(self):
        """Re-encoding a decoded topology reproduces the exact bytes."""
        data = encode_topology(per_source_topology())
        assert encode_topology(decode_topology(data)) == data

    def test_trailing_garbage_detected(self):
        data = encode_topology(shared_topology())
        with pytest.raises(WireDecodeError, match="trailing"):
            decode_topology(data + b"\x00")

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_fuzz_never_crashes_uncontrolled(self, blob):
        try:
            decode_topology(blob)
        except WireDecodeError:
            pass
