"""The benchmark regression harness: schema, invariants, baseline gating."""

from __future__ import annotations

import copy
import importlib.util
import json
import pathlib

import pytest

REGRESS_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "regress.py"
)


@pytest.fixture(scope="module")
def regress():
    spec = importlib.util.spec_from_file_location("regress", REGRESS_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def quick_report(regress):
    """One quick-mode run shared by the schema/invariant/baseline tests."""
    return regress.run_benchmarks("quick")


class TestReportSchema:
    def test_header_fields(self, regress, quick_report):
        assert quick_report["schema"] == regress.SCHEMA
        assert quick_report["mode"] == "quick"
        assert quick_report["sizes"] == [16]
        assert json.loads(json.dumps(quick_report)) == quick_report

    def test_every_benchmark_reports_wall_time(self, regress, quick_report):
        benches = quick_report["benchmarks"]
        # The ispf pair, the live SLO bench, and the dataplane, frr, and
        # csr benches only run under their own --mode (or --only).
        expected = (
            set(regress.BENCHMARKS)
            - set(regress.ISPF_BENCHMARKS)
            - set(regress.CONVERGENCE_BENCHMARKS)
            - set(regress.DATAPLANE_BENCHMARKS)
            - set(regress.FRR_BENCHMARKS)
            - set(regress.CSR_BENCHMARKS)
        )
        assert set(benches) == expected
        for record in benches.values():
            assert record["wall_time_s"] >= 0.0

    def test_churn_benchmarks_report_protocol_counters(self, quick_report):
        for name in ("exp1_churn", "exp2_churn"):
            record = quick_report["benchmarks"][name]
            assert record["events"] > 0
            assert record["computations"] > 0
            assert record["dijkstra_runs"] > 0
            assert record["all_agreed"] is True
            assert 0.0 <= record["spf_hit_rate"] <= 1.0


class TestInvariants:
    def test_quick_run_satisfies_invariants(self, regress, quick_report):
        assert regress.check_invariants(quick_report) == []

    def test_cache_equivalence_meets_acceptance_bar(self, quick_report):
        eq = quick_report["benchmarks"]["cache_equivalence"]
        assert eq["identical_trees"] is True
        assert eq["dijkstra_reduction"] >= 2.0

    def test_violations_are_reported(self, regress, quick_report):
        broken = copy.deepcopy(quick_report)
        broken["benchmarks"]["cache_equivalence"]["identical_trees"] = False
        broken["benchmarks"]["cache_equivalence"]["dijkstra_reduction"] = 1.2
        broken["benchmarks"]["exp1_churn"]["all_agreed"] = False
        failures = regress.check_invariants(broken)
        assert len(failures) == 3


class TestIspfGate:
    def test_only_selects_ispf_benchmark(self, regress):
        report = regress.run_benchmarks("quick", only=["ispf_churn"])
        assert set(report["benchmarks"]) == {"ispf_churn"}
        record = report["benchmarks"]["ispf_churn"]
        assert record["identical_trees"] is True
        assert record["identical_tables"] is True

    def test_failure_churn_meets_acceptance_bar(self, regress):
        report = regress.run_benchmarks("quick", only=["ispf_failure_churn"])
        fc = report["benchmarks"]["ispf_failure_churn"]
        assert fc["identical_trees"] is True
        assert fc["identical_tables"] is True
        assert fc["ispf_repairs"] > 0
        assert fc["relaxations_ispf"] < fc["relaxations_full"]
        assert regress.check_invariants(report) == []

    def test_ispf_violations_are_reported(self, regress):
        report = {
            "sizes": [20, 100],
            "benchmarks": {
                "ispf_failure_churn": {
                    "identical_trees": False,
                    "identical_tables": False,
                    "ispf_repairs": 0,
                    "relaxation_reduction": 1.5,
                },
            },
        }
        failures = regress.check_invariants(report)
        assert len(failures) == 4
        # The relaxation gate only applies at acceptance scale (n >= 100).
        report["sizes"] = [16]
        assert len(regress.check_invariants(report)) == 3


class TestDataplaneGate:
    def test_throughput_reports_identical_deliveries(self, regress):
        report = regress.run_benchmarks("quick", only=["dataplane_throughput"])
        assert set(report["benchmarks"]) == {"dataplane_throughput"}
        dp = report["benchmarks"]["dataplane_throughput"]
        assert dp["identical_deliveries"] is True
        assert dp["mismatches"] == 0
        assert dp["batched_pps"] > 0
        assert dp["delivery_p99_sim"] >= dp["delivery_p50_sim"]
        # the >= 10x speedup gate only applies at acceptance scale
        assert regress.check_invariants(report) == []

    def test_contrast_counts_mospf_computations(self, regress):
        report = regress.run_benchmarks("quick", only=["dataplane_contrast"])
        dc = report["benchmarks"]["dataplane_contrast"]
        assert dc["mospf_computations_per_datagram"] > 0
        assert dc["dgmc_data_path_computations"] == 0
        assert dc["batched_pps"] > dc["mospf_pps"]
        assert regress.check_invariants(report) == []

    def test_dataplane_violations_are_reported(self, regress):
        report = {
            "sizes": [20, 100],
            "benchmarks": {
                "dataplane_throughput": {
                    "reference_packets": 360,
                    "identical_deliveries": False,
                    "mismatches": 3,
                    "speedup": 4.0,
                },
                "dataplane_contrast": {
                    "mospf_computations_per_datagram": 0.0,
                    "batched_pps": 100.0,
                    "mospf_pps": 200.0,
                },
            },
        }
        failures = regress.check_invariants(report)
        assert len(failures) == 4
        # The speedup gate only applies at acceptance scale (n >= 100).
        report["sizes"] = [16]
        assert len(regress.check_invariants(report)) == 3


class TestBaselineComparison:
    def test_identical_run_passes(self, regress, quick_report):
        assert (
            regress.compare_to_baseline(quick_report, quick_report, 0.25, 0.10)
            == []
        )

    def test_wall_time_regression_fails(self, regress, quick_report):
        baseline = copy.deepcopy(quick_report)
        run = copy.deepcopy(quick_report)
        base_time = baseline["benchmarks"]["exp1_churn"]["wall_time_s"] = 1.0
        run["benchmarks"]["exp1_churn"]["wall_time_s"] = base_time * 1.5
        failures = regress.compare_to_baseline(run, baseline, 0.25, 0.10)
        assert len(failures) == 1
        assert "wall time" in failures[0]
        # Within tolerance: no failure.
        run["benchmarks"]["exp1_churn"]["wall_time_s"] = base_time * 1.2
        assert regress.compare_to_baseline(run, baseline, 0.25, 0.10) == []

    def test_counter_regression_fails(self, regress, quick_report):
        baseline = copy.deepcopy(quick_report)
        run = copy.deepcopy(quick_report)
        run["benchmarks"]["exp1_churn"]["dijkstra_runs"] = (
            baseline["benchmarks"]["exp1_churn"]["dijkstra_runs"] * 2
        )
        failures = regress.compare_to_baseline(run, baseline, 0.25, 0.10)
        assert any("dijkstra_runs" in f for f in failures)

    def test_mode_mismatch_fails(self, regress, quick_report):
        baseline = copy.deepcopy(quick_report)
        baseline["mode"] = "smoke"
        failures = regress.compare_to_baseline(quick_report, baseline, 0.25, 0.10)
        assert failures and "mode" in failures[0]

    def test_multi_mode_baseline_selects_entry(self, regress, quick_report):
        baseline = {"schema": regress.SCHEMA,
                    "modes": {"quick": copy.deepcopy(quick_report)}}
        assert (
            regress.compare_to_baseline(quick_report, baseline, 0.25, 0.10)
            == []
        )
        # An entry for a different mode only does not match.
        baseline = {"schema": regress.SCHEMA,
                    "modes": {"smoke": copy.deepcopy(quick_report)}}
        failures = regress.compare_to_baseline(quick_report, baseline, 0.25, 0.10)
        assert failures and "mode" in failures[0]

    def test_missing_benchmark_in_baseline_is_skipped(self, regress, quick_report):
        baseline = copy.deepcopy(quick_report)
        del baseline["benchmarks"]["spf_substrate"]
        assert (
            regress.compare_to_baseline(quick_report, baseline, 0.25, 0.10)
            == []
        )


class TestMain:
    def test_main_writes_report_and_checks_baseline(self, regress, tmp_path):
        out = tmp_path / "BENCH_quick.json"
        baseline = tmp_path / "baseline.json"
        assert (
            regress.main(
                [
                    "--mode",
                    "quick",
                    "--out",
                    str(out),
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        report = json.loads(out.read_text())
        assert report["schema"] == regress.SCHEMA
        saved = json.loads(baseline.read_text())
        assert saved["modes"]["quick"] == report
        # Observability artifacts land next to the report.
        assert (tmp_path / "TRACE_quick.json").exists()
        assert (tmp_path / "METRICS_quick.prom").exists()
        # Same-machine re-run against the fresh baseline passes the gate.
        assert (
            regress.main(
                [
                    "--mode",
                    "quick",
                    "--out",
                    str(out),
                    "--baseline",
                    str(baseline),
                    "--check",
                    "--tolerance",
                    "5.0",
                ]
            )
            == 0
        )

    def test_missing_baseline_fails_check(self, regress, tmp_path):
        assert (
            regress.main(
                [
                    "--mode",
                    "quick",
                    "--only",
                    "spf_substrate",
                    "--out",
                    str(tmp_path / "b.json"),
                    "--baseline",
                    str(tmp_path / "nope.json"),
                    "--check",
                ]
            )
            == 1
        )
