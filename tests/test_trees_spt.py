"""Tests for source-rooted shortest-path trees."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lsr import spf
from repro.topo.generators import grid_network, random_connected_network
from repro.trees.base import TreeError
from repro.trees.spt import prune_to_receivers, source_rooted_tree


def grid_adj():
    return spf.network_adjacency(grid_network(3, 3))


class TestSourceRootedTree:
    def test_tree_spans_source_and_receivers(self):
        tree = source_rooted_tree(grid_adj(), 0, [8, 2])
        tree.validate([0, 2, 8])
        assert tree.root == 0

    def test_paths_are_shortest(self):
        adj = grid_adj()
        tree = source_rooted_tree(adj, 0, [8])
        # 0 -> 8 in a 3x3 grid costs 4 hops
        assert len(tree.edges) == 4

    def test_leaves_are_receivers(self):
        adj = grid_adj()
        tree = source_rooted_tree(adj, 0, [2, 6])
        degree = {n: tree.degree(n) for n in tree.nodes()}
        for node, deg in degree.items():
            if deg == 1 and node != 0:
                assert node in (2, 6)

    def test_unreachable_receiver_raises(self):
        adj = {0: {1: 1.0}, 1: {0: 1.0}, 2: {}}
        with pytest.raises(TreeError, match="unreachable"):
            source_rooted_tree(adj, 0, [2])

    def test_empty_receivers(self):
        tree = source_rooted_tree(grid_adj(), 4, [])
        assert len(tree.edges) == 0
        assert tree.members == frozenset({4})

    def test_receiver_equal_to_source(self):
        tree = source_rooted_tree(grid_adj(), 4, [4])
        assert len(tree.edges) == 0

    @given(st.integers(2, 30), st.integers(0, 500), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_always_valid_on_random_graphs(self, n, seed, k):
        rng = random.Random(seed)
        net = random_connected_network(n, rng)
        adj = spf.network_adjacency(net)
        receivers = rng.sample(range(n), min(k, n))
        source = rng.randrange(n)
        tree = source_rooted_tree(adj, source, receivers)
        tree.validate(set(receivers) | {source})
        assert tree.is_tree()


class TestPrune:
    def test_prune_removes_dangling_branch(self):
        adj = grid_adj()
        tree = source_rooted_tree(adj, 0, [2, 8])
        pruned = prune_to_receivers(tree, [2])
        pruned.validate([0, 2])
        assert len(pruned.edges) == 2  # just the 0-1-2 path

    def test_prune_keeps_root(self):
        adj = grid_adj()
        tree = source_rooted_tree(adj, 0, [8])
        pruned = prune_to_receivers(tree, [])
        # nothing left but the root itself
        assert len(pruned.edges) == 0
        assert pruned.root == 0

    def test_prune_keeps_relay_members(self):
        # receivers 1 (relay on the way to 2) stays even when 2 leaves
        adj = {0: {1: 1.0}, 1: {0: 1.0, 2: 1.0}, 2: {1: 1.0}}
        tree = source_rooted_tree(adj, 0, [1, 2])
        pruned = prune_to_receivers(tree, [1])
        assert pruned.edges == frozenset({(0, 1)})

    def test_prune_is_idempotent(self):
        adj = grid_adj()
        tree = source_rooted_tree(adj, 0, [2, 8])
        once = prune_to_receivers(tree, [2])
        twice = prune_to_receivers(once, [2])
        assert once.edges == twice.edges
