"""Smoke tests: every example script runs clean via its main()."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "teleconference",
        "video_broadcast",
        "receiver_only_service",
        "link_failure_recovery",
        "hierarchical_domains",
    ],
)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert "network" in out
    assert "FAILED" not in out


def test_reproduce_figures_quick(capsys):
    module = load_example("reproduce_figures")
    module.main(["--quick"])
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "Figure 7" in out
    assert "Figure 8" in out
    assert "brute-force" in out
    assert " NO" not in out  # every row agreed
