"""Tests for statistics collection: Table (Welford/Chan) and Meter."""

from __future__ import annotations

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.sim.kernel import Simulator
from repro.sim.monitor import Meter, Table, t_quantile_975
from repro.sim.process import Hold


class TestTable:
    def test_empty_table(self):
        t = Table("x")
        assert t.count == 0
        assert t.mean == 0.0
        assert t.variance == 0.0
        assert t.confidence_halfwidth() == 0.0

    def test_single_observation(self):
        t = Table()
        t.record(5.0)
        assert t.mean == 5.0
        assert t.variance == 0.0
        assert t.minimum == t.maximum == 5.0

    def test_known_sample(self):
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        t = Table()
        for v in data:
            t.record(v)
        assert t.mean == pytest.approx(statistics.mean(data))
        assert t.variance == pytest.approx(statistics.variance(data))
        assert t.stdev == pytest.approx(statistics.stdev(data))
        assert t.minimum == 2.0
        assert t.maximum == 9.0

    def test_confidence_interval_matches_formula(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        t = Table()
        for v in data:
            t.record(v)
        expected_hw = t_quantile_975(4) * statistics.stdev(data) / math.sqrt(5)
        assert t.confidence_halfwidth() == pytest.approx(expected_hw)
        low, high = t.confidence_interval()
        assert low == pytest.approx(3.0 - expected_hw)
        assert high == pytest.approx(3.0 + expected_hw)

    def test_unsupported_level_rejected(self):
        t = Table()
        t.record(1.0)
        t.record(2.0)
        with pytest.raises(ValueError):
            t.confidence_halfwidth(level=0.99)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_welford_matches_statistics_module(self, data):
        t = Table()
        for v in data:
            t.record(v)
        assert t.mean == pytest.approx(statistics.mean(data), rel=1e-9, abs=1e-6)
        assert t.variance == pytest.approx(
            statistics.variance(data), rel=1e-6, abs=1e-4
        )

    @given(
        st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
        st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
    )
    def test_merge_equals_concatenation(self, a, b):
        t1 = Table()
        for v in a:
            t1.record(v)
        t2 = Table()
        for v in b:
            t2.record(v)
        t1.merge(t2)
        combined = Table()
        for v in a + b:
            combined.record(v)
        assert t1.count == combined.count
        assert t1.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-9)
        assert t1.variance == pytest.approx(combined.variance, rel=1e-6, abs=1e-6)
        assert t1.minimum == combined.minimum
        assert t1.maximum == combined.maximum

    def test_merge_into_empty(self):
        t1 = Table()
        t2 = Table()
        t2.record(3.0)
        t1.merge(t2)
        assert t1.count == 1
        assert t1.mean == 3.0

    def test_merge_empty_is_noop(self):
        t1 = Table()
        t1.record(1.0)
        t1.merge(Table())
        assert t1.count == 1


class TestTQuantile:
    def test_small_dof_values(self):
        assert t_quantile_975(1) == pytest.approx(12.706)
        assert t_quantile_975(9) == pytest.approx(2.262)

    def test_large_dof_uses_normal(self):
        assert t_quantile_975(1000) == pytest.approx(1.96)

    def test_monotone_decreasing(self):
        values = [t_quantile_975(d) for d in range(1, 40)]
        assert values == sorted(values, reverse=True)

    def test_scipy_agreement(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for dof in (1, 5, 10, 25, 30):
            expected = scipy_stats.t.ppf(0.975, dof)
            assert t_quantile_975(dof) == pytest.approx(expected, abs=5e-3)


class TestMeter:
    def test_rate(self):
        sim = Simulator()
        meter = Meter(sim, "floods")

        def body():
            for _ in range(5):
                yield Hold(2.0)
                meter.tick()

        sim.spawn(body())
        sim.run()
        assert meter.count == 5
        assert meter.rate() == pytest.approx(0.5)

    def test_rate_zero_elapsed(self):
        sim = Simulator()
        meter = Meter(sim)
        meter.tick(3)
        assert meter.rate() == 0.0

    def test_reset(self):
        sim = Simulator()
        meter = Meter(sim)
        meter.tick(10)
        meter.reset()
        assert meter.count == 0
