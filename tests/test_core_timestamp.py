"""Tests for vector timestamps: the partial order and its laws (invariant 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.timestamp import (
    VectorTimestamp,
    stamp_geq,
    stamp_gt,
    stamp_max,
)

vectors = st.lists(st.integers(0, 20), min_size=1, max_size=8)


def pair_of_vectors():
    return st.integers(1, 8).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, 20), min_size=n, max_size=n),
            st.lists(st.integers(0, 20), min_size=n, max_size=n),
        )
    )


class TestConstruction:
    def test_zero_initialized(self):
        t = VectorTimestamp(4)
        assert t.snapshot() == (0, 0, 0, 0)
        assert len(t) == 4

    def test_from_values(self):
        t = VectorTimestamp([1, 2, 3])
        assert t.snapshot() == (1, 2, 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            VectorTimestamp(0)
        with pytest.raises(ValueError):
            VectorTimestamp([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            VectorTimestamp([1, -1])
        t = VectorTimestamp(2)
        with pytest.raises(ValueError):
            t[0] = -5


class TestMutation:
    def test_increment(self):
        t = VectorTimestamp(3)
        t.increment(1)
        t.increment(1, by=2)
        assert t.snapshot() == (0, 3, 0)

    def test_setitem_getitem(self):
        t = VectorTimestamp(2)
        t[1] = 7
        assert t[1] == 7

    def test_assign(self):
        t = VectorTimestamp(3)
        t.assign([4, 5, 6])
        assert t.snapshot() == (4, 5, 6)
        with pytest.raises(ValueError):
            t.assign([1, 2])

    def test_merge_is_componentwise_max(self):
        t = VectorTimestamp([1, 5, 0])
        changed = t.merge([3, 2, 0])
        assert changed
        assert t.snapshot() == (3, 5, 0)
        assert not t.merge([0, 0, 0])

    def test_merge_length_mismatch(self):
        with pytest.raises(ValueError):
            VectorTimestamp(2).merge([1, 2, 3])


class TestOrder:
    def test_geq_examples(self):
        a = VectorTimestamp([2, 3])
        assert a.geq([2, 3])
        assert a.geq([1, 3])
        assert not a.geq([3, 0])

    def test_gt_is_strict(self):
        a = VectorTimestamp([2, 3])
        assert not a.gt([2, 3])
        assert a.gt([2, 2])

    def test_concurrent(self):
        a = VectorTimestamp([1, 0])
        assert a.concurrent_with([0, 1])
        assert not a.concurrent_with([0, 0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VectorTimestamp(2).geq([1, 2, 3])

    @given(vectors)
    def test_reflexive(self, v):
        assert VectorTimestamp(v).geq(v)
        assert not VectorTimestamp(v).gt(v)

    @given(pair_of_vectors())
    def test_antisymmetry(self, pair):
        a, b = pair
        ta, tb = VectorTimestamp(a), VectorTimestamp(b)
        if ta.geq(b) and tb.geq(a):
            assert a == b

    @given(
        st.integers(1, 6).flatmap(
            lambda n: st.tuples(
                *[st.lists(st.integers(0, 10), min_size=n, max_size=n)] * 3
            )
        )
    )
    def test_transitivity(self, triple):
        a, b, c = triple
        if VectorTimestamp(a).geq(b) and VectorTimestamp(b).geq(c):
            assert VectorTimestamp(a).geq(c)

    @given(pair_of_vectors())
    def test_merge_is_least_upper_bound(self, pair):
        a, b = pair
        m = VectorTimestamp(a)
        m.merge(b)
        assert m.geq(a) and m.geq(b)
        # least: any upper bound dominates the merge
        ub = [max(x, y) for x, y in zip(a, b)]
        assert VectorTimestamp(ub).geq(m.snapshot())
        assert m.geq(ub)


class TestMisc:
    def test_copy_is_independent(self):
        a = VectorTimestamp([1, 2])
        b = a.copy()
        b.increment(0)
        assert a.snapshot() == (1, 2)

    def test_equality_with_tuples_and_lists(self):
        a = VectorTimestamp([1, 2])
        assert a == (1, 2)
        assert a == [1, 2]
        assert a == VectorTimestamp([1, 2])
        assert a != (1, 3)

    def test_hash_forbidden(self):
        with pytest.raises(TypeError):
            hash(VectorTimestamp(2))

    def test_total(self):
        assert VectorTimestamp([1, 2, 3]).total() == 6

    def test_equals_method(self):
        assert VectorTimestamp([1, 2]).equals((1, 2))


class TestStampHelpers:
    def test_stamp_geq_gt(self):
        assert stamp_geq((2, 2), (1, 2))
        assert not stamp_geq((2, 2), (3, 0))
        assert stamp_gt((2, 2), (1, 2))
        assert not stamp_gt((2, 2), (2, 2))

    def test_stamp_max(self):
        assert stamp_max((1, 5), (3, 2)) == (3, 5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            stamp_geq((1,), (1, 2))
        with pytest.raises(ValueError):
            stamp_max((1,), (1, 2))
