"""Tests for mailboxes: FIFO delivery, blocking receive, timeouts."""

from __future__ import annotations

import pytest

from repro.sim.mailbox import Mailbox, MailboxClosed
from repro.sim.process import Hold, Receive


class TestBasics:
    def test_send_then_receive_preserves_fifo(self, sim):
        box = Mailbox(sim)
        got = []

        def consumer():
            for _ in range(3):
                got.append((yield Receive(box)))

        for i in range(3):
            box.send(i)
        sim.spawn(consumer())
        sim.run()
        assert got == [0, 1, 2]

    def test_receive_blocks_until_send(self, sim):
        box = Mailbox(sim)
        got = []

        def consumer():
            got.append(((yield Receive(box)), sim.now))

        sim.spawn(consumer())
        sim.schedule(5.0, lambda: box.send("late"))
        sim.run()
        assert got == [("late", 5.0)]

    def test_multiple_receivers_served_in_arrival_order(self, sim):
        box = Mailbox(sim)
        got = []

        def consumer(name):
            got.append((name, (yield Receive(box))))

        sim.spawn(consumer("first"))
        sim.spawn(consumer("second"))
        sim.schedule(1.0, lambda: box.send("a"))
        sim.schedule(2.0, lambda: box.send("b"))
        sim.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_len_and_empty(self, sim):
        box = Mailbox(sim)
        assert box.empty
        assert len(box) == 0
        box.send(1)
        assert not box.empty
        assert len(box) == 1

    def test_mailbox_is_truthy_even_when_empty(self, sim):
        box = Mailbox(sim)
        assert bool(box) is True

    def test_peek_all_does_not_consume(self, sim):
        box = Mailbox(sim)
        box.send("x")
        box.send("y")
        assert box.peek_all() == ["x", "y"]
        assert len(box) == 2


class TestTryReceive:
    def test_try_receive_nonempty(self, sim):
        box = Mailbox(sim)
        box.send(7)
        ok, value = box.try_receive()
        assert ok and value == 7
        assert box.empty

    def test_try_receive_empty(self, sim):
        box = Mailbox(sim)
        ok, value = box.try_receive()
        assert not ok and value is None


class TestTimeout:
    def test_receive_timeout_fires(self, sim):
        box = Mailbox(sim)
        got = []

        def consumer():
            value = yield Receive(box, timeout=3.0)
            got.append((value is Receive.TIMED_OUT, sim.now))

        sim.spawn(consumer())
        sim.run()
        assert got == [(True, 3.0)]

    def test_message_before_timeout_wins(self, sim):
        box = Mailbox(sim)
        got = []

        def consumer():
            value = yield Receive(box, timeout=3.0)
            got.append((value, sim.now))

        sim.spawn(consumer())
        sim.schedule(1.0, lambda: box.send("fast"))
        sim.run()
        assert got == [("fast", 1.0)]
        # the timeout must not fire later
        assert sim.now == pytest.approx(3.0, abs=3.0)

    def test_timed_out_receiver_not_served_later(self, sim):
        box = Mailbox(sim)
        got = []

        def impatient():
            value = yield Receive(box, timeout=1.0)
            got.append(("impatient", value is Receive.TIMED_OUT))

        def patient():
            value = yield Receive(box)
            got.append(("patient", value))

        sim.spawn(impatient())
        sim.spawn(patient())
        sim.schedule(5.0, lambda: box.send("msg"))
        sim.run()
        assert ("impatient", True) in got
        assert ("patient", "msg") in got


class TestClose:
    def test_send_to_closed_raises(self, sim):
        box = Mailbox(sim)
        box.close()
        with pytest.raises(MailboxClosed):
            box.send(1)

    def test_queued_messages_survive_close(self, sim):
        box = Mailbox(sim)
        box.send("kept")
        box.close()
        ok, value = box.try_receive()
        assert ok and value == "kept"


class TestCounters:
    def test_sent_and_delivered_counts(self, sim):
        box = Mailbox(sim)
        got = []

        def consumer():
            while True:
                got.append((yield Receive(box)))

        sim.spawn(consumer())
        for i in range(4):
            box.send(i)
        sim.run()
        assert box.sent_count == 4
        assert box.delivered_count == 4
        assert got == [0, 1, 2, 3]
