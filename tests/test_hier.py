"""Tests for hierarchical D-GMC: partitioning, stitching, scoping win."""

from __future__ import annotations

import random

import pytest

from repro.core import DgmcNetwork, JoinEvent, ProtocolConfig
from repro.hier import AreaPlan, HierDgmcNetwork, bfs_partition
from repro.hier.partition import PartitionError
from repro.topo.generators import grid_network, waxman_network


def grid_plan():
    """4x4 grid split into left/right halves (columns 0-1 vs 2-3)."""
    net = grid_network(4, 4)
    assignment = {x: (0 if x % 4 < 2 else 1) for x in net.switches()}
    return AreaPlan(net, assignment)


class TestPartition:
    def test_grid_plan_shapes(self):
        plan = grid_plan()
        assert plan.area_ids == [0, 1]
        assert plan.area(0).net.n == 8
        assert plan.area(1).net.n == 8
        # columns 1 and 2 touch across the cut: 4 borders each side
        assert len(plan.area(0).borders) == 4
        assert len(plan.area(1).borders) == 4
        assert plan.backbone.n == 8

    def test_leader_is_smallest_border(self):
        plan = grid_plan()
        assert plan.area(0).leader == min(plan.area(0).borders)

    def test_id_mappings_roundtrip(self):
        plan = grid_plan()
        view = plan.area(1)
        for g, l in view.to_local.items():
            assert view.to_global[l] == g

    def test_assignment_must_cover_all(self):
        net = grid_network(2, 2)
        with pytest.raises(PartitionError):
            AreaPlan(net, {0: 0, 1: 1})

    def test_needs_two_areas(self):
        net = grid_network(2, 2)
        with pytest.raises(PartitionError):
            AreaPlan(net, {x: 0 for x in net.switches()})

    def test_disconnected_area_rejected(self):
        net = grid_network(1, 4)  # line 0-1-2-3
        with pytest.raises(PartitionError, match="connected"):
            AreaPlan(net, {0: 0, 1: 1, 2: 1, 3: 0})  # area 0 = {0, 3}: split

    def test_backbone_virtual_edges_expand_to_paths(self):
        plan = grid_plan()
        view = plan.area(0)
        a, b = view.borders[0], view.borders[-1]
        la, lb = plan.backbone_to_local[a], plan.backbone_to_local[b]
        if plan.backbone.has_link(la, lb):
            edges = plan.expand_backbone_edge(la, lb)
            assert len(edges) >= 1
            for u, v in edges:
                assert plan.net.has_link(u, v)

    def test_bfs_partition_covers_and_balances(self, rng):
        net = waxman_network(40, rng)
        assignment = bfs_partition(net, 4, rng)
        assert set(assignment) == set(net.switches())
        sizes = [sum(1 for a in assignment.values() if a == k) for k in range(4)]
        assert min(sizes) >= 40 // 4 - 6

    def test_bfs_partition_yields_valid_plan(self, rng):
        for seed in range(5):
            local = random.Random(seed)
            net = waxman_network(30, local)
            assignment = bfs_partition(net, 3, local)
            plan = AreaPlan(net, assignment)  # raises on bad partitions
            assert plan.backbone.is_connected()


def hier_deployment():
    plan = grid_plan()
    hier = HierDgmcNetwork(
        plan, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
    )
    hier.register_symmetric(1)
    return plan, hier


class TestHierProtocol:
    def test_single_area_membership_stays_local(self):
        plan, hier = hier_deployment()
        hier.inject_join(0, 1, at=10.0)  # area 0
        hier.inject_join(4, 1, at=20.0)  # area 0
        hier.run()
        ok, detail = hier.agreement(1)
        assert ok, detail
        # area 1's protocol saw zero MC floodings
        assert hier.area_protocols[1].mc_floodings() == 0

    def test_cross_area_members_are_stitched(self):
        plan, hier = hier_deployment()
        hier.inject_join(0, 1, at=10.0)   # area 0 (left)
        hier.inject_join(15, 1, at=30.0)  # area 1 (right)
        hier.run()
        ok, detail = hier.agreement(1)
        assert ok, detail
        assert hier.spans_members(1)
        edges = hier.global_edges(1)
        assert all(plan.net.has_link(u, v) for u, v in edges)

    def test_leaders_join_backbone_once_per_area(self):
        plan, hier = hier_deployment()
        for sw in (0, 4, 15, 11):
            hier.inject_join(sw, 1, at=10.0 + sw)
        hier.run()
        bb_states = hier.backbone_protocol.states_for(1)
        members = bb_states[min(bb_states)].member_set
        expected = {
            plan.backbone_to_local[plan.area(0).leader],
            plan.backbone_to_local[plan.area(1).leader],
        }
        assert members == expected

    def test_area_emptying_withdraws_leader(self):
        plan, hier = hier_deployment()
        hier.inject_join(0, 1, at=10.0)
        hier.inject_join(15, 1, at=30.0)
        hier.inject_leave(0, 1, at=100.0)  # area 0 empties
        hier.run()
        ok, detail = hier.agreement(1)
        assert ok, detail
        bb_states = hier.backbone_protocol.states_for(1)
        members = bb_states[min(bb_states)].member_set
        assert members == {plan.backbone_to_local[plan.area(1).leader]}
        assert hier.spans_members(1)

    def test_leader_real_join_and_leave(self):
        plan, hier = hier_deployment()
        leader0 = plan.area(0).leader
        other0 = next(
            x for x in plan.net.switches()
            if plan.area_of(x) == 0 and x != leader0
        )
        hier.inject_join(other0, 1, at=10.0)   # activates the proxy
        hier.inject_join(leader0, 1, at=30.0)  # leader joins for real
        hier.inject_leave(leader0, 1, at=60.0)  # leader leaves; proxy stays
        hier.run()
        ok, detail = hier.agreement(1)
        assert ok, detail
        view = plan.area(0)
        states = hier.area_protocols[0].states_for(1)
        members = states[min(states)].member_set
        # the proxy keeps the leader on the area MC
        assert view.to_local[leader0] in members
        assert view.to_local[other0] in members

    def test_spans_members_across_many_joins(self, rng):
        net = waxman_network(36, rng)
        assignment = bfs_partition(net, 3, rng)
        plan = AreaPlan(net, assignment)
        hier = HierDgmcNetwork(
            plan, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
        )
        hier.register_symmetric(1)
        joiners = rng.sample(range(36), 9)
        for i, sw in enumerate(joiners):
            hier.inject_join(sw, 1, at=50.0 * (i + 1))
        hier.run()
        ok, detail = hier.agreement(1)
        assert ok, detail
        assert hier.global_members(1) == set(joiners)
        assert hier.spans_members(1)

    def test_duplicate_registration_rejected(self):
        _, hier = hier_deployment()
        with pytest.raises(ValueError):
            hier.register_symmetric(1)

    def test_idempotent_join_and_absent_leave(self):
        _, hier = hier_deployment()
        hier.inject_join(0, 1, at=10.0)
        hier.inject_join(0, 1, at=20.0)   # duplicate: ignored
        hier.inject_leave(5, 1, at=30.0)  # never joined: ignored
        hier.run()
        ok, detail = hier.agreement(1)
        assert ok, detail
        assert hier.global_members(1) == {0}


class TestScalingWin:
    def test_hierarchy_scopes_lsa_deliveries(self, rng):
        """Same workload: hierarchical LSA deliveries << flat deliveries.

        On a hierarchy-shaped topology (dense clusters, few trunks, so the
        backbone is small) the saving is decisive even with the
        leader-proxy overhead.
        """
        from repro.topo.generators import clustered_network

        net, assignment = clustered_network(4, 24, rng)
        joiners = rng.sample(range(96), 10)

        flat = DgmcNetwork(
            net.copy(), ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
        )
        flat.register_symmetric(1)
        for i, sw in enumerate(joiners):
            flat.inject(JoinEvent(sw, 1), at=50.0 * (i + 1))
        flat.run()

        plan = AreaPlan(net.copy(), assignment)
        hier = HierDgmcNetwork(
            plan, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
        )
        hier.register_symmetric(1)
        for i, sw in enumerate(joiners):
            hier.inject_join(sw, 1, at=50.0 * (i + 1))
        hier.run()

        ok, detail = hier.agreement(1)
        assert ok, detail
        assert hier.spans_members(1)
        flat_deliveries = flat.fabric.delivery_count
        hier_deliveries = hier.total_lsa_deliveries()
        assert hier_deliveries < 0.6 * flat_deliveries
