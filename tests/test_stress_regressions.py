"""Replay the committed minimized counterexamples (tests/data/stress/).

Each JSON file under ``tests/data/stress/`` is a 1-minimal schedule the
explorer found against an ablated protocol (a deviation knob restoring
pre-fix behavior).  Two things must stay true forever:

* replayed under its recorded knob configuration, the schedule still
  violates exactly the invariant it names (the explorer's find is a
  deterministic regression test);
* replayed against the shipped protocol (knobs off), the same schedule
  passes -- i.e. the mechanism the paper added (the M vector, degraded-
  tree repair on link-up) actually closes the race the schedule encodes.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.stress import Counterexample, replay_violates
from repro.workloads.stress import get_scenario

DATA_DIR = os.path.join(os.path.dirname(__file__), "data", "stress")
PATHS = sorted(glob.glob(os.path.join(DATA_DIR, "*.json")))


def _load(path: str) -> Counterexample:
    return Counterexample.load(path)


def test_counterexamples_are_committed():
    names = {os.path.basename(p) for p in PATHS}
    assert "membership-race__agreement.json" in names
    assert "degraded-repair__spans.json" in names


@pytest.mark.parametrize("path", PATHS, ids=[os.path.basename(p) for p in PATHS])
def test_replays_violate_under_recorded_config(path):
    ce = _load(path)
    assert ce.minimized
    assert ce.config, "committed counterexamples must name their knob"
    scenario = get_scenario(ce.scenario)
    assert replay_violates(
        scenario, ce.schedule, config_overrides=ce.config,
        invariant=ce.invariant,
    ), f"{os.path.basename(path)} no longer reproduces {ce.invariant}"


@pytest.mark.parametrize("path", PATHS, ids=[os.path.basename(p) for p in PATHS])
def test_shipped_protocol_closes_the_race(path):
    ce = _load(path)
    scenario = get_scenario(ce.scenario)
    assert not replay_violates(scenario, ce.schedule), (
        f"{os.path.basename(path)}: the shipped protocol should survive "
        "this schedule (its fix is supposed to close exactly this race)"
    )


@pytest.mark.parametrize("path", PATHS, ids=[os.path.basename(p) for p in PATHS])
def test_replay_is_deterministic(path):
    ce = _load(path)
    scenario = get_scenario(ce.scenario)
    runs = [
        replay_violates(
            scenario, ce.schedule, config_overrides=ce.config,
            invariant=ce.invariant,
        )
        for _ in range(3)
    ]
    assert runs == [True, True, True]


def test_roundtrip_through_json(tmp_path):
    ce = _load(PATHS[0])
    out = tmp_path / "ce.json"
    ce.save(str(out))
    again = Counterexample.load(str(out))
    assert again == ce
