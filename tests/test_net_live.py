"""End-to-end tests of the live UDP runtime and the equivalence harness.

The acceptance bar of the live backend: a 12-switch seeded scenario run
over real loopback sockets converges to *byte-identical* installed trees
vs. the discrete-event simulation (zero loss), and still reaches
agreement with 10% injected datagram loss.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.events import JoinEvent, NodeEvent
from repro.net.equiv import (
    check_equivalence,
    make_scenario,
    run_discrete,
    run_live,
)
from repro.net.fabric import LiveConfig, LiveFabric
from repro.net.faults import FaultPlan
from repro.net.transport import RetransmitPolicy


LOSSY = LiveConfig(
    faults=FaultPlan(loss=0.10, seed=7),
    policy=RetransmitPolicy(rto=0.01, rto_max=0.1, max_attempts=60),
)


class TestEquivalence:
    def test_12_switches_zero_loss_byte_identical(self):
        """The tentpole acceptance: live == simulated, as wire bytes."""
        scenario = make_scenario(switches=12, seed=1996, events=8)
        discrete = run_discrete(scenario)
        live = run_live(scenario)
        assert discrete.agreed, discrete.detail
        assert live.agreed, live.detail
        report = check_equivalence(discrete, live)
        assert report.ok, report.detail
        # Byte-identical means the tree *bytes* match, not just flags.
        assert live.trees == discrete.trees
        assert any(tree for tree in live.trees.values())
        assert live.members == discrete.members

    def test_12_switches_with_loss_still_agrees(self):
        scenario = make_scenario(switches=12, seed=1996, events=8)
        live = run_live(scenario, live=LOSSY)
        assert live.agreed, live.detail
        assert live.counters["live_drops_injected_total"] > 0
        assert live.counters["live_retransmits_total"] > 0
        assert live.counters["live_delivery_failures_total"] == 0

    def test_loss_preserves_tree_bytes_too(self):
        """Barrier pacing + reliable transport: loss changes nothing final."""
        scenario = make_scenario(switches=8, seed=3, events=5)
        discrete = run_discrete(scenario)
        live = run_live(scenario, live=LOSSY)
        report = check_equivalence(discrete, live)
        assert report.ok, report.detail

    def test_different_seeds_differ(self):
        """The harness is not vacuous: seeds actually change the outcome."""
        a = run_discrete(make_scenario(switches=8, seed=1, events=5))
        b = run_discrete(make_scenario(switches=8, seed=2, events=5))
        assert a.trees != b.trees or a.members != b.members

    def test_check_equivalence_flags_divergence(self):
        scenario = make_scenario(switches=6, seed=4, events=3)
        discrete = run_discrete(scenario)
        live = run_live(scenario)
        tampered = live.trees.copy()
        victim = min(tampered)
        tampered[victim] = b"\x00bogus"
        live.trees = tampered
        report = check_equivalence(discrete, live)
        assert not report.ok
        assert f"switches [{victim}]" in report.detail

    def test_scenario_events_well_separated(self):
        scenario = make_scenario(switches=8, seed=5, events=4)
        times = [at for at, _ in scenario.timeline]
        assert times == sorted(times)
        round_length = (
            scenario.net.flooding_diameter(per_hop_delay=scenario.per_hop_delay)
            + scenario.compute_time
        )
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert min(gaps) >= 5.0 * round_length


class TestLiveFabric:
    def test_shutdown_is_graceful_and_idempotent(self):
        async def run():
            scenario = make_scenario(switches=5, seed=9, events=2)
            fabric = LiveFabric(scenario.net.copy(), scenario.config)
            fabric.register_symmetric(scenario.connection_id)
            for at, event in scenario.timeline:
                fabric.inject(event, at=at)
            await fabric.run()
            await fabric.shutdown()
            await fabric.shutdown()  # second call must be a no-op
            assert all(host._task is None for host in fabric.hosts.values())
            return fabric

        fabric = asyncio.run(run())
        ok, detail = fabric.agreement(1)
        assert ok, detail

    def test_node_events_rejected_with_pointer(self):
        scenario = make_scenario(switches=5, seed=9, events=2)
        fabric = LiveFabric(scenario.net.copy(), scenario.config)
        with pytest.raises(NotImplementedError, match="live-runtime"):
            fabric.inject(NodeEvent(2, up=False), at=1.0)

    def test_install_log_populated(self):
        async def run():
            scenario = make_scenario(switches=5, seed=9, events=2)
            fabric = LiveFabric(scenario.net.copy(), scenario.config)
            fabric.register_symmetric(scenario.connection_id)
            for at, event in scenario.timeline:
                fabric.inject(event, at=at)
            try:
                await fabric.run()
            finally:
                await fabric.shutdown()
            return fabric

        fabric = asyncio.run(run())
        assert fabric.install_log
        switches = {rec.switch for rec in fabric.install_log}
        assert len(switches) > 1  # installs happened network-wide

    def test_timed_pacing_converges(self):
        """Events racing in wall time (no barrier) still reach agreement."""

        async def run():
            scenario = make_scenario(switches=6, seed=11, events=3)
            live = LiveConfig(pacing="timed", time_scale=0.001)
            fabric = LiveFabric(scenario.net.copy(), scenario.config, live)
            fabric.register_symmetric(scenario.connection_id)
            for at, event in scenario.timeline:
                fabric.inject(event, at=at)
            try:
                await fabric.run()
                return fabric.agreement(scenario.connection_id)
            finally:
                await fabric.shutdown()

        ok, detail = asyncio.run(run())
        assert ok, detail

    def test_unknown_pacing_rejected(self):
        with pytest.raises(ValueError, match="pacing"):
            LiveConfig(pacing="warp")

    def test_duplicate_connection_rejected(self):
        scenario = make_scenario(switches=5, seed=9, events=2)
        fabric = LiveFabric(scenario.net.copy(), scenario.config)
        fabric.register_symmetric(1)
        with pytest.raises(ValueError, match="already registered"):
            fabric.register_symmetric(1)


class TestLiveCli:
    def test_live_command_zero_loss_with_equivalence(self, capsys, tmp_path):
        from repro.cli import main

        metrics = tmp_path / "live.prom"
        code = main(
            [
                "live",
                "--switches", "8",
                "--events", "4",
                "--seed", "1996",
                "--check-equivalence",
                "--metrics", str(metrics),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "agreement: True" in out
        assert "equivalence vs discrete-event backend: True" in out
        assert "live_datagrams_sent_total" in out
        assert "live_retransmits_total" in out
        prom = metrics.read_text()
        assert "# TYPE live_datagrams_sent_total counter" in prom

    def test_live_command_with_loss(self, capsys):
        from repro.cli import main

        code = main(
            ["live", "--switches", "6", "--events", "3", "--loss", "0.1"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "loss=0.1" in out


class TestBootSeeding:
    def test_no_boot_flood_crosses_the_wire(self):
        """seed_converged_lsdb derives peers' LSAs locally: joining the
        first member is the first traffic ever sent."""

        async def run():
            scenario = make_scenario(switches=6, seed=13, events=2)
            fabric = LiveFabric(scenario.net.copy(), scenario.config)
            fabric.register_symmetric(1)
            try:
                await fabric.start()
                await fabric.quiesce()
                counters_before = dict(fabric.counters())
                fabric._fire(JoinEvent(0, 1))
                await fabric.quiesce()
                counters_after = dict(fabric.counters())
                return counters_before, counters_after
            finally:
                await fabric.shutdown()

        before, after = asyncio.run(run())
        assert before["live_datagrams_sent_total"] == 0
        assert after["live_datagrams_sent_total"] > 0
