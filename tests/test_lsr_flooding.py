"""Tests for the flooding fabric: reach, timing, counters (invariant 6)."""

from __future__ import annotations

import pytest

from repro.lsr.flooding import FloodingFabric
from repro.sim.kernel import Simulator
from repro.topo.generators import grid_network, ring_network


def collect_fabric(net, per_hop_delay=None, record_history=False):
    sim = Simulator()
    fabric = FloodingFabric(
        sim, net, per_hop_delay=per_hop_delay, record_history=record_history
    )
    deliveries = []
    for x in net.switches():
        fabric.register(
            x, lambda s, p: deliveries.append((sim.now, s, p))
        )
    return sim, fabric, deliveries


class TestReach:
    def test_every_other_switch_receives_exactly_once(self):
        net = grid_network(4, 4)
        sim, fabric, deliveries = collect_fabric(net, per_hop_delay=1.0)
        fabric.flood(5, "hello")
        sim.run()
        receivers = sorted(s for _, s, _ in deliveries)
        assert receivers == [x for x in range(16) if x != 5]

    def test_origin_not_delivered(self):
        net = ring_network(5)
        sim, fabric, deliveries = collect_fabric(net)
        fabric.flood(2, "x")
        sim.run()
        assert all(s != 2 for _, s, _ in deliveries)

    def test_partition_limits_reach(self):
        net = ring_network(6)
        net.set_link_state(0, 1, up=False)
        net.set_link_state(3, 4, up=False)
        sim, fabric, deliveries = collect_fabric(net)
        fabric.flood(2, "x")
        sim.run()
        receivers = sorted(s for _, s, _ in deliveries)
        assert receivers == [1, 3]  # only 2's side of the two cuts


class TestTiming:
    def test_per_hop_mode_arrival_times(self):
        net = grid_network(1, 4)  # a line 0-1-2-3
        sim, fabric, deliveries = collect_fabric(net, per_hop_delay=2.0)
        fabric.flood(0, "x")
        sim.run()
        times = {s: t for t, s, _ in deliveries}
        assert times == {1: 2.0, 2: 4.0, 3: 6.0}

    def test_link_delay_mode_uses_shortest_delay_path(self):
        net = ring_network(4, delay=1.0)
        net.link(0, 3).delay = 10.0
        sim, fabric, deliveries = collect_fabric(net)
        fabric.flood(0, "x")
        sim.run()
        times = {s: t for t, s, _ in deliveries}
        assert times[3] == pytest.approx(3.0)  # around the ring, not the slow link

    def test_bounded_by_flooding_diameter(self):
        net = grid_network(3, 3)
        sim, fabric, deliveries = collect_fabric(net, per_hop_delay=1.0)
        tf = net.flooding_diameter(per_hop_delay=1.0)
        fabric.flood(4, "x")  # center
        sim.run()
        assert all(t <= tf for t, _, _ in deliveries)


class TestCounters:
    def test_flood_counts_by_kind(self):
        net = ring_network(4)
        sim, fabric, _ = collect_fabric(net)
        fabric.flood(0, "a", kind="mc")
        fabric.flood(1, "b", kind="mc")
        fabric.flood(2, "c", kind="non-mc")
        assert fabric.count_for("mc") == 2
        assert fabric.count_for("non-mc") == 1
        assert fabric.total_floods == 3

    def test_delivery_count(self):
        net = ring_network(5)
        sim, fabric, _ = collect_fabric(net)
        fabric.flood(0, "a")
        sim.run()
        assert fabric.delivery_count == 4

    def test_count_for_unknown_kind_is_zero(self):
        net = ring_network(4)
        _, fabric, _ = collect_fabric(net)
        assert fabric.count_for("nothing") == 0


class TestHistory:
    def test_record_history(self):
        net = ring_network(4)
        sim, fabric, _ = collect_fabric(net, record_history=True)
        record = fabric.flood(0, "payload", kind="mc")
        sim.run()
        assert fabric.history == [record]
        assert record.origin == 0
        assert sorted(record.arrivals) == [1, 2, 3]

    def test_history_off_by_default(self):
        net = ring_network(4)
        sim, fabric, _ = collect_fabric(net)
        fabric.flood(0, "x")
        assert fabric.history == []


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        net = ring_network(4)
        sim = Simulator()
        fabric = FloodingFabric(sim, net)
        fabric.register(0, lambda s, p: None)
        with pytest.raises(ValueError):
            fabric.register(0, lambda s, p: None)

    def test_unregistered_switches_skipped(self):
        net = ring_network(4)
        sim = Simulator()
        fabric = FloodingFabric(sim, net)
        got = []
        fabric.register(1, lambda s, p: got.append(s))
        fabric.flood(0, "x")
        sim.run()
        assert got == [1]
