"""Tests for delay-constrained shared trees (QoS)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lsr import spf
from repro.topo.generators import grid_network, random_connected_network, waxman_network
from repro.trees.base import TreeError, edge_weights
from repro.trees.constrained import (
    DelayBoundViolation,
    delay_bounded_tree,
    max_member_delay,
    tree_delays,
)
from repro.trees.steiner import pruned_spt_steiner_tree


def grid_adj():
    return spf.network_adjacency(grid_network(4, 4))


class TestDelayBoundedTree:
    def test_bound_respected(self):
        adj = grid_adj()
        terminals = [0, 3, 12, 15]
        tree = delay_bounded_tree(adj, terminals, bound=6.0)
        tree.validate(terminals)
        assert max_member_delay(tree, adj, anchor=0) <= 6.0 + 1e-9

    def test_loose_bound_allows_cheap_tree(self, rng):
        net = waxman_network(40, rng)
        adj = spf.network_adjacency(net)
        weights = edge_weights(adj)
        terminals = rng.sample(range(40), 6)
        loose = delay_bounded_tree(adj, terminals, bound=1e9)
        tight_bound = max(
            spf.dijkstra(adj, min(terminals))[0][t] for t in terminals
        )
        tight = delay_bounded_tree(adj, terminals, bound=tight_bound)
        # a tight bound can only cost more (or equal)
        assert tight.cost(weights) >= loose.cost(weights) - 1e-9
        assert max_member_delay(tight, adj, min(terminals)) <= tight_bound + 1e-9

    def test_infeasible_bound_raises(self):
        adj = grid_adj()
        with pytest.raises(DelayBoundViolation):
            delay_bounded_tree(adj, [0, 15], bound=1.0)  # needs 6 hops

    def test_unreachable_terminal_raises(self):
        adj = {0: {1: 1.0}, 1: {0: 1.0}, 2: {}}
        with pytest.raises(TreeError):
            delay_bounded_tree(adj, [0, 2], bound=10.0)

    def test_trivial_cases(self):
        adj = grid_adj()
        assert len(delay_bounded_tree(adj, [], bound=1.0).edges) == 0
        single = delay_bounded_tree(adj, [5], bound=0.0)
        assert single.members == frozenset({5})

    def test_deterministic(self, rng):
        net = waxman_network(30, rng)
        adj = spf.network_adjacency(net)
        a = delay_bounded_tree(adj, [3, 9, 15, 21], bound=5.0)
        b = delay_bounded_tree(adj, [21, 15, 9, 3], bound=5.0)
        assert a == b

    def test_exact_feasibility_limit_works(self):
        # bound exactly at the worst shortest-path delay: the SPT fallback
        # (or greedy) must succeed.
        adj = grid_adj()
        terminals = [0, 15]
        tree = delay_bounded_tree(adj, terminals, bound=6.0)
        assert max_member_delay(tree, adj, 0) == pytest.approx(6.0)

    @given(st.integers(4, 25), st.integers(0, 200), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_property_bound_always_respected(self, n, seed, k):
        rng = random.Random(seed)
        net = random_connected_network(n, rng)
        adj = spf.network_adjacency(net)
        terminals = rng.sample(range(n), min(k, n))
        anchor = min(terminals)
        dist, _ = spf.dijkstra(adj, anchor)
        feasible = max(dist[t] for t in terminals)
        bound = feasible * rng.uniform(1.0, 2.0)
        tree = delay_bounded_tree(adj, terminals, bound=bound)
        tree.validate(terminals)
        assert max_member_delay(tree, adj, anchor) <= bound + 1e-9


class TestTreeDelays:
    def test_delays_along_tree(self):
        adj = grid_adj()
        tree = pruned_spt_steiner_tree(adj, [0, 5])
        delays = tree_delays(tree, adj, anchor=0)
        assert delays[0] == 0.0
        assert delays[5] == pytest.approx(2.0)

    def test_max_member_delay_empty(self):
        from repro.trees.base import MulticastTree

        assert max_member_delay(MulticastTree.empty(), {}, 0) == 0.0


class TestProtocolIntegration:
    def test_delay_bounded_connection(self):
        from repro.core import DgmcNetwork, JoinEvent, ProtocolConfig
        from repro.topo.generators import ring_network

        net = ring_network(8)
        dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.1))
        dgmc.register_symmetric(
            1,
            algorithm="delay-bounded",
            algorithm_options=(("delay_bound", 4.0),),
        )
        for i, sw in enumerate([0, 2, 4]):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        tree = dgmc.states_for(1)[0].installed.shared_tree
        adj = spf.network_adjacency(net)
        assert max_member_delay(tree, adj, anchor=0) <= 4.0 + 1e-9

    def test_missing_bound_rejected(self):
        from repro.trees.algorithms import SharedTreeAlgorithm

        with pytest.raises(ValueError, match="delay_bound"):
            SharedTreeAlgorithm(method="delay-bounded")
