"""Tests for the observability timeline."""

from __future__ import annotations

import pytest

from repro.core import DgmcNetwork, JoinEvent, ProtocolConfig
from repro.topo.generators import ring_network
from repro.trace import build_timeline, convergence_profile, render_timeline


def traced_deployment():
    dgmc = DgmcNetwork(
        ring_network(6), ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
    )
    dgmc.fabric.record_history = True
    dgmc.register_symmetric(1)
    dgmc.register_symmetric(2)
    dgmc.inject(JoinEvent(0, 1), at=10.0)
    dgmc.inject(JoinEvent(3, 1), at=30.0)
    dgmc.inject(JoinEvent(2, 2), at=50.0)
    dgmc.run()
    return dgmc


class TestBuildTimeline:
    def test_chronological_and_complete(self):
        dgmc = traced_deployment()
        entries = build_timeline(dgmc)
        times = [e.time for e in entries]
        assert times == sorted(times)
        kinds = {e.kind for e in entries}
        assert kinds == {"compute", "install", "flood"}
        assert sum(1 for e in entries if e.kind == "compute") == 3
        assert sum(1 for e in entries if e.kind == "flood") == 3

    def test_connection_filter(self):
        dgmc = traced_deployment()
        entries = build_timeline(dgmc, connection_id=2)
        assert entries
        assert all(e.connection_id == 2 for e in entries)

    def test_flood_detail_mentions_event(self):
        dgmc = traced_deployment()
        floods = [e for e in build_timeline(dgmc) if e.kind == "flood"]
        assert any("V=join" in e.detail for e in floods)


class TestRenderTimeline:
    def test_render_contains_rows(self):
        dgmc = traced_deployment()
        text = render_timeline(build_timeline(dgmc))
        assert "compute" in text and "install" in text and "flood" in text

    def test_limit_truncates(self):
        dgmc = traced_deployment()
        entries = build_timeline(dgmc)
        text = render_timeline(entries, limit=2)
        assert "more)" in text


class TestConvergenceProfile:
    def test_profile_reaches_all_switches(self):
        dgmc = traced_deployment()
        profile = convergence_profile(dgmc, 1)
        assert profile[-1][1] == 6  # every switch settled
        counts = [c for _, c in profile]
        assert counts == sorted(counts)

    def test_profile_tail_matches_last_install(self):
        dgmc = traced_deployment()
        profile = convergence_profile(dgmc, 1)
        assert profile[-1][0] == pytest.approx(dgmc.last_install_time(1))

    def test_empty_for_unknown_connection(self):
        dgmc = traced_deployment()
        assert convergence_profile(dgmc, 99) == []
