"""Tests for the link-state database and the two-way-check network image."""

from __future__ import annotations

import pytest

from repro.lsr.lsa import NonMcLsa, RouterLsa
from repro.lsr.lsdb import LinkStateDatabase


def lsa(origin, seqnum, links):
    return RouterLsa(origin, seqnum, tuple(links))


class TestInstall:
    def test_first_install_accepted(self):
        db = LinkStateDatabase(2)
        assert db.install(lsa(0, 1, [(1, 1.0, True)]))
        assert db.get(0).seqnum == 1

    def test_newer_replaces(self):
        db = LinkStateDatabase(2)
        db.install(lsa(0, 1, [(1, 1.0, True)]))
        assert db.install(lsa(0, 2, [(1, 1.0, False)]))
        assert db.get(0).seqnum == 2

    def test_stale_rejected(self):
        db = LinkStateDatabase(2)
        db.install(lsa(0, 5, [(1, 1.0, True)]))
        assert not db.install(lsa(0, 3, [(1, 1.0, False)]))
        assert db.get(0).seqnum == 5

    def test_same_seqnum_rejected(self):
        db = LinkStateDatabase(2)
        db.install(lsa(0, 1, []))
        assert not db.install(lsa(0, 1, []))

    def test_complete(self):
        db = LinkStateDatabase(2)
        db.install(lsa(0, 1, []))
        assert not db.complete()
        db.install(lsa(1, 1, []))
        assert db.complete()


class TestImage:
    def test_two_way_check_requires_both_sides(self):
        db = LinkStateDatabase(2)
        db.install(lsa(0, 1, [(1, 1.0, True)]))
        assert db.adjacency()[0] == {}  # 1 has not advertised yet
        db.install(lsa(1, 1, [(0, 1.0, True)]))
        assert db.adjacency()[0] == {1: 1.0}
        assert db.adjacency()[1] == {0: 1.0}

    def test_down_on_either_side_hides_link(self):
        db = LinkStateDatabase(2)
        db.install(lsa(0, 1, [(1, 1.0, True)]))
        db.install(lsa(1, 1, [(0, 1.0, False)]))
        assert db.adjacency()[0] == {}

    def test_delay_averaged(self):
        db = LinkStateDatabase(2)
        db.install(lsa(0, 1, [(1, 1.0, True)]))
        db.install(lsa(1, 1, [(0, 3.0, True)]))
        assert db.adjacency()[0][1] == pytest.approx(2.0)

    def test_image_cache_invalidated_by_install(self):
        db = LinkStateDatabase(2)
        db.install(lsa(0, 1, [(1, 1.0, True)]))
        db.install(lsa(1, 1, [(0, 1.0, True)]))
        first = db.adjacency()
        assert first[0] == {1: 1.0}
        db.install(lsa(0, 2, [(1, 1.0, False)]))
        assert db.adjacency()[0] == {}

    def test_image_cached_between_installs(self):
        db = LinkStateDatabase(2)
        db.install(lsa(0, 1, [(1, 1.0, True)]))
        db.install(lsa(1, 1, [(0, 1.0, True)]))
        assert db.adjacency() is db.adjacency()


class TestRouterLsa:
    def test_link_map(self):
        l = lsa(0, 1, [(1, 2.0, True), (3, 4.0, False)])
        assert l.link_map() == {1: (2.0, True), 3: (4.0, False)}

    def test_is_newer_than_cross_origin_rejected(self):
        with pytest.raises(ValueError):
            lsa(0, 1, []).is_newer_than(lsa(1, 1, []))


class TestNonMcLsa:
    def test_flag_is_false(self):
        wrapper = NonMcLsa(0, lsa(0, 1, []))
        assert wrapper.is_mc is False
        assert wrapper.description.origin == 0
