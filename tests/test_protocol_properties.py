"""Property-based protocol tests: random workloads never break the invariants.

Hypothesis drives the D-GMC deployment through arbitrary feasible event
schedules (random networks, random join/leave mixes, random burstiness)
and asserts the DESIGN.md invariants at quiescence: global agreement,
valid spanning topology, correct final member list, and LSA accounting.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    DgmcNetwork,
    JoinEvent,
    LeaveEvent,
    ProtocolConfig,
)
from repro.topo.generators import waxman_network


@st.composite
def workloads(draw):
    """A random network plus a feasible random event schedule."""
    n = draw(st.integers(5, 25))
    topo_seed = draw(st.integers(0, 10_000))
    event_count = draw(st.integers(1, 12))
    # spacing regime: bursty (sub-round gaps) or sparse
    gap_scale = draw(st.sampled_from([0.1, 1.0, 50.0]))
    seq_seed = draw(st.integers(0, 10_000))
    return n, topo_seed, event_count, gap_scale, seq_seed


@given(workloads())
@settings(max_examples=40, deadline=None)
def test_random_workloads_preserve_invariants(workload):
    n, topo_seed, event_count, gap_scale, seq_seed = workload
    rng = random.Random(topo_seed)
    net = waxman_network(n, rng)
    dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
    dgmc.register_symmetric(1)

    ev_rng = random.Random(seq_seed)
    t = 1.0
    members: set[int] = set()
    injected = 0
    for _ in range(event_count):
        absent = [x for x in range(n) if x not in members]
        if absent and (not members or ev_rng.random() < 0.6):
            sw = ev_rng.choice(absent)
            dgmc.inject(JoinEvent(sw, 1), at=t)
            members.add(sw)
        else:
            sw = ev_rng.choice(sorted(members))
            dgmc.inject(LeaveEvent(sw, 1), at=t)
            members.remove(sw)
        injected += 1
        t += ev_rng.expovariate(1.0) * gap_scale

    dgmc.run()

    # Quiescence and agreement (invariant 2).
    assert dgmc.quiescent()
    ok, detail = dgmc.agreement(1)
    assert ok, detail

    states = dgmc.states_for(1)
    if members:
        # Correct final member list everywhere.
        assert states, "live connection lost all state"
        any_state = states[min(states)]
        assert any_state.member_set == frozenset(members)
        # Valid topology spanning the members (invariant 3).
        tree = any_state.installed.shared_tree
        tree.validate(members)
        up_edges = {link.key for link in net.links()}
        assert tree.edges <= up_edges
    else:
        # Empty connection: destroyed at every switch (invariant 5).
        assert not states

    # LSA accounting (invariant 4): exactly one event LSA per event, and
    # at least as many computations as... none required (deferrals), but
    # floodings >= events always (every event floods an LSA).
    event_lsas = sum(sw.event_lsas_flooded for sw in dgmc.switches.values())
    assert event_lsas == injected
    assert dgmc.mc_floodings() >= injected


@given(st.integers(0, 10_000), st.sampled_from([0.0, 0.01, 0.3]))
@settings(max_examples=20, deadline=None)
def test_simultaneous_event_storms_agree(seed, jitter):
    """All events land at (nearly) the same instant: worst-case conflicts."""
    rng = random.Random(seed)
    n = 15
    net = waxman_network(n, rng)
    dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=1.0, per_hop_delay=0.1))
    dgmc.register_symmetric(1)
    joiners = rng.sample(range(n), 6)
    for i, sw in enumerate(joiners):
        dgmc.inject(JoinEvent(sw, 1), at=1.0 + i * jitter)
    dgmc.run()
    ok, detail = dgmc.agreement(1)
    assert ok, detail
    state = dgmc.states_for(1)[0]
    assert state.member_set == frozenset(joiners)
    state.installed.shared_tree.validate(joiners)


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_timestamp_monotonicity_at_quiescence(seed):
    """At quiescence R == E everywhere and C is dominated by R (invariant 1)."""
    rng = random.Random(seed)
    net = waxman_network(12, rng)
    dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
    dgmc.register_symmetric(1)
    for i, sw in enumerate(rng.sample(range(12), 5)):
        dgmc.inject(JoinEvent(sw, 1), at=1.0 + i * 0.2)
    dgmc.run()
    for state in dgmc.states_for(1).values():
        assert state.received.geq(state.expected.snapshot())
        assert state.expected.geq(state.received.snapshot())
        assert state.received.geq(state.current_stamp)
