"""Tests for the Network model: links, hosts, distances, link state."""

from __future__ import annotations

import math

import pytest

from repro.topo.graph import Link, Network


def triangle() -> Network:
    net = Network(3)
    net.add_link(0, 1, delay=1.0)
    net.add_link(1, 2, delay=2.0)
    net.add_link(0, 2, delay=5.0)
    return net


class TestConstruction:
    def test_needs_at_least_one_switch(self):
        with pytest.raises(ValueError):
            Network(0)

    def test_add_link_rejects_self_loop(self):
        net = Network(2)
        with pytest.raises(ValueError, match="self-loop"):
            net.add_link(1, 1)

    def test_add_link_rejects_duplicates_either_direction(self):
        net = Network(3)
        net.add_link(0, 1)
        with pytest.raises(ValueError, match="duplicate"):
            net.add_link(0, 1)
        with pytest.raises(ValueError, match="duplicate"):
            net.add_link(1, 0)

    def test_add_link_rejects_out_of_range(self):
        net = Network(3)
        with pytest.raises(ValueError, match="out of range"):
            net.add_link(0, 3)

    def test_add_link_rejects_nonpositive_delay(self):
        net = Network(2)
        with pytest.raises(ValueError, match="positive"):
            net.add_link(0, 1, delay=0.0)

    def test_link_lookup_symmetric(self):
        net = triangle()
        assert net.link(0, 1) is net.link(1, 0)

    def test_links_sorted_and_counted(self):
        net = triangle()
        keys = [l.key for l in net.links()]
        assert keys == [(0, 1), (0, 2), (1, 2)]
        assert net.link_count() == 3


class TestLinkObject:
    def test_other_endpoint(self):
        link = Link(3, 7)
        assert link.other(3) == 7
        assert link.other(7) == 3
        with pytest.raises(ValueError):
            link.other(5)

    def test_key_canonical(self):
        assert Link(7, 3).key == (3, 7)


class TestHosts:
    def test_attach_and_lookup(self):
        net = Network(3)
        net.attach_host("alice", 1, role="speaker")
        host = net.host("alice")
        assert host.ingress == 1
        assert host.attrs["role"] == "speaker"

    def test_duplicate_host_rejected(self):
        net = Network(3)
        net.attach_host("h", 0)
        with pytest.raises(ValueError):
            net.attach_host("h", 1)

    def test_invalid_ingress_rejected(self):
        net = Network(3)
        with pytest.raises(ValueError):
            net.attach_host("h", 9)


class TestNeighborsAndState:
    def test_neighbors_sorted(self):
        net = triangle()
        assert net.neighbors(0) == [1, 2]
        assert net.degree(1) == 2

    def test_down_link_hidden_from_neighbors(self):
        net = triangle()
        net.set_link_state(0, 1, up=False)
        assert net.neighbors(0) == [2]
        assert net.neighbors(0, include_down=True) == [1, 2]

    def test_link_recovery(self):
        net = triangle()
        net.set_link_state(0, 1, up=False)
        net.set_link_state(0, 1, up=True)
        assert net.neighbors(0) == [1, 2]


class TestDistances:
    def test_hop_distances(self, grid4x4):
        dist = grid4x4.hop_distances(0)
        assert dist[0] == 0
        assert dist[3] == 3
        assert dist[15] == 6  # opposite corner of a 4x4 grid

    def test_delay_distances_prefer_cheap_paths(self):
        net = triangle()
        dist = net.delay_distances(0)
        # direct 0-2 costs 5; the 0-1-2 path costs 3
        assert dist[2] == pytest.approx(3.0)

    def test_distances_respect_down_links(self):
        net = triangle()
        net.set_link_state(0, 1, up=False)
        dist = net.delay_distances(0)
        assert dist[1] == pytest.approx(7.0)  # forced through 2

    def test_unreachable_omitted(self):
        net = Network(3)
        net.add_link(0, 1)
        assert 2 not in net.hop_distances(0)


class TestConnectivity:
    def test_connected(self, grid4x4):
        assert grid4x4.is_connected()

    def test_disconnected_after_cut(self):
        net = Network(4)
        net.add_link(0, 1)
        net.add_link(2, 3)
        assert not net.is_connected()

    def test_diameter_hops(self, grid4x4):
        assert grid4x4.diameter_hops() == 6

    def test_diameter_disconnected_is_minus_one(self):
        net = Network(2)
        assert net.diameter_hops() == -1


class TestFloodingDiameter:
    def test_per_hop_mode(self, grid4x4):
        assert grid4x4.flooding_diameter(per_hop_delay=2.0) == pytest.approx(12.0)

    def test_delay_mode(self):
        net = triangle()
        # worst pair is (0,2)? distances: 0->2 =3, 1->2=2, 0->1=1 ; ecc of
        # each: 0:3, 1:2, 2:3 -> diameter 3
        assert net.flooding_diameter() == pytest.approx(3.0)

    def test_infinite_when_disconnected(self):
        net = Network(2)
        assert math.isinf(net.flooding_diameter(per_hop_delay=1.0))


class TestExportCopy:
    def test_to_networkx_preserves_weights(self):
        net = triangle()
        g = net.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.edges[0, 1]["delay"] == 1.0

    def test_to_networkx_hides_down_links(self):
        net = triangle()
        net.set_link_state(0, 1, up=False)
        assert g_edges(net.to_networkx()) == [(0, 2), (1, 2)]
        assert g_edges(net.to_networkx(include_down=True)) == [
            (0, 1),
            (0, 2),
            (1, 2),
        ]

    def test_copy_is_deep(self):
        net = triangle()
        net.attach_host("h", 0)
        net.set_link_state(0, 1, up=False)
        clone = net.copy()
        assert clone.neighbors(0) == [2]
        clone.set_link_state(0, 1, up=True)
        assert net.neighbors(0) == [2]  # original untouched
        assert clone.host("h").ingress == 0


def g_edges(g):
    return sorted(tuple(sorted(e)) for e in g.edges())
