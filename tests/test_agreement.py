"""Failure-path tests for the agreement check shared by both backends.

``check_agreement`` is the single arbiter of "did the network converge":
the discrete-event :class:`~repro.core.protocol.DgmcNetwork` and the live
:class:`~repro.net.fabric.LiveFabric` both delegate to it.  These tests
feed it deliberately diverged states and assert the mismatch report names
the disagreeing switch and connection -- a bare ``False`` is useless when
a 100-switch run diverges.
"""

from __future__ import annotations

from repro.core.mc import ConnectionSpec, ConnectionType
from repro.core.protocol import DgmcNetwork, check_agreement
from repro.core.state import McState
from repro.topo.graph import Network
from repro.trees.base import McTopology, MulticastTree


N = 4
CID = 7


def make_state(
    members=(0, 1),
    stamp=(1, 1, 0, 0),
    edges=((0, 1),),
) -> McState:
    state = McState(ConnectionSpec(CID, ConnectionType.SYMMETRIC), N)
    for x in members:
        state.apply_join(x, None)
    topo = McTopology.shared(MulticastTree.build(list(edges), list(members)))
    state.install(topo, stamp, now=1.0, proposer=0)
    return state


class TestAgreement:
    def test_identical_states_agree(self):
        ok, detail = check_agreement(CID, {0: make_state(), 1: make_state()})
        assert ok
        assert f"connection {CID}" in detail
        assert "2 switches agree" in detail

    def test_no_state_anywhere_agrees(self):
        ok, detail = check_agreement(CID, {})
        assert ok
        assert "destroyed" in detail

    def test_member_list_mismatch_names_switch(self):
        states = {
            0: make_state(members=(0, 1)),
            1: make_state(members=(0, 1)),
            2: make_state(members=(0, 1, 2), edges=((0, 1), (1, 2))),
        }
        ok, detail = check_agreement(CID, states)
        assert not ok
        assert f"connection {CID}" in detail
        assert "switch 2" in detail
        assert "member list" in detail

    def test_stamp_mismatch_names_switch(self):
        states = {
            0: make_state(stamp=(1, 1, 0, 0)),
            3: make_state(stamp=(1, 2, 0, 0)),
        }
        ok, detail = check_agreement(CID, states)
        assert not ok
        assert "switch 3" in detail
        assert "C mismatch" in detail
        # The report shows both stamps so the divergence is readable.
        assert "(1, 1, 0, 0)" in detail and "(1, 2, 0, 0)" in detail

    def test_topology_mismatch_names_switch(self):
        states = {
            0: make_state(members=(0, 2), edges=((0, 1), (1, 2))),
            1: make_state(members=(0, 2), edges=((0, 3), (2, 3))),
        }
        ok, detail = check_agreement(CID, states)
        assert not ok
        assert "switch 1" in detail
        assert "topology" in detail

    def test_reference_switch_is_lowest_id(self):
        """The reference is deterministic (min id), so reports are stable."""
        states = {
            5: make_state(stamp=(9, 0, 0, 0)),
            2: make_state(stamp=(1, 0, 0, 0)),
        }
        ok, detail = check_agreement(CID, states)
        assert not ok
        assert "vs switch 2" in detail
        assert "switch 5" in detail


class TestDgmcNetworkAgreement:
    """The network-level wrapper must surface the same diagnostics."""

    def _net(self) -> DgmcNetwork:
        net = Network(3)
        net.add_link(0, 1, delay=1.0)
        net.add_link(1, 2, delay=1.0)
        dgmc = DgmcNetwork(net)
        dgmc.register_symmetric(CID)
        return dgmc

    def test_agreement_after_tampering_names_culprit(self):
        from repro.core.events import JoinEvent

        dgmc = self._net()
        dgmc.inject(JoinEvent(0, CID), at=1.0)
        dgmc.inject(JoinEvent(2, CID), at=50.0)
        dgmc.run()
        ok, _ = dgmc.agreement(CID)
        assert ok
        # Tamper with one switch's converged state post-run.
        dgmc.switches[1].states[CID].members.pop(0)
        ok, detail = dgmc.agreement(CID)
        assert not ok
        assert "switch 1" in detail
        assert f"connection {CID}" in detail

    def test_agreement_skips_dead_switches(self):
        from repro.core.events import JoinEvent

        dgmc = self._net()
        dgmc.inject(JoinEvent(0, CID), at=1.0)
        dgmc.inject(JoinEvent(2, CID), at=50.0)
        dgmc.run()
        # A failed switch's stale state must not break agreement.
        dgmc.switches[1].states[CID].members.pop(0, None)
        dgmc.dead_switches.add(1)
        ok, _ = dgmc.agreement(CID)
        assert ok
