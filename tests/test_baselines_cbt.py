"""Tests for the CBT baseline: grafting, pruning, control-message costs."""

from __future__ import annotations

import pytest

from repro.baselines.cbt import CbtNetwork
from repro.topo.generators import grid_network, ring_network, star_network, waxman_network


def make(net=None, core=0):
    cbt = CbtNetwork(net or grid_network(3, 3), per_hop_delay=0.05)
    cbt.create_group(1, core=core)
    return cbt


class TestGroupManagement:
    def test_duplicate_group_rejected(self):
        cbt = make()
        with pytest.raises(ValueError):
            cbt.create_group(1, core=2)

    def test_invalid_core_rejected(self):
        cbt = CbtNetwork(ring_network(4))
        with pytest.raises(ValueError):
            cbt.create_group(1, core=9)

    def test_core_starts_on_tree(self):
        cbt = make(core=4)
        assert cbt.state[1][4].on_tree


class TestJoin:
    def test_join_grafts_unicast_path(self):
        cbt = make(net=grid_network(1, 4), core=0)
        cbt.inject_join(3, 1, at=1.0)
        cbt.run()
        tree = cbt.tree(1)
        assert tree.edges == frozenset({(0, 1), (1, 2), (2, 3)})
        tree.validate({3, 0})

    def test_join_at_core_needs_no_messages(self):
        cbt = make(core=4)
        cbt.inject_join(4, 1, at=1.0)
        cbt.run()
        assert cbt.control_messages == 0
        assert cbt.members_of(1) == frozenset({4})

    def test_second_join_grafts_at_first_on_tree_switch(self):
        cbt = make(net=grid_network(1, 4), core=0)
        cbt.inject_join(3, 1, at=1.0)
        cbt.run()
        msgs_before = cbt.control_messages
        cbt.inject_join(2, 1, at=10.0)  # already on tree as a relay
        cbt.run()
        assert cbt.control_messages == msgs_before  # no new messages needed
        assert cbt.members_of(1) == frozenset({2, 3})

    def test_join_costs_path_length_messages(self):
        cbt = make(net=grid_network(1, 5), core=0)
        cbt.inject_join(4, 1, at=1.0)
        cbt.run()
        assert cbt.control_messages == 4  # one per hop toward the core

    def test_concurrent_joins_converge(self, rng):
        net = waxman_network(20, rng)
        cbt = CbtNetwork(net, per_hop_delay=0.05)
        cbt.create_group(1, core=0)
        members = [3, 9, 15, 18]
        for sw in members:
            cbt.inject_join(sw, 1, at=1.0)
        cbt.run()
        tree = cbt.tree(1)
        tree.validate(set(members) | {0})


class TestLeave:
    def test_leaf_leave_prunes_branch(self):
        cbt = make(net=grid_network(1, 4), core=0)
        cbt.inject_join(3, 1, at=1.0)
        cbt.inject_leave(3, 1, at=10.0)
        cbt.run()
        assert cbt.tree(1).edges == frozenset()
        assert cbt.members_of(1) == frozenset()

    def test_relay_leave_keeps_branch(self):
        cbt = make(net=grid_network(1, 4), core=0)
        cbt.inject_join(2, 1, at=1.0)
        cbt.inject_join(3, 1, at=5.0)
        cbt.inject_leave(2, 1, at=10.0)
        cbt.run()
        # 2 still relays for 3
        assert cbt.tree(1).edges == frozenset({(0, 1), (1, 2), (2, 3)})
        assert cbt.members_of(1) == frozenset({3})

    def test_prune_stops_at_member(self):
        cbt = make(net=grid_network(1, 4), core=0)
        cbt.inject_join(2, 1, at=1.0)
        cbt.inject_join(3, 1, at=5.0)
        cbt.inject_leave(3, 1, at=10.0)
        cbt.run()
        assert cbt.tree(1).edges == frozenset({(0, 1), (1, 2)})

    def test_core_never_pruned(self):
        cbt = make(core=4)
        cbt.inject_join(4, 1, at=1.0)
        cbt.inject_leave(4, 1, at=5.0)
        cbt.run()
        assert cbt.state[1][4].on_tree


class TestCorePlacement:
    def test_bad_core_gives_costlier_tree(self):
        # members clustered around switch 0 of a star; hub core is ideal.
        net = star_network(8)
        good = CbtNetwork(net, per_hop_delay=0.05)
        good.create_group(1, core=0)
        bad = CbtNetwork(net, per_hop_delay=0.05)
        bad.create_group(1, core=7)
        for cbt in (good, bad):
            for sw in (1, 2, 3):
                cbt.inject_join(sw, 1, at=1.0)
            cbt.run()
        assert len(bad.tree(1).edges) > len(good.tree(1).edges)

    def test_no_flooding_ever(self, rng):
        net = waxman_network(15, rng)
        cbt = CbtNetwork(net, per_hop_delay=0.05)
        cbt.create_group(1, core=0)
        for sw in (3, 7, 11):
            cbt.inject_join(sw, 1, at=1.0)
        cbt.run()
        assert cbt.fabric.total_floods == 0
