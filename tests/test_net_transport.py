"""Tests for the transport layer: kernel delivery, UDP reliability, faults."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.lsa import McEvent, McLsa
from repro.net.faults import FaultInjector, FaultPlan
from repro.net.transport import KernelTransport, RetransmitPolicy, UdpTransport
from repro.sim.kernel import Simulator


def make_lsa(source: int = 0, seq: int = 1) -> McLsa:
    return McLsa(source, McEvent.LEAVE, 1, None, (seq,))


class TestFaultPlan:
    def test_defaults_inactive(self):
        assert not FaultPlan().active

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(loss=1.5)
        with pytest.raises(ValueError):
            FaultPlan(reorder=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(delay=-1.0)

    def test_seeded_drops_are_reproducible(self):
        plan = FaultPlan(loss=0.5, seed=11)
        rolls_a = [FaultInjector(plan).should_drop() for _ in range(20)]
        inj = FaultInjector(plan)
        rolls_b = [inj.should_drop() for _ in range(20)]
        # Same seed, same per-call decisions -- but compare streams, not
        # single instances sharing state.
        inj2 = FaultInjector(plan)
        assert [inj2.should_drop() for _ in range(20)] == rolls_b
        assert rolls_a[0] == rolls_b[0]
        assert inj.dropped == sum(rolls_b)

    def test_zero_loss_never_drops(self):
        inj = FaultInjector(FaultPlan())
        assert not any(inj.should_drop() for _ in range(100))
        assert inj.send_delay() == 0.0

    def test_duplicate_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(duplicate_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(duplicate_rate=-0.1)
        assert FaultPlan(duplicate_rate=0.3).active
        assert not FaultPlan(duplicate_rate=0.0).active

    def test_duplicate_rate_seeded(self):
        plan = FaultPlan(duplicate_rate=0.5, seed=11)
        rolls = [FaultInjector(plan).should_duplicate() for _ in range(1)]
        inj = FaultInjector(plan)
        stream = [inj.should_duplicate() for _ in range(50)]
        inj2 = FaultInjector(plan)
        assert [inj2.should_duplicate() for _ in range(50)] == stream
        assert rolls[0] == stream[0]
        assert 0 < sum(stream) < 50  # really probabilistic at 0.5

    def test_zero_duplicate_rate_never_duplicates_nor_rolls(self):
        """The zero-rate short circuit must not perturb the RNG stream."""
        plan = FaultPlan(loss=0.5, seed=11)
        inj_plain = FaultInjector(plan)
        inj_dup = FaultInjector(FaultPlan(loss=0.5, duplicate_rate=0.0, seed=11))
        assert not any(inj_dup.should_duplicate() for _ in range(10))
        assert [inj_plain.should_drop() for _ in range(30)] == [
            inj_dup.should_drop() for _ in range(30)
        ]

    def test_cut_is_deterministic_and_symmetric(self):
        inj = FaultInjector(FaultPlan(loss=0.9, seed=2))
        inj.cut([(1, 2)])
        assert inj.is_cut(1, 2) and inj.is_cut(2, 1)
        assert not inj.is_cut(0, 1)
        inj.heal([(2, 1)])
        assert not inj.is_cut(1, 2)
        inj.cut([(3, 4), (5, 6)])
        inj.heal_all()
        assert inj.cut_pairs == frozenset()


class TestKernelTransport:
    def test_delivers_via_kernel_with_delay(self):
        sim = Simulator()
        transport = KernelTransport(sim)
        got = []
        transport.register(1, lambda dest, p: got.append((sim.now, dest, p)))
        transport.send(0, 1, "payload", delay=2.5)
        assert got == []  # nothing until the kernel runs
        sim.run()
        assert got == [(2.5, 1, "payload")]

    def test_unregistered_destination_ignored(self):
        sim = Simulator()
        transport = KernelTransport(sim)
        transport.send(0, 9, "payload")
        sim.run()
        assert transport.deliveries == 0

    def test_duplicate_registration_rejected(self):
        transport = KernelTransport(Simulator())
        transport.register(1, lambda d, p: None)
        with pytest.raises(ValueError):
            transport.register(1, lambda d, p: None)

    def test_always_idle(self):
        assert KernelTransport(Simulator()).idle


async def _drive(transport: UdpTransport, until, timeout: float = 5.0) -> None:
    """Poll ``until()`` while the event loop runs transport callbacks."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not until():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition not reached")
        await asyncio.sleep(0.005)


class TestUdpTransport:
    def test_basic_delivery(self):
        async def run():
            transport = UdpTransport([0, 1])
            got = []
            transport.register(1, lambda dest, p: got.append((dest, p)))
            await transport.start()
            try:
                lsa = make_lsa()
                transport.send(0, 1, lsa)
                await _drive(transport, lambda: bool(got) and transport.idle)
                return got, transport.counters()
            finally:
                await transport.stop()

        got, counters = asyncio.run(run())
        assert got == [(1, make_lsa())]
        assert counters["live_datagrams_sent_total"] == 1
        assert counters["live_acks_received_total"] == 1
        assert counters["live_retransmits_total"] == 0

    def test_distinct_ports_per_switch(self):
        async def run():
            transport = UdpTransport([0, 1, 2])
            await transport.start()
            try:
                return {transport.port_of(x) for x in (0, 1, 2)}
            finally:
                await transport.stop()

        assert len(asyncio.run(run())) == 3

    def test_loss_triggers_retransmit_and_dedup(self):
        async def run():
            transport = UdpTransport(
                [0, 1],
                faults=FaultPlan(loss=0.4, seed=3),
                policy=RetransmitPolicy(rto=0.01, rto_max=0.05, max_attempts=50),
            )
            got = []
            transport.register(1, lambda dest, p: got.append(p))
            await transport.start()
            try:
                for i in range(10):
                    transport.send(0, 1, make_lsa(seq=i + 1))
                await _drive(
                    transport, lambda: len(got) == 10 and transport.idle, timeout=10.0
                )
                return got, transport.counters()
            finally:
                await transport.stop()

        got, counters = asyncio.run(run())
        # Every payload arrives exactly once despite 40% loss ...
        assert sorted(lsa.timestamp[0] for lsa in got) == list(range(1, 11))
        # ... which requires retransmissions, and loss was really injected.
        assert counters["live_drops_injected_total"] > 0
        assert counters["live_retransmits_total"] > 0
        assert counters["live_delivery_failures_total"] == 0

    def test_duplicate_suppression_counted(self):
        """Lost ACKs force DATA duplicates; the receiver must drop them."""

        async def run():
            transport = UdpTransport(
                [0, 1],
                faults=FaultPlan(loss=0.5, seed=5),
                policy=RetransmitPolicy(rto=0.01, rto_max=0.05, max_attempts=80),
            )
            got = []
            transport.register(1, lambda dest, p: got.append(p))
            await transport.start()
            try:
                for i in range(8):
                    transport.send(0, 1, make_lsa(seq=i + 1))
                await _drive(
                    transport, lambda: len(got) == 8 and transport.idle, timeout=10.0
                )
                return len(got), transport.counters()
            finally:
                await transport.stop()

        delivered, counters = asyncio.run(run())
        assert delivered == 8
        received = counters["live_datagrams_received_total"]
        dupes = counters["live_duplicates_dropped_total"]
        assert received - dupes == 8  # exactly-once delivery to the handler

    def test_attempt_budget_exhaustion(self):
        """Total blackout: the frame is abandoned and counted as a failure."""

        async def run():
            transport = UdpTransport(
                [0, 1],
                faults=FaultPlan(loss=1.0, seed=1),
                policy=RetransmitPolicy(rto=0.005, rto_max=0.01, max_attempts=3),
            )
            transport.register(1, lambda dest, p: None)
            await transport.start()
            try:
                transport.send(0, 1, make_lsa())
                await _drive(transport, lambda: transport.idle, timeout=5.0)
                return transport.counters()
            finally:
                await transport.stop()

        counters = asyncio.run(run())
        assert counters["live_delivery_failures_total"] == 1
        assert counters["live_datagrams_received_total"] == 0

    def test_injected_delay_keeps_transport_busy(self):
        async def run():
            transport = UdpTransport(
                [0, 1],
                faults=FaultPlan(delay=0.05, seed=2),
                policy=RetransmitPolicy(rto=1.0),
            )
            got = []
            transport.register(1, lambda dest, p: got.append(p))
            await transport.start()
            try:
                transport.send(0, 1, make_lsa())
                busy_immediately = not transport.idle
                await _drive(transport, lambda: bool(got) and transport.idle)
                return busy_immediately, got
            finally:
                await transport.stop()

        busy_immediately, got = asyncio.run(run())
        assert busy_immediately
        assert len(got) == 1

    def test_send_before_start_rejected(self):
        transport = UdpTransport([0, 1])
        with pytest.raises(RuntimeError):
            transport.send(0, 1, make_lsa())

    def test_stop_cancels_pending(self):
        async def run():
            transport = UdpTransport(
                [0, 1],
                faults=FaultPlan(loss=1.0, seed=1),
                policy=RetransmitPolicy(rto=10.0, max_attempts=1000),
            )
            transport.register(1, lambda dest, p: None)
            await transport.start()
            transport.send(0, 1, make_lsa())
            assert not transport.idle
            await transport.stop()
            return transport.idle

        assert asyncio.run(run())

    def test_wire_duplicates_injected_and_absorbed(self):
        """The duplicate dial puts copies on the wire; dedup absorbs them."""

        async def run():
            transport = UdpTransport(
                [0, 1],
                faults=FaultPlan(duplicate_rate=1.0, seed=4),
                policy=RetransmitPolicy(rto=0.05, rto_max=0.1, max_attempts=20),
            )
            got = []
            transport.register(1, lambda dest, p: got.append(p))
            await transport.start()
            try:
                for i in range(5):
                    transport.send(0, 1, make_lsa(seq=i + 1))
                await _drive(
                    transport, lambda: len(got) == 5 and transport.idle, timeout=10.0
                )
                return len(got), transport.counters()
            finally:
                await transport.stop()

        delivered, counters = asyncio.run(run())
        assert delivered == 5  # exactly-once despite every frame doubling
        assert counters["live_duplicates_injected_total"] >= 5
        assert counters["live_duplicates_dropped_total"] >= 5

    def test_cut_abandons_frames_without_touching_rng(self):
        """Frames into a cut burn their budget and are abandoned; healing
        restores delivery (the same reliable seq space keeps working)."""

        async def run():
            transport = UdpTransport(
                [0, 1],
                policy=RetransmitPolicy(rto=0.005, rto_max=0.01, max_attempts=3),
            )
            got = []
            transport.register(1, lambda dest, p: got.append(p))
            await transport.start()
            try:
                transport.injector.cut([(0, 1)])
                transport.send(0, 1, make_lsa(seq=1))
                await _drive(transport, lambda: transport.idle, timeout=5.0)
                mid = dict(transport.counters())
                transport.injector.heal([(0, 1)])
                transport.send(0, 1, make_lsa(seq=2))
                await _drive(
                    transport, lambda: bool(got) and transport.idle, timeout=5.0
                )
                return got, mid, transport.counters()
            finally:
                await transport.stop()

        got, mid, counters = asyncio.run(run())
        assert mid["live_delivery_failures_total"] == 1
        assert mid["live_cut_drops_total"] > 0
        assert [lsa.timestamp[0] for lsa in got] == [2]
        assert counters["live_delivery_failures_total"] == 1

    def test_set_host_down_blackholes_and_drops_pending(self):
        async def run():
            transport = UdpTransport(
                [0, 1, 2],
                policy=RetransmitPolicy(rto=0.01, rto_max=0.05, max_attempts=4),
            )
            got = []
            transport.register(1, lambda dest, p: got.append(p))
            transport.register(2, lambda dest, p: got.append(p))
            await transport.start()
            try:
                transport.set_host_down(2)
                assert transport.is_host_down(2)
                # A pending frame toward the downed host is abandoned at once.
                transport.send(0, 2, make_lsa(seq=1))
                await _drive(transport, lambda: transport.idle, timeout=5.0)
                down_counters = dict(transport.counters())
                # Traffic between live hosts is unaffected.
                transport.send(0, 1, make_lsa(seq=2))
                await _drive(
                    transport, lambda: bool(got) and transport.idle, timeout=5.0
                )
                transport.set_host_up(2)
                transport.send(0, 2, make_lsa(seq=3))
                await _drive(
                    transport, lambda: len(got) == 2 and transport.idle, timeout=5.0
                )
                return got, down_counters
            finally:
                await transport.stop()

        got, down_counters = asyncio.run(run())
        assert down_counters["live_delivery_failures_total"] == 1
        assert sorted(lsa.timestamp[0] for lsa in got) == [2, 3]


    def test_send_to_downed_host_leaves_no_pending_state(self):
        """Blackhole fast-fail: no retransmit budget, no timers, no seq."""

        async def run():
            transport = UdpTransport([0, 1])
            transport.register(1, lambda dest, p: None)
            await transport.start()
            try:
                transport.set_host_down(1)
                transport.send(0, 1, make_lsa())
                # The failure is synchronous: nothing queued, no backoff.
                return (
                    transport.pending_keys(),
                    transport.idle,
                    dict(transport.counters()),
                )
            finally:
                await transport.stop()

        pending, idle, counters = asyncio.run(run())
        assert pending == []
        assert idle
        assert counters["live_blackholed_total"] == 1
        assert counters["live_delivery_failures_total"] == 1

    def test_send_to_unregistered_host_fails_fast(self):
        """A torn-down endpoint (crash removed its handler) can never
        ack; the frame must not arm the retransmit budget."""

        async def run():
            transport = UdpTransport([0, 1])
            transport.register(0, lambda dest, p: None)
            # Nothing registered for 1 -- as after LiveFabric.crash().
            await transport.start()
            try:
                transport.send(0, 1, make_lsa())
                return transport.pending_keys(), dict(transport.counters())
            finally:
                await transport.stop()

        pending, counters = asyncio.run(run())
        assert pending == []
        assert counters["live_blackholed_total"] == 1
        assert counters["live_delivery_failures_total"] == 1

    def test_dedup_memory_stays_bounded_over_soak(self):
        """10k frames: the per-peer dedup state compacts to its floor."""

        async def run():
            transport = UdpTransport([0, 1])
            got = []
            transport.register(1, lambda dest, p: got.append(p))
            await transport.start()
            try:
                total = 10_000
                batch = 250  # don't outrun the loopback socket buffers
                for lo in range(0, total, batch):
                    for i in range(lo, lo + batch):
                        transport.send(0, 1, make_lsa(seq=i + 1))
                    await _drive(
                        transport,
                        lambda lo=lo: len(got) >= lo + batch and transport.idle,
                        timeout=30.0,
                    )
                return len(got), transport.dedup_state(1, 0)
            finally:
                await transport.stop()

        delivered, (floor, window) = asyncio.run(run())
        assert delivered == 10_000
        assert floor == 10_000
        assert window == 0  # O(1) memory: everything compacted to the floor

    def test_dedup_window_overflow_forces_floor_advance(self):
        """An abandoned seq gap must not pin the window forever."""
        from repro.net.transport import _PeerDedup

        dedup = _PeerDedup()
        # Seq 1 never arrives (abandoned); 2..12 land out of order.
        for seq in range(2, 13):
            assert not dedup.seen(seq)
            dedup.add(seq, cap=4)
        # The cap forced the floor past the gap: memory stays bounded ...
        assert len(dedup.window) <= 4
        assert dedup.floor >= 8
        # ... and later duplicates of everything delivered are still seen.
        assert all(dedup.seen(seq) for seq in range(2, 13))

    def test_stop_cancels_injected_delay_timers(self):
        """stop() mid-delay leaves no armed timers and no phantom frames."""

        async def run():
            transport = UdpTransport(
                [0, 1], faults=FaultPlan(delay=30.0, seed=2)
            )
            got = []
            transport.register(1, lambda dest, p: got.append(p))
            await transport.start()
            transport.send(0, 1, make_lsa())
            assert not transport.idle  # the delayed copy counts as in flight
            handles = list(transport._delay_handles.values())
            assert handles
            await transport.stop()
            loop = asyncio.get_running_loop()
            scheduled = getattr(loop, "_scheduled", None)
            alive = (
                [h for h in scheduled if not h.cancelled()]
                if scheduled is not None
                else []
            )
            return (
                transport.idle,
                all(h.cancelled() for h in handles),
                alive,
                got,
            )

        idle, all_cancelled, alive, got = asyncio.run(run())
        assert idle
        assert all_cancelled
        assert alive == []  # the loop is clean: no stray TimerHandles
        assert got == []  # and the delayed frame never fired after stop()


class TestRetransmitPolicy:
    def test_exponential_backoff_capped(self):
        policy = RetransmitPolicy(rto=0.02, rto_max=0.5)
        timeouts = [policy.timeout(n) for n in range(1, 10)]
        assert timeouts[0] == 0.02
        assert timeouts[1] == 0.04
        assert all(a <= b for a, b in zip(timeouts, timeouts[1:]))
        assert timeouts[-1] == 0.5
