"""Property-based tests of the simulation kernel itself."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Simulator
from repro.sim.mailbox import Mailbox
from repro.sim.process import Hold, Receive
from repro.sim.resource import Facility


class TestEventOrdering:
    @given(st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_dispatch_times_nondecreasing(self, delays):
        sim = Simulator()
        seen = []
        for d in delays:
            sim.schedule(d, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)

    @given(
        st.lists(
            st.tuples(st.floats(0.0, 100.0), st.integers(0, 50)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_cancellation_removes_exactly_the_cancelled(self, spec):
        sim = Simulator()
        fired = []
        entries = []
        for i, (delay, _) in enumerate(spec):
            entries.append((i, sim.schedule(delay, lambda i=i: fired.append(i))))
        cancelled = {i for i, (_, tag) in enumerate(spec) if tag % 3 == 0}
        for i, entry in entries:
            if i in cancelled:
                entry.cancel()
        sim.run()
        assert set(fired) == set(range(len(spec))) - cancelled


class TestMailboxProperties:
    @given(st.lists(st.integers(), max_size=60), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_all_messages_delivered_exactly_once(self, messages, consumers):
        sim = Simulator()
        box = Mailbox(sim)
        got = []

        def consumer():
            while True:
                got.append((yield Receive(box)))

        for _ in range(consumers):
            sim.spawn(consumer())
        for i, m in enumerate(messages):
            sim.schedule(float(i), lambda m=m: box.send(m))
        sim.run()
        assert sorted(map(repr, got)) == sorted(map(repr, messages))

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_single_consumer_preserves_order(self, messages):
        sim = Simulator()
        box = Mailbox(sim)
        got = []

        def consumer():
            while True:
                got.append((yield Receive(box)))

        sim.spawn(consumer())
        for m in messages:
            box.send(m)
        sim.run()
        assert got == messages


class TestFacilityProperties:
    @given(
        st.lists(st.floats(0.1, 5.0), min_size=1, max_size=30),
        st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_capacity_never_exceeded(self, services, capacity):
        sim = Simulator()
        fac = Facility(sim, capacity=capacity)
        concurrent = [0]
        peak = [0]

        def worker(service):
            yield fac.request()
            concurrent[0] += 1
            peak[0] = max(peak[0], concurrent[0])
            yield Hold(service)
            concurrent[0] -= 1
            fac.release()

        for s in services:
            sim.spawn(worker(s))
        sim.run()
        assert peak[0] <= capacity
        assert fac.completions == len(services)
        assert concurrent[0] == 0

    @given(st.lists(st.floats(0.1, 3.0), min_size=2, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_single_server_time_is_sum_of_services(self, services):
        sim = Simulator()
        fac = Facility(sim)

        def worker(service):
            yield fac.request()
            yield Hold(service)
            fac.release()

        for s in services:
            sim.spawn(worker(s))
        end = sim.run()
        assert end == sum(services) or abs(end - sum(services)) < 1e-9
