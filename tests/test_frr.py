"""Tests for fast reroute: DAGs, backup fragments, activation, gates.

Covers the `repro.frr` subsystem end to end (see docs/fast-reroute.md):
next-hop DAG extraction (ECMP + loop-free alternates), backup-plan
computation (bridges uncovered, detours loop-free), detection-time
activation and repair-cycle retirement, the zero-blackhole-window
property both forwarding engines must provide, the batched engine's
scoped invalidation, the SNAP wire extension, resync adoption, the
jittered hello watchdog, and the stress-mode state-space isomorphism
(backup state must be canonically invisible).
"""

from __future__ import annotations

import pytest

from repro.core import (
    DgmcNetwork,
    JoinEvent,
    LinkEvent,
    ProtocolConfig,
)
from repro.core.wire import encode_topology
from repro.dataplane import BatchForwardingEngine, ForwardingEngine, McPacket
from repro.frr import (
    BackupFragment,
    activate_for_edge,
    compute_backup_plan,
    detour_delay,
    detour_is_live,
)
from repro.lsr import spf
from repro.net import frames
from repro.stress.explore import StressOptions, explore
from repro.topo.generators import grid_network, ring_network, waxman_network
from repro.trees.base import McTopology, MulticastTree
from repro.workloads.stress import get_scenario


def frr_deployment(net=None, members=(0, 2, 4), enable_frr=True, compute_time=0.5):
    dgmc = DgmcNetwork(
        net or ring_network(6),
        ProtocolConfig(
            compute_time=compute_time, per_hop_delay=0.05, enable_frr=enable_frr
        ),
    )
    dgmc.register_symmetric(1)
    for i, sw in enumerate(members):
        dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
    dgmc.run()
    return dgmc


def topology_blob(dgmc, m=1) -> bytes:
    snapshot = []
    for x, state in sorted(dgmc.states_for(m).items()):
        edges = sorted(state.installed.all_edges()) if state.installed else []
        members = sorted((sw, sorted(r)) for sw, r in state.members.items())
        snapshot.append((x, edges, members))
    return repr(snapshot).encode()


class TestNextHopDag:
    def test_ecmp_keeps_both_ring_directions(self):
        net = ring_network(4)
        dag = spf.next_hop_dag(net.spf_view(), 0)
        # 0 -> 2 is distance 2 via either neighbor: both are ECMP hops.
        assert dag[2] == (1, 3)

    def test_equal_distance_neighbor_is_not_an_alternate(self):
        # Triangle: from 0 toward 2, neighbor 1 is at the same distance
        # from 2 as we are (1 == 1) -- neither ECMP (1 + 1 != 1) nor
        # strictly downstream, so it must be excluded.
        net = ring_network(3)
        dag = spf.next_hop_dag(net.spf_view(), 0)
        assert dag[2] == (2,)

    def test_downstream_criterion_everywhere(self, rng):
        """Every DAG hop is ECMP or strictly closer to the destination."""
        net = waxman_network(12, rng)
        view = net.spf_view()
        for source in range(net.n):
            dist_s, _ = spf.dijkstra(view, source)
            dag = spf.next_hop_dag(view, source)
            for dest, hops in dag.items():
                assert hops, f"reachable {dest} has no next hop"
                for n in hops:
                    w = net.spf_view().get(source, {})[n]
                    dn = spf.dijkstra(view, n)[0][dest]
                    assert dist_s[dest] == w + dn or dn < dist_s[dest]

    def test_cached_dag_matches_uncached(self, rng):
        net = waxman_network(10, rng)
        raw = {
            u: dict(nbrs) for u, nbrs in net.spf_view().items()
        }
        for source in range(net.n):
            assert spf.next_hop_dag(net.spf_view(), source) == spf.dag_body(
                raw, source
            )


class TestBackupPlan:
    def image(self, net):
        return {u: dict(nbrs) for u, nbrs in net.spf_view().items()}

    def test_ring_edges_all_covered(self):
        net = ring_network(6)
        topo = McTopology.shared(
            MulticastTree.build([(0, 1), (1, 2)], [0, 2])
        )
        plan = compute_backup_plan(topo, self.image(net))
        assert not plan.uncovered
        for u, v in topo.all_edges():
            fragment = plan.fragment_for(u, v)
            assert fragment is not None
            assert fragment.path[0] == u and fragment.path[-1] == v
            # The detour avoids the protected edge and never loops.
            assert (u, v) not in spf.path_edges(list(fragment.path))
            assert len(set(fragment.path)) == len(fragment.path)

    def test_bridge_edges_are_uncovered(self):
        net = grid_network(1, 4)  # a line: every edge is a bridge
        topo = McTopology.shared(
            MulticastTree.build([(0, 1), (1, 2)], [0, 2])
        )
        plan = compute_backup_plan(topo, self.image(net))
        assert plan.fragments == ()
        assert plan.uncovered == ((0, 1), (1, 2))

    def test_plan_partitions_tree_edges(self, rng):
        net = waxman_network(16, rng)
        dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
        dgmc.register_symmetric(1)
        for i, sw in enumerate(sorted(rng.sample(range(16), 5))):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        state = next(iter(dgmc.states_for(1).values()))
        plan = compute_backup_plan(state.installed, self.image(net))
        edges = set(state.installed.all_edges())
        assert {f.edge for f in plan.fragments} | set(plan.uncovered) == edges
        assert len(plan.fragments) + len(plan.uncovered) == len(edges)

    def test_fragment_orientation_and_delay(self):
        fragment = BackupFragment(edge=(0, 3), path=(0, 1, 2, 3), cost=3.0)
        assert fragment.span == 3
        assert fragment.path_from(3) == (3, 2, 1, 0)
        with pytest.raises(ValueError):
            fragment.path_from(1)
        assert detour_delay(fragment, 0, lambda a, b: 0.5) == pytest.approx(1.5)


class TestActivationLifecycle:
    def test_install_precomputes_plan(self):
        dgmc = frr_deployment()
        for state in dgmc.states_for(1).values():
            assert state.backup_plan is not None
            for u, v in state.installed.all_edges():
                assert state.backup_plan.covers(u, v)

    def test_frr_off_keeps_no_plan(self):
        dgmc = frr_deployment(enable_frr=False)
        for state in dgmc.states_for(1).values():
            assert state.backup_plan is None
            assert state.active_backup == {}

    def test_failure_activates_and_install_retires(self):
        dgmc = frr_deployment(compute_time=2.0)
        state = dgmc.states_for(1)[0]
        u, v = sorted(state.installed.all_edges())[0]
        dgmc.inject(LinkEvent(u, u, v, up=False), at=dgmc.sim.now + 1.0)
        dgmc.run()
        # Repair has converged: the fragment was retired by the install
        # and the plan recomputed against the new topology.
        for x in (u, v):
            st = dgmc.states_for(1)[x]
            assert st.active_backup == {}
            assert st.backup_plan is not None
            assert (u, v) not in st.installed.all_edges()
        agreed, detail = dgmc.agreement(1)
        assert agreed, detail

    def test_activate_for_edge_is_idempotent(self):
        dgmc = frr_deployment()
        state = dgmc.states_for(1)[0]
        u, v = sorted(state.installed.all_edges())[0]
        dgmc.net.set_link_state(u, v, up=False)
        states = dgmc.switches[u].states
        assert activate_for_edge(states, u, v) == [1]
        assert activate_for_edge(states, u, v) == []  # already active
        assert (u, v) in states[1].active_backup

    def test_reconciliation_is_byte_identical(self):
        """A run that activated FRR converges like one that never did."""
        blobs = []
        for enable_frr in (True, False):
            dgmc = frr_deployment(enable_frr=enable_frr, compute_time=2.0)
            state = dgmc.states_for(1)[0]
            u, v = sorted(state.installed.all_edges())[0]
            t0 = dgmc.sim.now + 1.0
            dgmc.inject(LinkEvent(u, u, v, up=False), at=t0)
            dgmc.run()
            dgmc.inject(LinkEvent(u, u, v, up=True), at=dgmc.sim.now + 1.0)
            dgmc.run()
            agreed, detail = dgmc.agreement(1)
            assert agreed, detail
            blobs.append(topology_blob(dgmc))
        assert blobs[0] == blobs[1]


class TestZeroBlackholeWindow:
    def window_losses(self, enable_frr):
        # Tc = 2.0 keeps the detection->reinstall window open past every
        # probe; hop_delay = 0.01 keeps each probe's whole flight inside
        # it (uniform pre-failure topology at every hop).
        dgmc = frr_deployment(compute_time=2.0)
        if not enable_frr:
            dgmc = frr_deployment(enable_frr=False, compute_time=2.0)
        engine = ForwardingEngine(dgmc, hop_delay=0.01)
        state = dgmc.states_for(1)[0]
        u, v = sorted(state.installed.all_edges())[0]
        t0 = dgmc.sim.now + 1.0
        dgmc.inject(LinkEvent(u, u, v, up=False), at=t0)
        records = [
            engine.send(McPacket(0, 1), at=t0 + 0.1 + 0.1 * k)
            for k in range(10)
        ]
        dgmc.run()
        return records

    def test_frr_on_loses_nothing_in_window(self):
        records = self.window_losses(enable_frr=True)
        assert all(r.complete for r in records)

    def test_frr_off_blackholes_the_window(self):
        records = self.window_losses(enable_frr=False)
        assert any(not r.complete for r in records)


def record_key(record):
    """Every observable field of a delivery record, times included."""
    return (
        record.undeliverable,
        record.intended,
        record.hops,
        record.duplicates,
        record.ttl_drops,
        tuple(sorted(record.delivered.items())),
    )


class TestEngineEquivalenceWithBackups:
    def activated_deployment(self):
        """A quiescent deployment with a dead tree edge and live backups."""
        dgmc = frr_deployment()
        state = dgmc.states_for(1)[0]
        u, v = sorted(state.installed.all_edges())[0]
        dgmc.net.set_link_state(u, v, up=False)
        for x in (u, v):
            assert activate_for_edge(dgmc.switches[x].states, u, v) == [1]
        return dgmc, (u, v)

    def test_batched_matches_reference_on_detour(self):
        dgmc, _ = self.activated_deployment()
        batched = BatchForwardingEngine(dgmc, hop_delay=0.05)
        reference = ForwardingEngine(dgmc, hop_delay=0.05)
        at = dgmc.sim.now + 1.0
        flows = [(m, 1) for m in (0, 2, 4)]
        batch_records = batched.dispatch(
            [McPacket(src, m) for src, m in flows], at=at
        )
        ref_records = [
            reference.send(McPacket(src, m), at=at) for src, m in flows
        ]
        dgmc.run()
        for ref, bat in zip(ref_records, batch_records):
            assert record_key(ref) == record_key(bat)
        assert all(r.complete for r in ref_records)

    def test_dead_detour_is_not_nested(self):
        """A failure on the detour itself drops the packet (no re-protect)."""
        dgmc, (u, v) = self.activated_deployment()
        fragment = dgmc.switches[u].states[1].active_backup[(u, v)]
        a, b = fragment.path[0], fragment.path[1]
        dgmc.net.set_link_state(a, b, up=False)
        assert not detour_is_live(fragment, dgmc.net)
        engine = ForwardingEngine(dgmc, hop_delay=0.05)
        record = engine.send(McPacket(0, 1), at=dgmc.sim.now + 1.0)
        dgmc.run()
        assert not record.complete


class TestScopedInvalidation:
    def two_group_deployment(self):
        dgmc = DgmcNetwork(
            ring_network(8),
            ProtocolConfig(compute_time=0.5, per_hop_delay=0.05, enable_frr=True),
        )
        dgmc.register_symmetric(1)
        dgmc.register_symmetric(2)
        for i, (sw, m) in enumerate([(0, 1), (1, 1), (4, 2), (5, 2)]):
            dgmc.inject(JoinEvent(sw, m), at=10.0 * (i + 1))
        dgmc.run()
        return dgmc

    def test_unrelated_link_flip_recompiles_nothing(self):
        dgmc = self.two_group_deployment()
        engine = BatchForwardingEngine(dgmc, hop_delay=0.05)
        engine.dispatch([McPacket(0, 1), McPacket(4, 2)], at=dgmc.sim.now + 1.0)
        compiled = dict(engine._compiled)
        assert set(compiled) == {1, 2}
        # (2, 3) is on neither installed tree and no template rode unicast.
        dgmc.net.set_link_state(2, 3, up=False)
        before = dgmc.metrics.snapshot()
        engine.dispatch([McPacket(0, 1), McPacket(4, 2)], at=dgmc.sim.now + 2.0)
        after = dgmc.metrics.snapshot()
        assert engine._compiled[1] is compiled[1]
        assert engine._compiled[2] is compiled[2]
        delta = after["dataplane_partial_invalidations_total"] - before.get(
            "dataplane_partial_invalidations_total", 0
        )
        assert delta == 1  # the scoped pass ran; nothing was dropped

    def test_backup_activation_recompiles_only_its_group(self):
        dgmc = self.two_group_deployment()
        engine = BatchForwardingEngine(dgmc, hop_delay=0.05)
        first = engine.dispatch(
            [McPacket(0, 1), McPacket(4, 2)], at=dgmc.sim.now + 1.0
        )
        assert all(r.complete for r in first)
        compiled = dict(engine._compiled)
        # Fail group 1's tree edge and activate its fragment by hand (no
        # protocol events: the engine must notice via delta + frr_epoch).
        state = dgmc.states_for(1)[0]
        u, v = sorted(state.installed.all_edges())[0]
        dgmc.net.set_link_state(u, v, up=False)
        for x in (u, v):
            activate_for_edge(dgmc.switches[x].states, u, v)
        before = dgmc.metrics.snapshot()
        records = engine.dispatch(
            [McPacket(0, 1), McPacket(4, 2)], at=dgmc.sim.now + 2.0
        )
        after = dgmc.metrics.snapshot()
        # Group 1 recompiled (and rides the detour); group 2 untouched.
        assert all(r.complete for r in records)
        assert engine._compiled[1] is not compiled[1]
        assert engine._compiled[2] is compiled[2]
        assert (
            after["dataplane_invalidations_total"]
            - before.get("dataplane_invalidations_total", 0)
            == 1
        )
        assert (
            after["dataplane_partial_invalidations_total"]
            - before.get("dataplane_partial_invalidations_total", 0)
            >= 1
        )


class TestSnapWireFormat:
    def snapshot(self, active_backup=()):
        topo = McTopology.shared(MulticastTree.build([(0, 1), (1, 2)], [0, 2]))
        return frames.McSnapshot(
            connection_id=7,
            received=(1, 0, 2, 1),
            expected=(1, 0, 2, 1),
            current=(1, 0, 1, 1),
            proposer=2,
            member_stamp=(1, 0, 2, 1),
            members=(
                (0, frozenset({"sender", "receiver"})),
                (2, frozenset({"receiver"})),
            ),
            topology=encode_topology(topo),
            active_backup=active_backup,
        )

    def test_roundtrip_with_active_backup(self):
        snap = self.snapshot(active_backup=((0, 1, (0, 3, 1)), (1, 2, (1, 3, 2))))
        frame = frames.decode_frame(frames.encode_snap(3, 8, 11, snap))
        assert frame == frames.SnapFrame(3, 8, 11, snap)
        assert frame.snapshot.active_backup == snap.active_backup

    def test_roundtrip_without_backups_is_unchanged(self):
        snap = self.snapshot()
        assert frames.decode_frame(frames.encode_snap(3, 8, 11, snap)) == (
            frames.SnapFrame(3, 8, 11, snap)
        )


class TestResyncAdoption:
    def test_snapshot_carries_and_peer_adopts(self):
        dgmc = frr_deployment()
        state = dgmc.states_for(1)[0]
        u, v = sorted(state.installed.all_edges())[0]
        dgmc.net.set_link_state(u, v, up=False)
        activate_for_edge(dgmc.switches[u].states, u, v)
        snap = dgmc.switches[u].capture_resync_snapshot(1)
        assert snap.active_backup and snap.active_backup[0][:2] == (u, v)
        # A switch that missed the local activation adopts from the snap.
        other = next(
            x for x in sorted(dgmc.switches)
            if x not in (u, v) and not dgmc.switches[x].states[1].active_backup
        )
        peer = dgmc.switches[other]
        assert peer.apply_resync_snapshot(snap) is True
        adopted = peer.states[1].active_backup[(u, v)]
        assert adopted.path == snap.active_backup[0][2]
        # Idempotent: re-applying the same snapshot changes nothing.
        assert peer.apply_resync_snapshot(snap) is False

    def test_frr_off_peer_ignores_backups(self):
        dgmc_on = frr_deployment()
        state = dgmc_on.states_for(1)[0]
        u, v = sorted(state.installed.all_edges())[0]
        dgmc_on.net.set_link_state(u, v, up=False)
        activate_for_edge(dgmc_on.switches[u].states, u, v)
        snap = dgmc_on.switches[u].capture_resync_snapshot(1)
        dgmc_off = frr_deployment(enable_frr=False)
        peer = dgmc_off.switches[0]
        peer.apply_resync_snapshot(snap)
        assert peer.states[1].active_backup == {}


class _JitterHost:
    def __init__(self, switch_id, hello_interval=0.05):
        self.switch_id = switch_id
        self.hello_interval = hello_interval


class TestWatchdogJitter:
    def test_jitter_is_deterministic_and_bounded(self):
        from repro.net.resync import ResyncManager

        mgr = ResyncManager.__new__(ResyncManager)
        mgr.host = _JitterHost(3)
        values = [mgr._dead_jitter(nbr) for nbr in range(32)]
        assert values == [mgr._dead_jitter(nbr) for nbr in range(32)]
        assert all(0.0 <= j < 0.5 * 0.05 for j in values)
        assert len(set(values)) > 1  # neighbors do not expire in lockstep

    def test_jitter_differs_across_hosts(self):
        from repro.net.resync import ResyncManager

        seen = set()
        for switch_id in range(8):
            mgr = ResyncManager.__new__(ResyncManager)
            mgr.host = _JitterHost(switch_id)
            seen.add(round(mgr._dead_jitter(0), 9))
        assert len(seen) > 1

    def test_race_minimization_stays_deterministic(self):
        """Pinned-seed ablated race still shrinks to the same schedule."""
        from repro.stress.model import describe_step

        schedules = []
        for _ in range(2):
            report = explore(
                get_scenario("membership-race"),
                StressOptions(config_overrides={"ablate_member_stamp": True}),
            )
            assert not report.ok
            ce = report.counterexamples[0]
            assert ce.minimized
            schedules.append([describe_step(s) for s in ce.schedule])
        assert schedules[0] == schedules[1]


class TestStressComposition:
    def test_frr_inflight_repair_state_space_is_isomorphic(self):
        """FRR on/off explore the same canonical space, violation-free."""
        scenario = get_scenario("frr-inflight-repair")
        budget = 30_000
        off = explore(scenario, StressOptions(max_transitions=budget))
        on = explore(
            scenario,
            StressOptions(
                max_transitions=budget,
                config_overrides={"enable_frr": True},
            ),
        )
        assert off.ok, [ce.detail for ce in off.counterexamples]
        assert on.ok, [ce.detail for ce in on.counterexamples]
        assert on.states_explored == off.states_explored
        assert on.terminal_states == off.terminal_states
        assert on.transitions == off.transitions
