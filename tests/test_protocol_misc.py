"""Miscellaneous protocol-layer paths: config, injection, shared sims."""

from __future__ import annotations

import pytest

from repro.core import (
    ConnectionSpec,
    ConnectionType,
    DgmcNetwork,
    JoinEvent,
    ProtocolConfig,
)
from repro.sim.kernel import Simulator
from repro.topo.generators import ring_network


class TestProtocolConfig:
    def test_constant_compute_time(self):
        config = ProtocolConfig(compute_time=2.5)
        assert config.resolve_compute_time(None) == 2.5

    def test_callable_compute_time_scales_with_members(self):
        config = ProtocolConfig(compute_time=lambda state: 0.1 * len(state.members))
        dgmc = DgmcNetwork(ring_network(4), config)
        dgmc.register_symmetric(1)
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(2, 1), at=50.0)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        # first computation: 1 member -> Tc 0.1; install at 10.1
        installs = sorted(r.time for r in dgmc.install_log)
        assert installs[0] == pytest.approx(10.1)


class TestInjection:
    def test_unknown_event_type_rejected(self):
        dgmc = DgmcNetwork(ring_network(4), ProtocolConfig())
        with pytest.raises(TypeError):
            dgmc.inject("join please", at=1.0)

    def test_invalid_switch_raises_at_fire_time(self):
        dgmc = DgmcNetwork(ring_network(4), ProtocolConfig())
        dgmc.register_symmetric(1)
        dgmc.inject(JoinEvent(99, 1), at=1.0)
        with pytest.raises(KeyError):
            dgmc.run()


class TestSharedSimulator:
    def test_two_deployments_share_one_clock(self):
        sim = Simulator()
        a = DgmcNetwork(ring_network(4), ProtocolConfig(compute_time=0.5), sim=sim)
        b = DgmcNetwork(ring_network(5), ProtocolConfig(compute_time=0.5), sim=sim)
        a.register_symmetric(1)
        b.register_symmetric(1)
        a.inject(JoinEvent(0, 1), at=10.0)
        b.inject(JoinEvent(2, 1), at=20.0)
        sim.run()
        assert a.agreement(1)[0] and b.agreement(1)[0]
        assert a.sim is b.sim
        # events interleaved on one clock: b's install after a's
        assert a.last_install_time(1) < b.last_install_time(1)


class TestConnectionSpecPlumbing:
    def test_register_generic_spec(self):
        dgmc = DgmcNetwork(ring_network(4), ProtocolConfig(compute_time=0.2))
        spec = ConnectionSpec(9, ConnectionType.SYMMETRIC, algorithm="kmb")
        dgmc.register_connection(spec)
        dgmc.inject(JoinEvent(0, 9), at=1.0)
        dgmc.inject(JoinEvent(2, 9), at=20.0)
        dgmc.run()
        ok, detail = dgmc.agreement(9)
        assert ok, detail

    def test_states_for_empty_before_any_event(self):
        dgmc = DgmcNetwork(ring_network(4), ProtocolConfig())
        dgmc.register_symmetric(1)
        assert dgmc.states_for(1) == {}
        assert dgmc.last_install_time(1) == 0.0
        assert dgmc.quiescent()
