"""Tests for the Takahashi-Matsuyama shortest-path Steiner heuristic."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lsr import spf
from repro.topo.generators import grid_network, random_connected_network, waxman_network
from repro.trees.algorithms import SharedTreeAlgorithm
from repro.trees.base import TreeError, edge_weights
from repro.trees.steiner import (
    kmb_steiner_tree,
    pruned_spt_steiner_tree,
    takahashi_matsuyama_tree,
)


def grid_adj():
    return spf.network_adjacency(grid_network(3, 3))


class TestTakahashiMatsuyama:
    def test_spans_terminals(self, small_waxman):
        adj = spf.network_adjacency(small_waxman)
        tree = takahashi_matsuyama_tree(adj, [0, 5, 10, 15])
        tree.validate([0, 5, 10, 15])
        assert tree.is_tree()

    def test_trivial_cases(self):
        adj = grid_adj()
        assert len(takahashi_matsuyama_tree(adj, []).edges) == 0
        single = takahashi_matsuyama_tree(adj, [4])
        assert len(single.edges) == 0
        assert single.members == frozenset({4})

    def test_two_terminals_is_shortest_path(self):
        tree = takahashi_matsuyama_tree(grid_adj(), [0, 8])
        weights = edge_weights(grid_adj())
        assert tree.cost(weights) == pytest.approx(4.0)

    def test_deterministic(self, small_waxman):
        adj = spf.network_adjacency(small_waxman)
        a = takahashi_matsuyama_tree(adj, [1, 6, 11, 16])
        b = takahashi_matsuyama_tree(adj, [16, 11, 6, 1])
        assert a == b

    def test_unreachable_terminal_raises(self):
        adj = {0: {1: 1.0}, 1: {0: 1.0}, 2: {}}
        with pytest.raises(TreeError):
            takahashi_matsuyama_tree(adj, [0, 2])

    def test_usually_no_worse_than_pruned_spt(self, rng):
        """TM is the stronger heuristic on average; verify over samples."""
        wins = 0
        total = 0
        for seed in range(12):
            net = waxman_network(40, random.Random(seed))
            adj = spf.network_adjacency(net)
            weights = edge_weights(adj)
            terminals = random.Random(seed + 100).sample(range(40), 6)
            tm_cost = takahashi_matsuyama_tree(adj, terminals).cost(weights)
            spt_cost = pruned_spt_steiner_tree(adj, terminals).cost(weights)
            total += 1
            if tm_cost <= spt_cost + 1e-9:
                wins += 1
        assert wins >= 0.75 * total

    def test_within_factor_two_of_kmb(self, small_waxman):
        adj = spf.network_adjacency(small_waxman)
        weights = edge_weights(adj)
        terminals = [0, 4, 9, 13, 19]
        tm_cost = takahashi_matsuyama_tree(adj, terminals).cost(weights)
        kmb_cost = kmb_steiner_tree(adj, terminals).cost(weights)
        assert tm_cost <= 2.0 * kmb_cost + 1e-9

    @given(st.integers(3, 25), st.integers(0, 300), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_always_a_valid_tree(self, n, seed, k):
        rng = random.Random(seed)
        net = random_connected_network(n, rng)
        adj = spf.network_adjacency(net)
        terminals = rng.sample(range(n), min(k, n))
        tree = takahashi_matsuyama_tree(adj, terminals)
        tree.validate(terminals)
        assert tree.is_tree()


class TestFactoryIntegration:
    def test_tm_method_available(self):
        algo = SharedTreeAlgorithm(method="tm")
        both = frozenset(("sender", "receiver"))
        topo = algo.compute(grid_adj(), {0: both, 8: both, 2: both}, None)
        topo.shared_tree.validate([0, 8, 2])

    def test_tm_usable_in_protocol(self):
        from repro.core import DgmcNetwork, JoinEvent, ProtocolConfig
        from repro.topo.generators import ring_network

        dgmc = DgmcNetwork(ring_network(6), ProtocolConfig(compute_time=0.1))
        dgmc.register_symmetric(1, algorithm="tm")
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.inject(JoinEvent(3, 1), at=20.0)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
