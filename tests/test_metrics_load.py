"""Tests for per-switch load distribution metrics."""

from __future__ import annotations

import pytest

from repro.core import DgmcNetwork, JoinEvent, ProtocolConfig
from repro.core.protocol import ComputationRecord
from repro.metrics.load import LoadDistribution, load_distribution
from repro.topo.generators import ring_network


def records(pairs):
    return [ComputationRecord(float(i), sw, conn) for i, (sw, conn) in enumerate(pairs)]


class TestLoadDistribution:
    def test_counts(self):
        log = records([(0, 1), (0, 1), (2, 1)])
        dist = load_distribution(log, n=4)
        assert dist.total == 3
        assert dist.peak == 2
        assert dist.busy_switches == 2
        assert dist.mean == pytest.approx(0.75)
        assert dist.per_switch == {0: 2, 1: 0, 2: 1, 3: 0}

    def test_connection_filter(self):
        log = records([(0, 1), (1, 2), (1, 2)])
        dist = load_distribution(log, n=3, connection_id=2)
        assert dist.total == 2
        assert dist.per_switch[1] == 2

    def test_empty(self):
        dist = load_distribution([], n=5)
        assert dist.total == 0
        assert dist.peak == 0
        assert dist.jain_fairness() == 1.0

    def test_jain_uniform_is_one(self):
        log = records([(x, 1) for x in range(4)])
        assert load_distribution(log, n=4).jain_fairness() == pytest.approx(1.0)

    def test_jain_concentrated_is_one_over_n(self):
        log = records([(0, 1)] * 10)
        assert load_distribution(log, n=5).jain_fairness() == pytest.approx(0.2)


class TestProtocolLoad:
    def test_sparse_dgmc_loads_only_event_switches(self):
        dgmc = DgmcNetwork(
            ring_network(8), ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
        )
        dgmc.register_symmetric(1)
        for i, sw in enumerate([0, 3, 6]):
            dgmc.inject(JoinEvent(sw, 1), at=50.0 * (i + 1))
        dgmc.run()
        dist = load_distribution(dgmc.computation_log, n=8)
        assert dist.busy_switches == 3  # only the joiners computed
        assert dist.peak == 1
        assert dist.jain_fairness() < 1.0
