"""Tests for the public deployment verifier."""

from __future__ import annotations

import pytest

from repro.core import DgmcNetwork, JoinEvent, LeaveEvent, NodeEvent, ProtocolConfig
from repro.topo.generators import ring_network, waxman_network
from repro.verify import VerificationError, verify_deployment


def deployment():
    dgmc = DgmcNetwork(
        ring_network(6), ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
    )
    dgmc.register_symmetric(1)
    return dgmc


class TestVerify:
    def test_clean_deployment_passes(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(3, 1), at=30.0)
        dgmc.run()
        report = verify_deployment(dgmc, 1, expect_members=frozenset({0, 3}))
        assert any("agreement" in c for c in report.checks)
        assert any("topology valid" in c for c in report.checks)

    def test_destroyed_connection_passes(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(LeaveEvent(0, 1), at=30.0)
        dgmc.run()
        report = verify_deployment(dgmc, 1)
        assert any("destroyed" in c for c in report.checks)

    def test_destroyed_with_expectation_fails(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(LeaveEvent(0, 1), at=30.0)
        dgmc.run()
        with pytest.raises(VerificationError, match="destroyed"):
            verify_deployment(dgmc, 1, expect_members=frozenset({0}))

    def test_wrong_membership_expectation_fails(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.run()
        with pytest.raises(VerificationError, match="member list"):
            verify_deployment(dgmc, 1, expect_members=frozenset({0, 5}))

    def test_non_quiescent_fails(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.run(until=10.1)  # mid-computation
        with pytest.raises(VerificationError, match="quiescent"):
            verify_deployment(dgmc, 1)

    def test_survives_node_failure_scenario(self, rng):
        net = waxman_network(20, rng)
        dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
        dgmc.register_symmetric(1)
        for i, sw in enumerate([0, 7, 13]):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        dgmc.inject(NodeEvent(7, up=False), at=100.0)
        dgmc.run()
        report = verify_deployment(dgmc, 1)
        assert any("topology valid" in c for c in report.checks)

    def test_detects_corrupted_state(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(3, 1), at=30.0)
        dgmc.run()
        # simulate a bug: one switch's C stamp runs ahead of R
        state = dgmc.states_for(1)[2]
        state.current_stamp = tuple(
            c + 5 for c in state.current_stamp
        )
        with pytest.raises(VerificationError):
            verify_deployment(dgmc, 1)
