"""Tests for incremental (dynamic) Steiner maintenance: graft, prune, policy."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lsr import spf
from repro.topo.generators import grid_network, random_connected_network
from repro.trees.base import MulticastTree, TreeError, edge_weights
from repro.trees.dynamic import GreedyDynamicSteiner, graft_path, prune_member
from repro.trees.steiner import pruned_spt_steiner_tree


def grid_adj():
    return spf.network_adjacency(grid_network(3, 3))


class TestGraft:
    def test_graft_into_empty_tree(self):
        tree = MulticastTree.empty()
        grown = graft_path(grid_adj(), tree, 4)
        assert grown.members == frozenset({4})
        assert len(grown.edges) == 0

    def test_graft_attaches_by_cheapest_path(self):
        adj = grid_adj()
        tree = MulticastTree.build([(0, 1)], [0, 1])
        grown = graft_path(adj, tree, 2)
        assert grown.edges == frozenset({(0, 1), (1, 2)})

    def test_graft_existing_node_is_noop_on_edges(self):
        adj = grid_adj()
        tree = MulticastTree.build([(0, 1), (1, 2)], [0, 2])
        grown = graft_path(adj, tree, 1)
        assert grown.edges == tree.edges
        assert 1 in grown.members

    def test_graft_unreachable_raises(self):
        adj = {0: {1: 1.0}, 1: {0: 1.0}, 2: {}}
        tree = MulticastTree.build([(0, 1)], [0, 1])
        with pytest.raises(TreeError):
            graft_path(adj, tree, 2)

    def test_graft_may_use_steiner_nodes(self):
        adj = grid_adj()
        tree = MulticastTree.build([(0, 1), (1, 2)], [0, 2])
        grown = graft_path(adj, tree, 7)  # grid center column bottom
        grown.validate([0, 2, 7])
        assert grown.is_tree()


class TestPrune:
    def test_prune_leaf_removes_branch(self):
        adj = grid_adj()
        tree = MulticastTree.build([(0, 1), (1, 2), (2, 5), (5, 8)], [0, 2, 8])
        pruned = prune_member(tree, 8)
        assert pruned.edges == frozenset({(0, 1), (1, 2)})
        assert pruned.members == frozenset({0, 2})

    def test_prune_relay_keeps_edges(self):
        tree = MulticastTree.build([(0, 1), (1, 2)], [0, 1, 2])
        pruned = prune_member(tree, 1)
        assert pruned.edges == tree.edges
        assert pruned.members == frozenset({0, 2})

    def test_prune_cascades_through_steiner_chain(self):
        # 0 -1- 1 -2- 2 with members {0, 2}: removing 2 strips both edges
        # past the remaining member.
        tree = MulticastTree.build([(0, 1), (1, 2), (2, 3)], [0, 3])
        pruned = prune_member(tree, 3)
        assert pruned.edges == frozenset()
        assert pruned.members == frozenset({0})

    def test_prune_absent_member_is_noop(self):
        tree = MulticastTree.build([(0, 1)], [0, 1])
        pruned = prune_member(tree, 9)
        assert pruned.edges == tree.edges

    def test_prune_respects_root(self):
        tree = MulticastTree.build([(0, 1)], [0, 1], root=1)
        pruned = prune_member(tree, 1)
        # root 1 stays on the tree even as a non-member leaf
        assert pruned.edges == frozenset({(0, 1)})


class TestPolicy:
    def test_first_computation_is_from_scratch(self):
        adj = grid_adj()
        dyn = GreedyDynamicSteiner()
        tree = dyn.update(adj, None, frozenset({0, 8}))
        tree.validate([0, 8])
        assert dyn.rebuilds == 1
        assert dyn.incremental_updates == 0

    def test_join_is_incremental(self):
        adj = grid_adj()
        dyn = GreedyDynamicSteiner(rebuild_threshold=float("inf"))
        tree = dyn.update(adj, None, frozenset({0, 8}))
        tree2 = dyn.update(adj, tree, frozenset({0, 8, 2}))
        tree2.validate([0, 8, 2])
        assert dyn.incremental_updates == 1

    def test_leave_is_incremental(self):
        adj = grid_adj()
        dyn = GreedyDynamicSteiner(rebuild_threshold=float("inf"))
        tree = dyn.update(adj, None, frozenset({0, 8, 2}))
        tree2 = dyn.update(adj, tree, frozenset({0, 8}))
        tree2.validate([0, 8])
        assert dyn.incremental_updates == 1

    def test_broken_tree_edge_forces_rebuild(self):
        adj = grid_adj()
        dyn = GreedyDynamicSteiner()
        tree = dyn.update(adj, None, frozenset({0, 8}))
        # remove an edge the tree uses from the adjacency (link failure)
        u, v = sorted(tree.edges)[0]
        broken = {
            x: {y: w for y, w in nbrs.items() if {x, y} != {u, v}}
            for x, nbrs in adj.items()
        }
        rebuilds_before = dyn.rebuilds
        tree2 = dyn.update(broken, tree, frozenset({0, 8}))
        tree2.validate([0, 8])
        assert dyn.rebuilds == rebuilds_before + 1
        assert (u, v) not in tree2.edges

    def test_empty_membership_returns_empty(self):
        dyn = GreedyDynamicSteiner()
        tree = dyn.update(grid_adj(), None, frozenset())
        assert len(tree.edges) == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            GreedyDynamicSteiner(rebuild_threshold=0.5)
        with pytest.raises(ValueError):
            GreedyDynamicSteiner(scratch="nonsense")

    def test_tight_threshold_triggers_rebuild(self):
        # With threshold 1.0 any degradation rebuilds; cost never exceeds
        # the fresh heuristic's.
        adj = grid_adj()
        weights = edge_weights(adj)
        dyn = GreedyDynamicSteiner(rebuild_threshold=1.0)
        members = frozenset({0, 8})
        tree = dyn.update(adj, None, members)
        for new in (2, 6, 4):
            members = members | {new}
            tree = dyn.update(adj, tree, members)
            fresh = pruned_spt_steiner_tree(adj, members)
            assert tree.cost(weights) <= fresh.cost(weights) + 1e-9

    @given(st.integers(4, 20), st.integers(0, 200), st.integers(3, 12))
    @settings(max_examples=25, deadline=None)
    def test_random_join_leave_sequences_stay_valid(self, n, seed, steps):
        rng = random.Random(seed)
        net = random_connected_network(n, rng)
        adj = spf.network_adjacency(net)
        dyn = GreedyDynamicSteiner()
        members = {rng.randrange(n)}
        tree = dyn.update(adj, None, frozenset(members))
        for _ in range(steps):
            absent = [x for x in range(n) if x not in members]
            if absent and (len(members) == 1 or rng.random() < 0.6):
                members.add(rng.choice(absent))
            else:
                members.remove(rng.choice(sorted(members)))
            tree = dyn.update(adj, tree, frozenset(members))
            tree.validate(members)
            assert tree.is_tree()
