"""SPF cache: correctness vs uncached, invalidation, and determinism."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    DgmcNetwork,
    JoinEvent,
    LinkEvent,
    ProtocolConfig,
)
from repro.lsr import spf, spfcache
from repro.lsr.lsa import RouterLsa
from repro.lsr.lsdb import LinkStateDatabase
from repro.lsr.spfcache import CacheStats, SpfCache, combined_stats
from repro.topo.generators import grid_network, waxman_network
from repro.topo.graph import Network
from repro.trees.spt import source_rooted_tree


def diamond() -> Network:
    """0-1-3 and 0-2-3 with unit delays: equal-cost paths to 3."""
    net = Network(4)
    net.add_link(0, 1)
    net.add_link(0, 2)
    net.add_link(1, 3)
    net.add_link(2, 3)
    return net


class TestCorrectnessVsUncached:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("n", [8, 20])
    def test_sssp_matches_plain_adjacency(self, n, seed):
        net = waxman_network(n, random.Random(seed))
        plain = spf.network_adjacency(net)
        view = net.spf_view()
        assert isinstance(view, SpfCache)
        assert view == plain  # mapping protocol: same adjacency content
        for src in net.switches():
            assert spf.dijkstra(view, src) == spf.dijkstra_uncached(plain, src)
            assert spf.routing_table(view, src) == spf.routing_table(plain, src)
            assert spf.eccentricity(view, src) == spf.eccentricity(plain, src)

    def test_shortest_path_matches_all_pairs(self, small_waxman):
        plain = spf.network_adjacency(small_waxman)
        view = small_waxman.spf_view()
        for s in small_waxman.switches():
            for t in small_waxman.switches():
                assert spf.shortest_path(view, s, t) == spf.shortest_path(
                    plain, s, t
                )

    def test_tree_algorithms_accept_cached_view(self, small_waxman):
        plain = spf.network_adjacency(small_waxman)
        view = small_waxman.spf_view()
        members = frozenset({1, 5, 9, 13})
        assert source_rooted_tree(view, 1, members) == source_rooted_tree(
            plain, 1, members
        )

    def test_unreachable_target_returns_none(self):
        net = Network(3)
        net.add_link(0, 1)
        view = net.spf_view()
        assert spf.shortest_path(view, 0, 2) is None
        assert spf.shortest_path(view, 0, 1) == [0, 1]


class TestMemoization:
    def test_sssp_runs_dijkstra_once_per_source(self):
        cache = SpfCache({0: {1: 1.0}, 1: {0: 1.0}})
        before = spf.RUN_COUNTER.count
        first = cache.sssp(0)
        second = cache.sssp(0)
        assert first is second
        assert spf.RUN_COUNTER.count - before == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.full_runs == 1

    def test_repeated_path_queries_solve_sssp_once(self, small_waxman):
        view = small_waxman.spf_view()
        before = spf.RUN_COUNTER.count
        for target in small_waxman.switches():
            spf.shortest_path(view, 0, target)
        assert spf.RUN_COUNTER.count - before == 1

    def test_routing_table_and_eccentricity_share_the_sssp(self):
        view = diamond().spf_view()
        before = spf.RUN_COUNTER.count
        spf.routing_table(view, 0)
        spf.eccentricity(view, 0)
        spf.shortest_path(view, 0, 3)
        assert spf.RUN_COUNTER.count - before == 1

    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0

    def test_stats_arithmetic_and_combination(self):
        a = CacheStats(1, 2, 3, 4)
        b = CacheStats(10, 20, 30, 40)
        assert (a + b) - b == a
        assert combined_stats([a, None, b]) == a + b

    def test_stats_carry_ispf_counters(self):
        a = CacheStats(ispf_repairs=2, ispf_full_fallbacks=1, relaxations=50)
        b = CacheStats(ispf_repairs=3, relaxations=7)
        total = a + b
        assert total.ispf_repairs == 5
        assert total.ispf_full_fallbacks == 1
        assert total.relaxations == 57
        assert (total - b) == a
        d = a.as_dict()
        assert d["ispf_repairs"] == 2
        assert d["ispf_full_fallbacks"] == 1
        assert d["relaxations"] == 50


class TestInvalidation:
    @staticmethod
    def _lsa(origin, seqnum, links):
        return RouterLsa(origin, seqnum, tuple(links))

    def test_lsdb_install_invalidates_snapshot(self):
        db = LinkStateDatabase(2)
        db.install(self._lsa(0, 1, [(1, 1.0, True)]))
        db.install(self._lsa(1, 1, [(0, 1.0, True)]))
        image1 = db.adjacency()
        assert db.adjacency() is image1  # stable until the next install
        assert image1[0] == {1: 1.0}

        invalidations0 = db.spf_stats.invalidations
        assert db.install(self._lsa(0, 2, [(1, 1.0, False)]))
        image2 = db.adjacency()
        assert image2 is not image1
        assert db.spf_stats.invalidations == invalidations0 + 1
        assert image2[0] == {}  # the down link left the image
        # Snapshot semantics: the old image still answers on old state.
        assert spf.shortest_path(image1, 0, 1) == [0, 1]

    def test_lsdb_refresh_install_keeps_snapshot(self):
        """A pure seqnum refresh must not discard the image or its memos."""
        db = LinkStateDatabase(2)
        db.install(self._lsa(0, 1, [(1, 1.0, True)]))
        db.install(self._lsa(1, 1, [(0, 1.0, True)]))
        image = db.adjacency()
        image.sssp(0)
        invalidations0 = db.spf_stats.invalidations
        assert db.install(self._lsa(0, 2, [(1, 1.0, True)]))  # same content
        assert not db.last_install_changed_image
        assert db.adjacency() is image
        assert db.spf_stats.invalidations == invalidations0

    def test_lsdb_single_link_install_repairs_instead_of_rerunning(self):
        db = LinkStateDatabase(3)
        db.install(self._lsa(0, 1, [(1, 1.0, True), (2, 1.0, True)]))
        db.install(self._lsa(1, 1, [(0, 1.0, True), (2, 1.0, True)]))
        db.install(self._lsa(2, 1, [(0, 1.0, True), (1, 1.0, True)]))
        db.adjacency().sssp(0)
        repairs0 = db.spf_stats.ispf_repairs
        assert db.install(self._lsa(0, 2, [(1, 5.0, True), (2, 1.0, True)]))
        assert db.last_install_changed_image
        dist, parent = db.adjacency().sssp(0)
        assert db.spf_stats.ispf_repairs == repairs0 + 1
        assert dist == spf.dijkstra_uncached(dict(db.adjacency()), 0)[0]
        with spfcache.ispf_disabled():
            # The toggle restores the old recompute-from-scratch path.
            db2 = LinkStateDatabase(2)
            db2.install(self._lsa(0, 1, [(1, 1.0, True)]))
            db2.install(self._lsa(1, 1, [(0, 1.0, True)]))
            db2.adjacency().sssp(0)
            db2.install(self._lsa(0, 2, [(1, 2.0, True)]))
            db2.adjacency().sssp(0)
            assert db2.spf_stats.ispf_repairs == 0

    def test_lsdb_stale_install_keeps_snapshot(self):
        db = LinkStateDatabase(2)
        db.install(self._lsa(0, 5, [(1, 1.0, True)]))
        db.install(self._lsa(1, 1, [(0, 1.0, True)]))
        image = db.adjacency()
        assert not db.install(self._lsa(0, 4, [(1, 1.0, False)]))  # older
        assert db.adjacency() is image

    def test_link_flap_invalidates_network_view(self):
        net = diamond()
        view1 = net.spf_view()
        version1 = net.version
        assert net.spf_view() is view1

        net.set_link_state(0, 1, up=False)
        assert net.version == version1 + 1
        view2 = net.spf_view()
        assert view2 is not view1
        assert net.spf_stats.invalidations == 1
        assert 1 not in view2[0]
        assert spf.shortest_path(view2, 0, 3) == [0, 2, 3]

        net.set_link_state(0, 1, up=True)
        assert net.spf_view() is not view2

    def test_add_link_invalidates_network_view(self):
        net = Network(3)
        net.add_link(0, 1)
        view = net.spf_view()
        net.add_link(1, 2)
        assert net.spf_view() is not view
        assert spf.shortest_path(net.spf_view(), 0, 2) == [0, 1, 2]

    def test_link_event_invalidates_router_images(self):
        """A flooded link-down LSA must invalidate every switch's image."""
        dgmc = DgmcNetwork(
            grid_network(3, 3),
            ProtocolConfig(compute_time=0.5, per_hop_delay=0.05),
        )
        dgmc.register_symmetric(1)
        for i, sw in enumerate((0, 4, 8)):
            dgmc.inject(JoinEvent(sw, 1), at=50.0 * (i + 1))
        dgmc.run()
        invalidations0 = dgmc.spf_cache_stats().invalidations

        dgmc.inject(LinkEvent(0, 0, 1, up=False), at=500.0)
        dgmc.run()
        assert dgmc.quiescent()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        stats = dgmc.spf_cache_stats()
        # Both detectors re-originate, so every LSDB drops its image.
        assert stats.invalidations > invalidations0
        up_edges = {link.key for link in dgmc.net.links()}
        state = dgmc.states_for(1)[0]
        for _, tree in state.installed.trees:
            assert tree.edges <= up_edges

    def test_reoptimize_on_link_up_recomputes_on_fresh_image(self):
        dgmc = DgmcNetwork(
            grid_network(3, 3),
            ProtocolConfig(
                compute_time=0.5, per_hop_delay=0.05, reoptimize_on_link_up=True
            ),
        )
        dgmc.register_symmetric(1)
        for i, sw in enumerate((0, 4, 8)):
            dgmc.inject(JoinEvent(sw, 1), at=50.0 * (i + 1))
        dgmc.run()

        dgmc.inject(LinkEvent(0, 0, 1, up=False), at=500.0)
        dgmc.run()
        comps_down = dgmc.total_computations()
        invalidations_down = dgmc.spf_cache_stats().invalidations

        dgmc.inject(LinkEvent(0, 0, 1, up=True), at=1000.0)
        dgmc.run()
        assert dgmc.quiescent()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        # Recovery is an MC event: a new computation on a new image.
        assert dgmc.total_computations() > comps_down
        assert dgmc.spf_cache_stats().invalidations > invalidations_down


class TestDeterminism:
    def test_tie_break_identical_through_cache(self):
        net = diamond()
        plain = spf.network_adjacency(net)
        view = net.spf_view()
        _, parent_cached = spf.dijkstra(view, 0)
        _, parent_plain = spf.dijkstra_uncached(plain, 0)
        assert parent_cached == parent_plain
        assert parent_cached[3] == 1  # equal-cost tie resolved to lower id

    def test_memoized_result_is_stable_across_queries(self):
        view = diamond().spf_view()
        first = spf.dijkstra(view, 0)
        assert spf.dijkstra(view, 0) == first
        assert source_rooted_tree(view, 0, frozenset({0, 3})) == (
            source_rooted_tree(view, 0, frozenset({0, 3}))
        )


class TestGlobalSwitch:
    def test_disabled_views_are_plain_dicts(self):
        net = diamond()
        with spfcache.disabled():
            assert not spfcache.enabled()
            view = net.spf_view()
            assert isinstance(view, dict)
            db = LinkStateDatabase(2)
            db.install(RouterLsa(0, 1, ((1, 1.0, True),)))
            db.install(RouterLsa(1, 1, ((0, 1.0, True),)))
            assert isinstance(db.adjacency(), dict)
        assert spfcache.enabled()
        assert isinstance(net.spf_view(), SpfCache)

    def test_disabled_run_pays_one_dijkstra_per_query(self):
        net = diamond()
        with spfcache.disabled():
            view = net.spf_view()
            before = spf.RUN_COUNTER.count
            spf.shortest_path(view, 0, 3)
            spf.shortest_path(view, 0, 3)
            assert spf.RUN_COUNTER.count - before == 2
