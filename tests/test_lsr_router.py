"""Tests for the unicast router entity and bring-up."""

from __future__ import annotations

import pytest

from repro.lsr.flooding import FloodingFabric
from repro.lsr.lsa import NonMcLsa
from repro.lsr.router import UnicastRouter, bring_up_unicast
from repro.sim.kernel import Simulator
from repro.topo.generators import grid_network, ring_network


def make_deployment(net):
    sim = Simulator()
    fabric = FloodingFabric(sim, net, per_hop_delay=0.1)
    routers = bring_up_unicast(net, fabric)
    for x in net.switches():
        fabric.register(
            x,
            lambda s, p: routers[s].receive(p) if isinstance(p, NonMcLsa) else None,
        )
    return sim, fabric, routers


class TestBringUp:
    def test_all_databases_complete(self, grid4x4):
        _, _, routers = make_deployment(grid4x4)
        assert all(r.lsdb.complete() for r in routers.values())

    def test_no_floods_during_static_bring_up(self, grid4x4):
        _, fabric, _ = make_deployment(grid4x4)
        assert fabric.total_floods == 0

    def test_images_identical(self, grid4x4):
        _, _, routers = make_deployment(grid4x4)
        images = [r.network_image() for r in routers.values()]
        assert all(img == images[0] for img in images)


class TestRoutingTable:
    def test_next_hop_on_grid(self):
        net = grid_network(1, 4)  # line 0-1-2-3
        _, _, routers = make_deployment(net)
        assert routers[0].next_hop(3) == 1
        assert routers[3].next_hop(0) == 2
        assert routers[0].next_hop(0) is None

    def test_table_covers_all_destinations(self, grid4x4):
        _, _, routers = make_deployment(grid4x4)
        assert len(routers[0].routing_table()) == grid4x4.n - 1


class TestLinkEvents:
    def test_link_down_reflows_routes(self):
        net = ring_network(4)
        sim, fabric, routers = make_deployment(net)
        # 0's route to 3 is direct
        assert routers[0].next_hop(3) == 3
        net.set_link_state(0, 3, up=False)
        routers[0].notify_incident_link_event()
        routers[3].notify_incident_link_event()
        sim.run()
        # both endpoints re-advertised; everyone routes around the ring now
        assert routers[0].next_hop(3) == 1
        assert routers[2].lsdb.get(0).seqnum == 2

    def test_exactly_one_non_mc_flood_per_notification(self):
        net = ring_network(4)
        sim, fabric, routers = make_deployment(net)
        net.set_link_state(0, 1, up=False)
        routers[0].notify_incident_link_event()
        assert fabric.count_for("non-mc") == 1

    def test_on_image_change_hook_fires(self):
        net = ring_network(4)
        sim = Simulator()
        fabric = FloodingFabric(sim, net)
        routers = bring_up_unicast(net, fabric)
        hits = []
        routers[2].on_image_change = lambda: hits.append(sim.now)
        fabric.register(2, lambda s, p: routers[2].receive(p))
        net.set_link_state(0, 1, up=False)
        routers[0].notify_incident_link_event()
        sim.run()
        assert len(hits) == 1

    def test_stale_lsa_does_not_fire_hook(self):
        net = ring_network(4)
        sim, fabric, routers = make_deployment(net)
        old = routers[0].lsdb.get(0)
        hits = []
        routers[1].on_image_change = lambda: hits.append(1)
        assert not routers[1].receive(NonMcLsa(0, old))
        assert hits == []


class TestOriginate:
    def test_seqnum_increases(self):
        net = ring_network(4)
        sim = Simulator()
        fabric = FloodingFabric(sim, net)
        router = UnicastRouter(0, net, fabric)
        a = router.originate(flood=False)
        b = router.originate(flood=False)
        assert b.seqnum == a.seqnum + 1

    def test_lsa_describes_incident_links(self):
        net = ring_network(4)
        sim = Simulator()
        fabric = FloodingFabric(sim, net)
        router = UnicastRouter(0, net, fabric)
        lsa = router.originate(flood=False)
        assert sorted(nbr for nbr, _, _ in lsa.links) == [1, 3]

    def test_down_links_still_advertised_as_down(self):
        net = ring_network(4)
        net.set_link_state(0, 1, up=False)
        sim = Simulator()
        fabric = FloodingFabric(sim, net)
        router = UnicastRouter(0, net, fabric)
        lsa = router.originate(flood=False)
        assert lsa.link_map()[1][1] is False
