"""Tests for the pluggable TopologyAlgorithm interface."""

from __future__ import annotations

import pytest

from repro.lsr import spf
from repro.topo.generators import grid_network
from repro.trees.algorithms import (
    RECEIVER,
    SENDER,
    SharedTreeAlgorithm,
    SourceTreesAlgorithm,
    make_algorithm,
    receivers_of,
    senders_of,
)
from repro.trees.base import SHARED, McTopology


BOTH = frozenset((SENDER, RECEIVER))
RX = frozenset((RECEIVER,))
TX = frozenset((SENDER,))


def grid_adj():
    return spf.network_adjacency(grid_network(3, 3))


class TestRoleHelpers:
    def test_receivers_and_senders(self):
        members = {0: BOTH, 1: RX, 2: TX}
        assert receivers_of(members) == frozenset({0, 1})
        assert senders_of(members) == frozenset({0, 2})


class TestSharedTree:
    def test_default_method_spans_members(self):
        algo = SharedTreeAlgorithm()
        topo = algo.compute(grid_adj(), {0: BOTH, 8: BOTH}, None)
        topo.shared_tree.validate([0, 8])

    @pytest.mark.parametrize("method", ["pruned-spt", "kmb", "cbt"])
    def test_stateless_methods(self, method):
        algo = SharedTreeAlgorithm(method=method)
        topo = algo.compute(grid_adj(), {0: BOTH, 2: BOTH, 6: BOTH}, None)
        topo.shared_tree.validate([0, 2, 6])

    def test_incremental_uses_previous(self):
        algo = SharedTreeAlgorithm(rebuild_threshold=float("inf"))
        t1 = algo.compute(grid_adj(), {0: BOTH, 8: BOTH}, None)
        t2 = algo.compute(grid_adj(), {0: BOTH, 8: BOTH, 2: BOTH}, t1)
        assert t1.shared_tree.edges <= t2.shared_tree.edges
        assert algo._dynamic.incremental_updates == 1

    def test_empty_membership(self):
        algo = SharedTreeAlgorithm()
        assert algo.compute(grid_adj(), {}, None) == McTopology.empty()

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            SharedTreeAlgorithm(method="magic")

    def test_determinism_across_instances(self):
        # Two switches with separate algorithm instances and identical
        # inputs must produce identical topologies (D-GMC requirement).
        members = {0: BOTH, 4: BOTH, 8: BOTH}
        a = SharedTreeAlgorithm().compute(grid_adj(), members, None)
        b = SharedTreeAlgorithm().compute(grid_adj(), members, None)
        assert a == b


class TestSourceTrees:
    def test_one_tree_per_sender(self):
        algo = SourceTreesAlgorithm()
        members = {0: TX, 4: TX, 8: RX, 2: RX}
        topo = algo.compute(grid_adj(), members, None)
        trees = topo.tree_map()
        assert sorted(trees) == [0, 4]
        for sender, tree in trees.items():
            tree.validate({2, 8} | {sender})
            assert tree.root == sender

    def test_sender_receiver_overlap(self):
        algo = SourceTreesAlgorithm()
        members = {0: BOTH, 8: BOTH}
        topo = algo.compute(grid_adj(), members, None)
        assert sorted(topo.tree_map()) == [0, 8]

    def test_no_senders_or_receivers_empty(self):
        algo = SourceTreesAlgorithm()
        assert algo.compute(grid_adj(), {0: RX}, None) == McTopology.empty()
        assert algo.compute(grid_adj(), {0: TX}, None) == McTopology.empty()


class TestFactory:
    def test_symmetric_and_receiver_only_are_shared(self):
        assert isinstance(make_algorithm("symmetric"), SharedTreeAlgorithm)
        assert isinstance(
            make_algorithm("receiver-only", method="kmb"), SharedTreeAlgorithm
        )

    def test_asymmetric_is_source_trees(self):
        assert isinstance(make_algorithm("asymmetric"), SourceTreesAlgorithm)

    def test_asymmetric_rejects_options(self):
        with pytest.raises(ValueError):
            make_algorithm("asymmetric", method="kmb")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            make_algorithm("broadcast")
