"""Round-trip and fuzz tests for the live runtime's datagram framing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lsa import McEvent, McLsa
from repro.core.mc import Role
from repro.core.wire import WireDecodeError
from repro.lsr.lsa import NonMcLsa, RouterLsa
from repro.core.wire import encode_topology
from repro.net.frames import (
    ACK,
    DATA,
    DBD,
    FRAME_MAGIC,
    HELLO,
    LSU,
    RELIABLE_TYPES,
    SNAP,
    AckFrame,
    DataFrame,
    DbdFrame,
    FrameDecodeError,
    HelloFrame,
    LsuFrame,
    McSnapshot,
    SnapFrame,
    decode_frame,
    encode_ack,
    encode_data,
    encode_dbd,
    encode_hello,
    encode_lsu,
    encode_snap,
    try_decode_frame,
)
from repro.trees.base import McTopology, MulticastTree


def sample_mc_lsa() -> McLsa:
    topo = McTopology.shared(MulticastTree.build([(0, 1), (1, 2)], [0, 2]))
    return McLsa(3, McEvent.JOIN, 7, topo, (1, 0, 2, 0), Role.BOTH)


def sample_router_lsa() -> NonMcLsa:
    return NonMcLsa(2, RouterLsa(2, 17, ((0, 1.5, True), (5, 0.25, False))))


class TestRoundTrip:
    def test_data_with_mc_lsa(self):
        lsa = sample_mc_lsa()
        frame = decode_frame(encode_data(3, 9, 42, lsa))
        assert frame == DataFrame(3, 9, 42, lsa)

    def test_data_with_router_lsa(self):
        lsa = sample_router_lsa()
        frame = decode_frame(encode_data(2, 0, 1, lsa))
        assert frame == DataFrame(2, 0, 1, lsa)

    def test_ack(self):
        assert decode_frame(encode_ack(9, 3, 42)) == AckFrame(9, 3, 42)

    @given(
        src=st.integers(0, 2**16 - 1),
        dest=st.integers(0, 2**16 - 1),
        seq=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_ack_roundtrip_ranges(self, src, dest, seq):
        assert decode_frame(encode_ack(src, dest, seq)) == AckFrame(src, dest, seq)


def sample_snapshot(with_topology: bool = True) -> McSnapshot:
    topo = McTopology.shared(MulticastTree.build([(0, 1), (1, 2)], [0, 2]))
    return McSnapshot(
        connection_id=7,
        received=(1, 0, 2, 1),
        expected=(1, 0, 2, 1),
        current=(1, 0, 1, 1),
        proposer=2,
        member_stamp=(1, 0, 2, 1),
        members=((0, frozenset({"sender", "receiver"})), (2, frozenset({"receiver"}))),
        topology=encode_topology(topo) if with_topology else None,
    )


class TestControlRoundTrip:
    def test_hello(self):
        assert decode_frame(encode_hello(4, 9, 3)) == HelloFrame(4, 9, 3)

    def test_dbd_request(self):
        frame = decode_frame(encode_dbd(1, 2, 5, {0: 3, 4: 17}))
        assert frame == DbdFrame(1, 2, 5, False, ((0, 3), (4, 17)))
        assert frame.header_map() == {0: 3, 4: 17}

    def test_dbd_reply_flag(self):
        frame = decode_frame(encode_dbd(1, 2, 5, {}, reply=True))
        assert frame == DbdFrame(1, 2, 5, True, ())

    def test_snap(self):
        snap = sample_snapshot()
        frame = decode_frame(encode_snap(3, 8, 11, snap))
        assert frame == SnapFrame(3, 8, 11, snap)

    def test_snap_without_topology(self):
        snap = sample_snapshot(with_topology=False)
        assert decode_frame(encode_snap(3, 8, 11, snap)) == SnapFrame(3, 8, 11, snap)

    def test_lsu(self):
        lsa = sample_router_lsa()
        assert decode_frame(encode_lsu(2, 0, 9, lsa)) == LsuFrame(2, 0, 9, lsa)

    def test_lsu_rejects_mc_lsa(self):
        with pytest.raises(TypeError):
            encode_lsu(2, 0, 9, sample_mc_lsa())

    def test_reliable_types(self):
        assert RELIABLE_TYPES == frozenset((DATA, DBD, SNAP, LSU))
        assert HELLO not in RELIABLE_TYPES
        assert ACK not in RELIABLE_TYPES


class TestControlRobustness:
    def test_hello_with_trailing_bytes(self):
        with pytest.raises(FrameDecodeError, match="HELLO"):
            decode_frame(encode_hello(1, 2, 3) + b"\x00")

    def test_dbd_unsorted_headers(self):
        good = encode_dbd(1, 2, 5, {0: 3, 4: 17})
        # Swap the two 6-byte header entries after the 3-byte DBD head.
        body_at = len(encode_ack(0, 0, 0)) + 3
        swapped = (
            good[:body_at]
            + good[body_at + 6 : body_at + 12]
            + good[body_at : body_at + 6]
        )
        with pytest.raises(FrameDecodeError, match="sorted"):
            decode_frame(swapped)

    def test_snap_truncated_vectors(self):
        data = encode_snap(3, 8, 11, sample_snapshot())
        with pytest.raises(FrameDecodeError, match="truncated"):
            decode_frame(data[: len(encode_ack(0, 0, 0)) + 10])

    def test_snap_garbage_topology(self):
        snap = sample_snapshot(with_topology=False)
        data = encode_snap(3, 8, 11, snap)
        # Flip the has-topology flag and append junk.
        with pytest.raises(FrameDecodeError):
            decode_frame(data[:-1] + b"\x01garbage")

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_fuzz_corrupted_control_frames(self, suffix):
        for data in (
            encode_dbd(1, 2, 5, {0: 3, 4: 17}),
            encode_snap(3, 8, 11, sample_snapshot()),
            encode_lsu(2, 0, 9, sample_router_lsa()),
        ):
            for blob in (data[: len(data) // 2] + suffix, data + suffix):
                try:
                    decode_frame(blob)
                except FrameDecodeError:
                    pass


class TestRobustness:
    def test_truncated_header(self):
        with pytest.raises(FrameDecodeError, match="truncated"):
            decode_frame(b"\xd7\x01")

    def test_bad_magic(self):
        data = bytearray(encode_ack(1, 2, 3))
        data[0] = 0x00
        with pytest.raises(FrameDecodeError, match="magic"):
            decode_frame(bytes(data))

    def test_lsa_magic_is_not_frame_magic(self):
        """A raw LSA accidentally fed to the frame decoder must not parse."""
        from repro.core.wire import encode_lsa

        with pytest.raises(FrameDecodeError, match="magic"):
            decode_frame(encode_lsa(sample_mc_lsa()))

    def test_bad_version(self):
        data = bytearray(encode_ack(1, 2, 3))
        data[1] = 99
        with pytest.raises(FrameDecodeError, match="version"):
            decode_frame(bytes(data))

    def test_unknown_type(self):
        data = bytearray(encode_ack(1, 2, 3))
        data[2] = 77
        with pytest.raises(FrameDecodeError, match="type"):
            decode_frame(bytes(data))

    def test_ack_with_trailing_bytes(self):
        with pytest.raises(FrameDecodeError, match="ACK"):
            decode_frame(encode_ack(1, 2, 3) + b"\x00")

    def test_data_with_garbage_payload(self):
        header = encode_ack(1, 2, 3)[:2] + bytes([DATA]) + encode_ack(1, 2, 3)[3:]
        # \x00 = "no trace context", so the garbage reaches the LSA codec.
        with pytest.raises(FrameDecodeError, match="payload"):
            decode_frame(header + b"\x00" + b"garbage")

    def test_data_with_bad_ctx_flag(self):
        header = encode_ack(1, 2, 3)[:2] + bytes([DATA]) + encode_ack(1, 2, 3)[3:]
        with pytest.raises(FrameDecodeError, match="trace-context flag"):
            decode_frame(header + b"\x67garbage")

    def test_data_with_truncated_ctx(self):
        header = encode_ack(1, 2, 3)[:2] + bytes([DATA]) + encode_ack(1, 2, 3)[3:]
        with pytest.raises(FrameDecodeError, match="trace context"):
            decode_frame(header + b"\x01" + b"\x00" * 4)

    def test_frame_error_is_wire_decode_error(self):
        """One except clause covers frames and LSAs alike."""
        assert issubclass(FrameDecodeError, WireDecodeError)

    def test_try_decode_returns_none(self):
        assert try_decode_frame(b"junk") is None
        assert try_decode_frame(encode_ack(1, 2, 3)) == AckFrame(1, 2, 3)

    @given(st.binary(min_size=0, max_size=96))
    @settings(max_examples=200, deadline=None)
    def test_fuzz_never_crashes_uncontrolled(self, blob):
        """Arbitrary bytes either decode or raise FrameDecodeError."""
        try:
            decode_frame(blob)
        except FrameDecodeError:
            pass

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_fuzz_corrupted_real_frames(self, suffix):
        """Mutations of real frames fail controlled (or decode, if benign)."""
        data = encode_data(3, 9, 42, sample_mc_lsa())
        for blob in (data[: len(data) // 2] + suffix, data + suffix):
            try:
                decode_frame(blob)
            except FrameDecodeError:
                pass

    def test_constants(self):
        from repro.core.wire import MAGIC

        assert FRAME_MAGIC != MAGIC  # frames must never alias raw LSAs
        assert DATA != ACK
