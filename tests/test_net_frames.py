"""Round-trip and fuzz tests for the live runtime's datagram framing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lsa import McEvent, McLsa
from repro.core.mc import Role
from repro.core.wire import WireDecodeError
from repro.lsr.lsa import NonMcLsa, RouterLsa
from repro.net.frames import (
    ACK,
    DATA,
    FRAME_MAGIC,
    AckFrame,
    DataFrame,
    FrameDecodeError,
    decode_frame,
    encode_ack,
    encode_data,
    try_decode_frame,
)
from repro.trees.base import McTopology, MulticastTree


def sample_mc_lsa() -> McLsa:
    topo = McTopology.shared(MulticastTree.build([(0, 1), (1, 2)], [0, 2]))
    return McLsa(3, McEvent.JOIN, 7, topo, (1, 0, 2, 0), Role.BOTH)


def sample_router_lsa() -> NonMcLsa:
    return NonMcLsa(2, RouterLsa(2, 17, ((0, 1.5, True), (5, 0.25, False))))


class TestRoundTrip:
    def test_data_with_mc_lsa(self):
        lsa = sample_mc_lsa()
        frame = decode_frame(encode_data(3, 9, 42, lsa))
        assert frame == DataFrame(3, 9, 42, lsa)

    def test_data_with_router_lsa(self):
        lsa = sample_router_lsa()
        frame = decode_frame(encode_data(2, 0, 1, lsa))
        assert frame == DataFrame(2, 0, 1, lsa)

    def test_ack(self):
        assert decode_frame(encode_ack(9, 3, 42)) == AckFrame(9, 3, 42)

    @given(
        src=st.integers(0, 2**16 - 1),
        dest=st.integers(0, 2**16 - 1),
        seq=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_ack_roundtrip_ranges(self, src, dest, seq):
        assert decode_frame(encode_ack(src, dest, seq)) == AckFrame(src, dest, seq)


class TestRobustness:
    def test_truncated_header(self):
        with pytest.raises(FrameDecodeError, match="truncated"):
            decode_frame(b"\xd7\x01")

    def test_bad_magic(self):
        data = bytearray(encode_ack(1, 2, 3))
        data[0] = 0x00
        with pytest.raises(FrameDecodeError, match="magic"):
            decode_frame(bytes(data))

    def test_lsa_magic_is_not_frame_magic(self):
        """A raw LSA accidentally fed to the frame decoder must not parse."""
        from repro.core.wire import encode_lsa

        with pytest.raises(FrameDecodeError, match="magic"):
            decode_frame(encode_lsa(sample_mc_lsa()))

    def test_bad_version(self):
        data = bytearray(encode_ack(1, 2, 3))
        data[1] = 99
        with pytest.raises(FrameDecodeError, match="version"):
            decode_frame(bytes(data))

    def test_unknown_type(self):
        data = bytearray(encode_ack(1, 2, 3))
        data[2] = 77
        with pytest.raises(FrameDecodeError, match="type"):
            decode_frame(bytes(data))

    def test_ack_with_trailing_bytes(self):
        with pytest.raises(FrameDecodeError, match="ACK"):
            decode_frame(encode_ack(1, 2, 3) + b"\x00")

    def test_data_with_garbage_payload(self):
        header = encode_ack(1, 2, 3)[:2] + bytes([DATA]) + encode_ack(1, 2, 3)[3:]
        with pytest.raises(FrameDecodeError, match="payload"):
            decode_frame(header + b"garbage")

    def test_frame_error_is_wire_decode_error(self):
        """One except clause covers frames and LSAs alike."""
        assert issubclass(FrameDecodeError, WireDecodeError)

    def test_try_decode_returns_none(self):
        assert try_decode_frame(b"junk") is None
        assert try_decode_frame(encode_ack(1, 2, 3)) == AckFrame(1, 2, 3)

    @given(st.binary(min_size=0, max_size=96))
    @settings(max_examples=200, deadline=None)
    def test_fuzz_never_crashes_uncontrolled(self, blob):
        """Arbitrary bytes either decode or raise FrameDecodeError."""
        try:
            decode_frame(blob)
        except FrameDecodeError:
            pass

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_fuzz_corrupted_real_frames(self, suffix):
        """Mutations of real frames fail controlled (or decode, if benign)."""
        data = encode_data(3, 9, 42, sample_mc_lsa())
        for blob in (data[: len(data) // 2] + suffix, data + suffix):
            try:
                decode_frame(blob)
            except FrameDecodeError:
                pass

    def test_constants(self):
        from repro.core.wire import MAGIC

        assert FRAME_MAGIC != MAGIC  # frames must never alias raw LSAs
        assert DATA != ACK
