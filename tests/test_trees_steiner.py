"""Tests for Steiner heuristics: validity, quality bound, determinism."""

from __future__ import annotations

import itertools
import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.lsr import spf
from repro.topo.generators import grid_network, random_connected_network, waxman_network
from repro.trees.base import TreeError, edge_weights
from repro.trees.steiner import kmb_steiner_tree, pruned_spt_steiner_tree


def optimal_steiner_cost(net, terminals):
    """Brute-force optimum by enumerating Steiner node subsets (tiny inputs)."""
    g = net.to_networkx()
    nodes = set(g.nodes)
    terminals = set(terminals)
    best = float("inf")
    others = sorted(nodes - terminals)
    for k in range(len(others) + 1):
        for extra in itertools.combinations(others, k):
            sub = g.subgraph(terminals | set(extra))
            if not nx.is_connected(sub):
                continue
            mst_cost = sum(
                d["delay"] for _, _, d in nx.minimum_spanning_edges(sub, weight="delay")
            )
            best = min(best, mst_cost)
    return best


class TestKmb:
    def test_spans_terminals(self, small_waxman):
        adj = spf.network_adjacency(small_waxman)
        tree = kmb_steiner_tree(adj, [0, 5, 10, 15])
        tree.validate([0, 5, 10, 15])

    def test_trivial_cases(self, small_waxman):
        adj = spf.network_adjacency(small_waxman)
        assert len(kmb_steiner_tree(adj, []).edges) == 0
        single = kmb_steiner_tree(adj, [3])
        assert len(single.edges) == 0
        assert single.members == frozenset({3})

    def test_two_terminals_is_shortest_path(self):
        net = grid_network(3, 3)
        adj = spf.network_adjacency(net)
        tree = kmb_steiner_tree(adj, [0, 8])
        assert len(tree.edges) == 4
        weights = edge_weights(adj)
        assert tree.cost(weights) == pytest.approx(4.0)

    def test_within_factor_two_of_optimal(self):
        rng = random.Random(11)
        for seed in range(5):
            net = random_connected_network(8, random.Random(seed))
            terminals = rng.sample(range(8), 4)
            adj = spf.network_adjacency(net)
            weights = edge_weights(adj)
            tree = kmb_steiner_tree(adj, terminals)
            opt = optimal_steiner_cost(net, terminals)
            assert tree.cost(weights) <= 2.0 * opt + 1e-9

    def test_no_worse_than_networkx_by_much(self, small_waxman):
        adj = spf.network_adjacency(small_waxman)
        weights = edge_weights(adj)
        terminals = [0, 4, 9, 13, 19]
        ours = kmb_steiner_tree(adj, terminals).cost(weights)
        g = small_waxman.to_networkx()
        theirs = nx.algorithms.approximation.steiner_tree(
            g, terminals, weight="delay"
        )
        theirs_cost = sum(d["delay"] for _, _, d in theirs.edges(data=True))
        assert ours <= 1.5 * theirs_cost + 1e-9

    def test_unreachable_terminal_raises(self):
        adj = {0: {1: 1.0}, 1: {0: 1.0}, 2: {}}
        with pytest.raises(TreeError):
            kmb_steiner_tree(adj, [0, 2])

    def test_deterministic(self, small_waxman):
        adj = spf.network_adjacency(small_waxman)
        a = kmb_steiner_tree(adj, [1, 6, 11, 16])
        b = kmb_steiner_tree(adj, [16, 11, 6, 1])
        assert a == b

    @given(st.integers(3, 25), st.integers(0, 300), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_always_a_valid_tree(self, n, seed, k):
        rng = random.Random(seed)
        net = random_connected_network(n, rng)
        adj = spf.network_adjacency(net)
        terminals = rng.sample(range(n), min(k, n))
        tree = kmb_steiner_tree(adj, terminals)
        tree.validate(terminals)
        assert tree.is_tree()


class TestPrunedSpt:
    def test_spans_terminals(self, small_waxman):
        adj = spf.network_adjacency(small_waxman)
        tree = pruned_spt_steiner_tree(adj, [2, 7, 12, 17])
        tree.validate([2, 7, 12, 17])
        assert tree.root is None

    def test_empty_terminals(self, small_waxman):
        adj = spf.network_adjacency(small_waxman)
        assert len(pruned_spt_steiner_tree(adj, []).edges) == 0

    def test_anchor_is_min_terminal(self):
        # determinism across switches depends on a fixed anchor; verify the
        # tree equals the SPT from min(terminals), pruned.
        net = grid_network(3, 3)
        adj = spf.network_adjacency(net)
        a = pruned_spt_steiner_tree(adj, [8, 2, 5])
        b = pruned_spt_steiner_tree(adj, [5, 8, 2])
        assert a == b

    def test_never_cheaper_than_kmb_by_much(self, small_waxman):
        # pruned-SPT is the cheap heuristic; sanity-check it is within a
        # small constant of KMB on typical graphs.
        adj = spf.network_adjacency(small_waxman)
        weights = edge_weights(adj)
        terminals = [0, 3, 8, 14, 19]
        spt_cost = pruned_spt_steiner_tree(adj, terminals).cost(weights)
        kmb_cost = kmb_steiner_tree(adj, terminals).cost(weights)
        assert spt_cost <= 3.0 * kmb_cost

    @given(st.integers(3, 25), st.integers(0, 300), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_always_a_valid_tree(self, n, seed, k):
        rng = random.Random(seed)
        net = random_connected_network(n, rng)
        adj = spf.network_adjacency(net)
        terminals = rng.sample(range(n), min(k, n))
        tree = pruned_spt_steiner_tree(adj, terminals)
        tree.validate(terminals)
        assert tree.is_tree()
