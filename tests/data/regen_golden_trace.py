"""Regenerate ``golden_trace.json`` from the two-join ring scenario.

Run from the repository root after an *intentional* change to the
instrumentation points (new spans, renamed categories, different
workload), then commit the refreshed file together with the change:

    PYTHONPATH=src python tests/data/regen_golden_trace.py

The file pins the deterministic projection of the traced scenario --
event names, categories, switch tids, and simulated timestamps in
emission order -- so accidental changes to what gets traced fail
``tests/test_obs.py::TestGoldenTrace``.
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))

from tests.test_obs import ring_deployment, traced_run  # noqa: E402


def main() -> None:
    tracer = traced_run(ring_deployment())
    events = tracer.events()
    projection = {
        "kernel_events": sum(1 for e in events if e.cat == "kernel"),
        "events": [
            [e.name, e.cat, e.tid, e.sim_ts] for e in events if e.cat != "kernel"
        ],
    }
    out = pathlib.Path(__file__).parent / "golden_trace.json"
    out.write_text(json.dumps(projection, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {len(projection['events'])} protocol events "
          f"(+{projection['kernel_events']} kernel) to {out}")


if __name__ == "__main__":
    main()
