"""Tests for the MC LSA format and its validation rules."""

from __future__ import annotations

import pytest

from repro.core.lsa import McEvent, McLsa
from repro.core.mc import Role
from repro.trees.base import McTopology, MulticastTree


def topo():
    return McTopology.shared(MulticastTree.build([(0, 1)], [0, 1]))


class TestValidation:
    def test_join_requires_role(self):
        with pytest.raises(ValueError, match="role"):
            McLsa(0, McEvent.JOIN, 1, None, (1, 0), role=None)

    def test_join_with_role_ok(self):
        lsa = McLsa(0, McEvent.JOIN, 1, None, (1, 0), role=Role.BOTH)
        assert lsa.is_event_lsa
        assert not lsa.is_triggered

    def test_non_join_rejects_role(self):
        with pytest.raises(ValueError, match="role"):
            McLsa(0, McEvent.LEAVE, 1, None, (1, 0), role=Role.BOTH)

    def test_triggered_requires_proposal(self):
        with pytest.raises(ValueError, match="proposal"):
            McLsa(0, McEvent.NONE, 1, None, (1, 0))

    def test_triggered_with_proposal_ok(self):
        lsa = McLsa(0, McEvent.NONE, 1, topo(), (1, 0))
        assert lsa.is_triggered
        assert not lsa.is_event_lsa


class TestFields:
    def test_flag_always_mc(self):
        lsa = McLsa(3, McEvent.LEAVE, 7, None, (0, 0, 0, 1))
        assert lsa.is_mc is True
        assert lsa.source == 3
        assert lsa.connection_id == 7

    def test_link_event_lsa(self):
        lsa = McLsa(2, McEvent.LINK, 1, topo(), (0, 0, 1))
        assert lsa.is_event_lsa
        assert lsa.proposal is not None

    def test_frozen(self):
        lsa = McLsa(0, McEvent.LEAVE, 1, None, (1,))
        with pytest.raises(AttributeError):
            lsa.source = 5

    def test_value_equality(self):
        a = McLsa(0, McEvent.LEAVE, 1, None, (1, 2))
        b = McLsa(0, McEvent.LEAVE, 1, None, (1, 2))
        assert a == b
