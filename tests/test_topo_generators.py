"""Tests for topology generators: connectivity, density, determinism."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.topo.generators import (
    dumbbell_network,
    grid_network,
    random_connected_network,
    ring_network,
    star_network,
    tree_network,
    waxman_network,
)
from repro.topo.validate import validate_network


class TestWaxman:
    def test_connected_and_valid(self, rng):
        net = waxman_network(50, rng)
        validate_network(net)

    def test_average_degree_near_target(self, rng):
        net = waxman_network(100, rng, target_degree=4.0)
        avg = 2.0 * net.link_count() / net.n
        assert 3.0 <= avg <= 5.0

    def test_deterministic_under_seed(self):
        a = waxman_network(30, random.Random(5))
        b = waxman_network(30, random.Random(5))
        assert [l.key for l in a.links()] == [l.key for l in b.links()]
        assert [l.delay for l in a.links()] == [l.delay for l in b.links()]

    def test_positions_recorded(self, rng):
        net = waxman_network(10, rng)
        assert len(net.positions) == 10
        for x, y in net.positions.values():
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_rejects_tiny(self, rng):
        with pytest.raises(ValueError):
            waxman_network(1, rng)

    @given(st.integers(2, 60), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_always_connected(self, n, seed):
        net = waxman_network(n, random.Random(seed))
        assert net.is_connected()


class TestRandomConnected:
    def test_connected_and_valid(self, rng):
        net = random_connected_network(40, rng)
        validate_network(net)

    def test_extra_links_bounded_by_complete_graph(self, rng):
        net = random_connected_network(5, rng, extra_links=100)
        assert net.link_count() <= 10

    def test_delay_range_respected(self, rng):
        net = random_connected_network(30, rng, delay_range=(2.0, 3.0))
        for link in net.links():
            assert 2.0 <= link.delay <= 3.0

    @given(st.integers(2, 50), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_always_connected(self, n, seed):
        net = random_connected_network(n, random.Random(seed))
        assert net.is_connected()


class TestStructured:
    def test_grid_shape(self):
        net = grid_network(3, 5)
        assert net.n == 15
        # interior degree 4, corner degree 2
        assert net.degree(0) == 2
        assert net.degree(7) == 4
        validate_network(net)

    def test_grid_rejects_empty(self):
        with pytest.raises(ValueError):
            grid_network(0, 3)

    def test_ring(self):
        net = ring_network(6)
        assert all(net.degree(x) == 2 for x in net.switches())
        assert net.diameter_hops() == 3
        with pytest.raises(ValueError):
            ring_network(2)

    def test_star(self):
        net = star_network(7)
        assert net.degree(0) == 6
        assert all(net.degree(x) == 1 for x in range(1, 7))
        with pytest.raises(ValueError):
            star_network(1)

    def test_tree_has_n_minus_one_links(self, rng):
        net = tree_network(25, rng)
        assert net.link_count() == 24
        assert net.is_connected()

    def test_dumbbell(self):
        net = dumbbell_network(4, bridge_delay=9.0)
        assert net.n == 8
        assert net.is_connected()
        assert net.link(3, 4).delay == 9.0
        # flooding diameter is dominated by the bridge
        assert net.flooding_diameter() >= 9.0
        with pytest.raises(ValueError):
            dumbbell_network(1)
