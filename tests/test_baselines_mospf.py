"""Tests for the MOSPF baseline: data-driven computations and caching."""

from __future__ import annotations

import pytest

from repro.baselines.mospf import MospfNetwork
from repro.topo.generators import grid_network, ring_network, waxman_network


def make(net=None, **kw):
    kw.setdefault("compute_time", 0.5)
    kw.setdefault("per_hop_delay", 0.05)
    return MospfNetwork(net or grid_network(3, 3), **kw)


class TestMembership:
    def test_membership_lsa_reaches_all_routers(self):
        mo = make()
        mo.inject_join(4, 1, at=1.0)
        mo.run()
        for x in range(9):
            assert mo.members_of(1, at_router=x) == frozenset({4})

    def test_leave_updates_member_lists(self):
        mo = make()
        mo.inject_join(4, 1, at=1.0)
        mo.inject_join(8, 1, at=2.0)
        mo.inject_leave(4, 1, at=3.0)
        mo.run()
        assert mo.members_of(1) == frozenset({8})

    def test_one_flood_per_event(self):
        mo = make()
        mo.inject_join(4, 1, at=1.0)
        mo.inject_leave(4, 1, at=2.0)
        mo.run()
        assert mo.mc_floodings() == 2


class TestDataDriven:
    def test_no_computation_without_traffic(self):
        mo = make()
        mo.inject_join(4, 1, at=1.0)
        mo.run()
        assert mo.total_computations == 0

    def test_datagram_triggers_computation_at_on_tree_routers(self):
        mo = make(net=grid_network(1, 4))  # line 0-1-2-3
        mo.inject_join(3, 1, at=1.0)
        mo.send_datagram(0, 1, at=10.0)
        mo.run()
        # the tree is 0-1-2-3: all four routers compute once
        assert mo.total_computations == 4
        assert mo.datagrams_delivered == 1

    def test_cache_suppresses_recomputation(self):
        mo = make(net=grid_network(1, 4))
        mo.inject_join(3, 1, at=1.0)
        mo.send_datagram(0, 1, at=10.0)
        mo.send_datagram(0, 1, at=20.0)
        mo.run()
        assert mo.total_computations == 4  # second datagram rides the cache
        assert mo.datagrams_delivered == 2

    def test_membership_change_invalidates_cache(self):
        mo = make(net=grid_network(1, 4))
        mo.inject_join(3, 1, at=1.0)
        mo.send_datagram(0, 1, at=10.0)
        mo.inject_join(2, 1, at=20.0)
        mo.send_datagram(0, 1, at=30.0)
        mo.run()
        # 4 computations for the first send, 4 more after the flush
        assert mo.total_computations == 8

    def test_per_source_caches_are_separate(self):
        mo = make(net=ring_network(4))
        mo.inject_join(2, 1, at=1.0)
        mo.send_datagram(0, 1, at=10.0)
        first = mo.total_computations
        mo.send_datagram(1, 1, at=20.0)
        mo.run()
        assert mo.total_computations > first  # source 1's tree is a new key

    def test_delivery_to_every_member(self, rng):
        net = waxman_network(20, rng)
        mo = MospfNetwork(net, compute_time=0.1, per_hop_delay=0.05)
        members = [3, 9, 15]
        for i, sw in enumerate(members):
            mo.inject_join(sw, 1, at=float(i + 1))
        mo.send_datagram(0, 1, at=50.0)
        mo.run()
        assert mo.datagrams_delivered == 3

    def test_sender_member_counts_as_delivered(self):
        mo = make(net=ring_network(4))
        mo.inject_join(0, 1, at=1.0)
        mo.inject_join(2, 1, at=2.0)
        mo.send_datagram(0, 1, at=10.0)
        mo.run()
        assert mo.datagrams_delivered == 2  # 0 (local) and 2
