"""Tests for named random streams."""

from __future__ import annotations

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "topology") == derive_seed(42, "topology")

    def test_label_sensitivity(self):
        assert derive_seed(42, "topology") != derive_seed(42, "events")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_64_bit_range(self):
        s = derive_seed(123, "anything")
        assert 0 <= s < 2**64


class TestRegistry:
    def test_same_label_same_stream_object(self):
        reg = RngRegistry(0)
        assert reg.stream("a") is reg.stream("a")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(7).stream("events")
        b = RngRegistry(7).stream("events")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_independent(self):
        reg = RngRegistry(7)
        a = reg.stream("a")
        b = reg.stream("b")
        fresh = RngRegistry(7).stream("a")
        seq_a_alone = [fresh.random() for _ in range(5)]
        # Interleaving draws from b must not perturb a's sequence.
        seq_a_interleaved = []
        for _ in range(5):
            b.random()
            seq_a_interleaved.append(a.random())
        assert seq_a_interleaved == seq_a_alone

    def test_fork_changes_streams(self):
        parent = RngRegistry(7)
        child = parent.fork("trial-1")
        assert child.root_seed != parent.root_seed
        assert child.stream("x").random() != parent.stream("x").random()

    def test_fork_deterministic(self):
        a = RngRegistry(7).fork("t")
        b = RngRegistry(7).fork("t")
        assert a.root_seed == b.root_seed
