"""Tests for tree/topology value objects."""

from __future__ import annotations

import pytest

from repro.trees.base import (
    SHARED,
    McTopology,
    MulticastTree,
    TreeError,
    canonical_edge,
    canonical_edges,
    edge_weights,
)


class TestCanonical:
    def test_edge_sorted(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_edges_deduplicated(self):
        assert canonical_edges([(1, 2), (2, 1)]) == frozenset({(1, 2)})


class TestMulticastTree:
    def path_tree(self):
        return MulticastTree.build([(0, 1), (1, 2), (2, 3)], members=[0, 3])

    def test_nodes_include_isolated_members(self):
        tree = MulticastTree.build([(0, 1)], members=[0, 1, 9])
        assert tree.nodes() == frozenset({0, 1, 9})

    def test_degree(self):
        tree = self.path_tree()
        assert tree.degree(1) == 2
        assert tree.degree(0) == 1
        assert tree.degree(9) == 0

    def test_cost(self):
        tree = self.path_tree()
        weights = {(0, 1): 1.0, (1, 2): 2.0, (2, 3): 4.0}
        assert tree.cost(weights) == pytest.approx(7.0)

    def test_is_tree_accepts_tree(self):
        assert self.path_tree().is_tree()

    def test_is_tree_rejects_cycle(self):
        cyclic = MulticastTree.build([(0, 1), (1, 2), (0, 2)], members=[0])
        assert not cyclic.is_tree()

    def test_is_tree_rejects_forest(self):
        forest = MulticastTree.build([(0, 1), (2, 3)], members=[0, 3])
        assert not forest.is_tree()

    def test_empty_tree_is_tree(self):
        assert MulticastTree.empty([5]).is_tree()

    def test_spans(self):
        tree = self.path_tree()
        assert tree.spans([0, 3])
        assert tree.spans([0, 1, 2, 3])
        assert not tree.spans([0, 9])

    def test_single_member_always_spanned(self):
        assert MulticastTree.empty([4]).spans([4])

    def test_validate_raises_on_cycle(self):
        cyclic = MulticastTree.build([(0, 1), (1, 2), (0, 2)], members=[0, 2])
        with pytest.raises(TreeError, match="cycle"):
            cyclic.validate()

    def test_validate_raises_on_missing_member(self):
        tree = MulticastTree.build([(0, 1)], members=[0, 1, 7])
        with pytest.raises(TreeError, match="span"):
            tree.validate()

    def test_validate_against_explicit_members(self):
        tree = self.path_tree()
        tree.validate([0, 2])
        with pytest.raises(TreeError):
            tree.validate([0, 8])

    def test_with_members(self):
        tree = self.path_tree().with_members([1, 2])
        assert tree.members == frozenset({1, 2})

    def test_value_equality_and_hash(self):
        a = MulticastTree.build([(0, 1)], [0, 1])
        b = MulticastTree.build([(1, 0)], [1, 0])
        assert a == b
        assert hash(a) == hash(b)

    def test_len_counts_edges(self):
        assert len(self.path_tree()) == 3


class TestMcTopology:
    def test_shared_roundtrip(self):
        tree = MulticastTree.build([(0, 1)], [0, 1])
        topo = McTopology.shared(tree)
        assert topo.shared_tree == tree
        assert topo.tree_map() == {SHARED: tree}

    def test_per_source(self):
        t1 = MulticastTree.build([(0, 1)], [0, 1], root=0)
        t2 = MulticastTree.build([(1, 2)], [1, 2], root=2)
        topo = McTopology.per_source({2: t2, 0: t1})
        assert [k for k, _ in topo.trees] == [0, 2]  # sorted
        assert topo.shared_tree is None

    def test_all_edges_union(self):
        t1 = MulticastTree.build([(0, 1), (1, 2)], [0, 2], root=0)
        t2 = MulticastTree.build([(1, 2), (2, 3)], [1, 3], root=3)
        topo = McTopology.per_source({0: t1, 3: t2})
        assert topo.all_edges() == frozenset({(0, 1), (1, 2), (2, 3)})

    def test_total_cost_sums_trees(self):
        t1 = MulticastTree.build([(0, 1)], [0, 1], root=0)
        t2 = MulticastTree.build([(0, 1)], [0, 1], root=1)
        topo = McTopology.per_source({0: t1, 1: t2})
        assert topo.total_cost({(0, 1): 3.0}) == pytest.approx(6.0)

    def test_empty(self):
        assert McTopology.empty().trees == ()
        assert McTopology.empty().all_edges() == frozenset()

    def test_value_equality(self):
        t = MulticastTree.build([(0, 1)], [0, 1])
        assert McTopology.shared(t) == McTopology.shared(t)


class TestEdgeWeights:
    def test_from_adjacency(self):
        adj = {0: {1: 2.0}, 1: {0: 2.0, 2: 3.0}, 2: {1: 3.0}}
        assert edge_weights(adj) == {(0, 1): 2.0, (1, 2): 3.0}
