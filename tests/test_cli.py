"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestHelp:
    """The console entry point must answer --help for every command."""

    def test_top_level_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "command", ["figures", "compare", "trace", "profile", "hierarchy", "live"]
    )
    def test_subcommand_help_exits_zero(self, command, capsys):
        with pytest.raises(SystemExit) as exc:
            main([command, "--help"])
        assert exc.value.code == 0
        assert command in capsys.readouterr().out

    def test_help_lists_every_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for command in ("figures", "compare", "trace", "profile", "hierarchy", "live"):
            assert command in out


class TestCommands:
    def test_trace_runs_and_agrees(self, capsys):
        assert main(["--seed", "3", "trace", "--switches", "10", "--members", "3"]) == 0
        out = capsys.readouterr().out
        assert "agreement: True" in out
        assert "convergence profile" in out
        assert "flood" in out

    def test_hierarchy_runs(self, capsys):
        code = main(
            ["--seed", "5", "hierarchy", "--areas", "3", "--area-size", "8",
             "--members", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hierarchy scopes away" in out
        assert "spans all members: True" in out

    def test_compare_quick(self, capsys):
        assert main(["compare", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "MOSPF" in out and "brute-force" in out

    def test_figures_quick(self, capsys):
        assert main(["figures", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out and "Figure 8" in out
        assert " NO" not in out
