"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestHelp:
    """The console entry point must answer --help for every command."""

    def test_top_level_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "command",
        ["figures", "compare", "trace", "profile", "hierarchy", "live",
         "chaos", "stress", "dataplane"],
    )
    def test_subcommand_help_exits_zero(self, command, capsys):
        with pytest.raises(SystemExit) as exc:
            main([command, "--help"])
        assert exc.value.code == 0
        assert command in capsys.readouterr().out

    def test_help_lists_every_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for command in ("figures", "compare", "trace", "profile", "hierarchy",
                        "live", "chaos", "stress", "dataplane"):
            assert command in out


class TestCommands:
    def test_trace_runs_and_agrees(self, capsys):
        assert main(["--seed", "3", "trace", "--switches", "10", "--members", "3"]) == 0
        out = capsys.readouterr().out
        assert "agreement: True" in out
        assert "convergence profile" in out
        assert "flood" in out

    def test_hierarchy_runs(self, capsys):
        code = main(
            ["--seed", "5", "hierarchy", "--areas", "3", "--area-size", "8",
             "--members", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hierarchy scopes away" in out
        assert "spans all members: True" in out

    def test_compare_quick(self, capsys):
        assert main(["compare", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "MOSPF" in out and "brute-force" in out

    def test_figures_quick(self, capsys):
        assert main(["figures", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out and "Figure 8" in out
        assert " NO" not in out


class TestDataplaneCommand:
    def test_runs_and_checks_equivalence(self, capsys, tmp_path):
        metrics = tmp_path / "dataplane.prom"
        code = main(
            ["dataplane", "--switches", "12", "--groups", "20",
             "--phases", "1", "--events", "4", "--batches", "1",
             "--batch-size", "32", "--reference-sample", "16",
             "--mospf", "--metrics", str(metrics)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "deliveries identical to reference: True" in out
        assert "speedup" in out
        assert "MOSPF baseline" in out
        text = metrics.read_text()
        assert "dataplane_packets_total 32" in text
        assert "dataplane_batches_total" in text

    def test_reference_sample_zero_skips_check(self, capsys):
        code = main(
            ["dataplane", "--switches", "10", "--groups", "10",
             "--phases", "1", "--events", "2", "--batches", "1",
             "--batch-size", "16", "--reference-sample", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reference engine" not in out


class TestStressCommand:
    def test_list_scenarios(self, capsys):
        assert main(["stress", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("membership-race", "degraded-repair", "triple-conflict",
                     "ring4-churn", "mesh5-link-storm"):
            assert name in out

    def test_clean_run_exits_zero(self, capsys, tmp_path):
        metrics = tmp_path / "stress.prom"
        code = main(
            ["stress", "--scenario", "membership-race",
             "--require-exhaustive", "--metrics", str(metrics)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no counterexamples" in out
        assert "FAILED" not in out
        text = metrics.read_text()
        assert "stress_states_total" in text
        assert "stress_pruned_total" in text
        assert "stress_exhaustive 1" in text

    def test_violation_exits_nonzero_and_names_invariant(self, capsys):
        code = main(
            ["stress", "--scenario", "membership-race", "--disable-m-vector"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "COUNTEREXAMPLE agreement" in out
        assert "FAILED invariant: agreement" in out

    def test_expect_counterexample_inverts_exit_code(self, capsys, tmp_path):
        code = main(
            ["stress", "--scenario", "degraded-repair",
             "--disable-degraded-repair", "--expect-counterexample",
             "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "expected counterexample found (spans)" in out
        written = list(tmp_path.glob("*.json"))
        assert len(written) == 1

    def test_replay_committed_counterexample(self, capsys):
        import glob
        import os

        path = sorted(
            glob.glob(
                os.path.join(
                    os.path.dirname(__file__), "data", "stress", "*.json"
                )
            )
        )[0]
        code = main(["stress", "--replay", path])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED invariant:" in out

    def test_budget_violation_fails_require_exhaustive(self, capsys):
        code = main(
            ["stress", "--scenario", "membership-race", "--budget", "10",
             "--require-exhaustive"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED exhaustiveness" in out


class TestChaosCommand:
    def test_violations_name_their_invariant(self, capsys, monkeypatch):
        from repro.net import chaos as chaos_mod
        from repro.net.chaos import ChaosReport, ChaosSettings

        report = ChaosReport(
            settings=ChaosSettings(switches=4, seed=1, actions=1),
            schedule=["crash 0"],
            checks=2,
            violations=["final: agreement: member list mismatch"],
            violation_names=["agreement"],
        )
        monkeypatch.setattr(
            chaos_mod, "run_chaos_soak_sync", lambda settings: report
        )
        code = main(
            ["chaos", "--switches", "4", "--actions", "1", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED invariant: agreement" in out

    def test_clean_soak_exits_zero(self, capsys, monkeypatch):
        from repro.net import chaos as chaos_mod
        from repro.net.chaos import ChaosReport, ChaosSettings

        report = ChaosReport(
            settings=ChaosSettings(switches=4, seed=1, actions=1),
            schedule=["join 1"],
            checks=2,
        )
        monkeypatch.setattr(
            chaos_mod, "run_chaos_soak_sync", lambda settings: report
        )
        code = main(
            ["chaos", "--switches", "4", "--actions", "1", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "FAILED" not in out
