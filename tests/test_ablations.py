"""Tests for the protocol-guard ablation knobs (DESIGN.md §5).

The full quantitative study lives in ``benchmarks/bench_ablations.py``;
these tests pin the qualitative facts: every ablated variant still
converges and agrees (the guards are optimizations, not correctness
requirements), and each guard measurably reduces the overhead it targets.
"""

from __future__ import annotations

import random

import pytest

from repro.core import DgmcNetwork, JoinEvent, ProtocolConfig
from repro.topo.generators import waxman_network
from repro.verify import verify_deployment


def run_burst(seed: int, **flags):
    rng = random.Random(seed)
    net = waxman_network(25, rng)
    dgmc = DgmcNetwork(
        net, ProtocolConfig(compute_time=1.0, per_hop_delay=0.05, **flags)
    )
    dgmc.register_symmetric(1)
    members = rng.sample(range(25), 8)
    for i, sw in enumerate(members):
        dgmc.inject(JoinEvent(sw, 1), at=1.0 + 0.8 * i)
    dgmc.run()
    verify_deployment(dgmc, 1, expect_members=frozenset(members))
    return dgmc


@pytest.mark.parametrize(
    "flags",
    [
        {"ablate_withdrawal": True},
        {"ablate_rc_gate": True},
        {"ablate_re_gate": True},
        {"ablate_withdrawal": True, "ablate_rc_gate": True, "ablate_re_gate": True},
    ],
)
def test_ablated_variants_still_converge(flags):
    for seed in (1, 2):
        run_burst(seed, **flags)  # verify_deployment raises on any violation


def test_withdrawal_reduces_floodings():
    totals = {True: 0, False: 0}
    for seed in range(4):
        for ablated in (False, True):
            dgmc = run_burst(seed, ablate_withdrawal=ablated)
            totals[ablated] += dgmc.mc_floodings()
    assert totals[True] >= totals[False]


def test_rc_gate_reduces_computations():
    totals = {True: 0, False: 0}
    for seed in range(4):
        for ablated in (False, True):
            dgmc = run_burst(seed, ablate_rc_gate=ablated)
            totals[ablated] += dgmc.total_computations()
    assert totals[True] >= totals[False]
