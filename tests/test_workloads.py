"""Tests for workload generation: feasibility, spacing, validation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.membership import (
    MembershipSchedule,
    ScheduledEvent,
    bursty_schedule,
    sparse_schedule,
)
from repro.workloads.scenario import Scenario
from repro.workloads.traffic import datagram_schedule_after_events
from repro.topo.generators import grid_network


class TestBursty:
    def test_events_inside_window(self, rng):
        sched = bursty_schedule(20, rng, count=10, window=2.0, start=5.0)
        assert len(sched.events) == 10
        for ev in sched.events:
            assert 5.0 <= ev.time <= 7.0

    def test_chronological(self, rng):
        sched = bursty_schedule(20, rng, count=15, window=1.0)
        times = [ev.time for ev in sched.events]
        assert times == sorted(times)

    def test_validate_passes(self, rng):
        bursty_schedule(10, rng, count=8, window=1.0).validate()

    def test_initial_members_respected(self, rng):
        init = frozenset({1, 2, 3})
        sched = bursty_schedule(20, rng, count=5, initial_members=init)
        assert sched.initial_members == init
        sched.validate()

    @given(st.integers(2, 30), st.integers(0, 500), st.integers(1, 25))
    @settings(max_examples=30, deadline=None)
    def test_always_feasible(self, n, seed, count):
        sched = bursty_schedule(n, random.Random(seed), count=count)
        sched.validate()  # raises on infeasibility


class TestSparse:
    def test_mean_gap_roughly_respected(self, rng):
        sched = sparse_schedule(30, rng, count=200, mean_gap=10.0)
        gaps = [
            b.time - a.time for a, b in zip(sched.events, sched.events[1:])
        ]
        mean = sum(gaps) / len(gaps)
        assert 7.0 < mean < 13.0

    def test_validate_passes(self, rng):
        sparse_schedule(15, rng, count=30).validate()

    @given(st.integers(2, 20), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_always_feasible(self, n, seed):
        sparse_schedule(n, random.Random(seed), count=15).validate()


class TestScheduleModel:
    def test_final_members(self):
        sched = MembershipSchedule(
            frozenset({0}),
            [
                ScheduledEvent(1.0, 1, True),
                ScheduledEvent(2.0, 2, True),
                ScheduledEvent(3.0, 0, False),
            ],
        )
        assert sched.final_members() == frozenset({1, 2})
        assert sched.span == 3.0

    def test_validate_rejects_double_join(self):
        sched = MembershipSchedule(
            frozenset({0}),
            [ScheduledEvent(1.0, 1, True), ScheduledEvent(2.0, 1, True)],
        )
        with pytest.raises(ValueError, match="joins twice"):
            sched.validate()

    def test_validate_rejects_absent_leave(self):
        sched = MembershipSchedule(
            frozenset({0}), [ScheduledEvent(1.0, 5, False)]
        )
        with pytest.raises(ValueError, match="absent"):
            sched.validate()

    def test_validate_rejects_emptying(self):
        sched = MembershipSchedule(
            frozenset({0}), [ScheduledEvent(1.0, 0, False)]
        )
        with pytest.raises(ValueError, match="empties"):
            sched.validate()

    def test_validate_rejects_disorder(self):
        sched = MembershipSchedule(
            frozenset({0}),
            [ScheduledEvent(2.0, 1, True), ScheduledEvent(1.0, 2, True)],
        )
        with pytest.raises(ValueError, match="order"):
            sched.validate()

    def test_empty_schedule(self):
        sched = MembershipSchedule(frozenset({0}), [])
        assert sched.span == 0.0
        sched.validate()


class TestTraffic:
    def test_one_datagram_per_sender_per_event(self):
        sched = MembershipSchedule(
            frozenset({0}),
            [ScheduledEvent(1.0, 1, True), ScheduledEvent(5.0, 2, True)],
        )
        sends = datagram_schedule_after_events(sched, senders=[0, 1], gap=0.5)
        assert sends == [(1.5, 0), (1.5, 1), (5.5, 0), (5.5, 1)]

    def test_senders_deduplicated_and_sorted(self):
        sched = MembershipSchedule(
            frozenset({0}), [ScheduledEvent(1.0, 1, True)]
        )
        sends = datagram_schedule_after_events(sched, senders=[2, 0, 2], gap=1.0)
        assert [s for _, s in sends] == [0, 2]


class TestScenario:
    def test_round_length(self):
        net = grid_network(1, 4)
        sched = MembershipSchedule(frozenset({0}), [])
        sc = Scenario(
            net=net, schedule=sched, compute_time=2.0, per_hop_delay=1.0
        )
        assert sc.flooding_diameter() == pytest.approx(3.0)
        assert sc.round_length == pytest.approx(5.0)

    def test_describe_mentions_key_facts(self):
        net = grid_network(1, 4)
        sched = MembershipSchedule(frozenset({0}), [])
        sc = Scenario(net=net, schedule=sched, label="demo")
        text = sc.describe()
        assert "demo" in text and "n=4" in text
