"""Tests for workload generation: feasibility, spacing, validation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.membership import (
    MembershipSchedule,
    ScheduledEvent,
    bursty_schedule,
    sparse_schedule,
)
from repro.workloads.scenario import Scenario
from repro.workloads.traffic import datagram_schedule_after_events
from repro.topo.generators import grid_network


class TestBursty:
    def test_events_inside_window(self, rng):
        sched = bursty_schedule(20, rng, count=10, window=2.0, start=5.0)
        assert len(sched.events) == 10
        for ev in sched.events:
            assert 5.0 <= ev.time <= 7.0

    def test_chronological(self, rng):
        sched = bursty_schedule(20, rng, count=15, window=1.0)
        times = [ev.time for ev in sched.events]
        assert times == sorted(times)

    def test_validate_passes(self, rng):
        bursty_schedule(10, rng, count=8, window=1.0).validate()

    def test_initial_members_respected(self, rng):
        init = frozenset({1, 2, 3})
        sched = bursty_schedule(20, rng, count=5, initial_members=init)
        assert sched.initial_members == init
        sched.validate()

    @given(st.integers(2, 30), st.integers(0, 500), st.integers(1, 25))
    @settings(max_examples=30, deadline=None)
    def test_always_feasible(self, n, seed, count):
        sched = bursty_schedule(n, random.Random(seed), count=count)
        sched.validate()  # raises on infeasibility


class TestSparse:
    def test_mean_gap_roughly_respected(self, rng):
        sched = sparse_schedule(30, rng, count=200, mean_gap=10.0)
        gaps = [
            b.time - a.time for a, b in zip(sched.events, sched.events[1:])
        ]
        mean = sum(gaps) / len(gaps)
        assert 7.0 < mean < 13.0

    def test_validate_passes(self, rng):
        sparse_schedule(15, rng, count=30).validate()

    @given(st.integers(2, 20), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_always_feasible(self, n, seed):
        sparse_schedule(n, random.Random(seed), count=15).validate()


class TestScheduleModel:
    def test_final_members(self):
        sched = MembershipSchedule(
            frozenset({0}),
            [
                ScheduledEvent(1.0, 1, True),
                ScheduledEvent(2.0, 2, True),
                ScheduledEvent(3.0, 0, False),
            ],
        )
        assert sched.final_members() == frozenset({1, 2})
        assert sched.span == 3.0

    def test_validate_rejects_double_join(self):
        sched = MembershipSchedule(
            frozenset({0}),
            [ScheduledEvent(1.0, 1, True), ScheduledEvent(2.0, 1, True)],
        )
        with pytest.raises(ValueError, match="joins twice"):
            sched.validate()

    def test_validate_rejects_absent_leave(self):
        sched = MembershipSchedule(
            frozenset({0}), [ScheduledEvent(1.0, 5, False)]
        )
        with pytest.raises(ValueError, match="absent"):
            sched.validate()

    def test_validate_rejects_emptying(self):
        sched = MembershipSchedule(
            frozenset({0}), [ScheduledEvent(1.0, 0, False)]
        )
        with pytest.raises(ValueError, match="empties"):
            sched.validate()

    def test_validate_rejects_disorder(self):
        sched = MembershipSchedule(
            frozenset({0}),
            [ScheduledEvent(2.0, 1, True), ScheduledEvent(1.0, 2, True)],
        )
        with pytest.raises(ValueError, match="order"):
            sched.validate()

    def test_empty_schedule(self):
        sched = MembershipSchedule(frozenset({0}), [])
        assert sched.span == 0.0
        sched.validate()


class TestTraffic:
    def test_one_datagram_per_sender_per_event(self):
        sched = MembershipSchedule(
            frozenset({0}),
            [ScheduledEvent(1.0, 1, True), ScheduledEvent(5.0, 2, True)],
        )
        sends = datagram_schedule_after_events(sched, senders=[0, 1], gap=0.5)
        assert sends == [(1.5, 0), (1.5, 1), (5.5, 0), (5.5, 1)]

    def test_senders_deduplicated_and_sorted(self):
        sched = MembershipSchedule(
            frozenset({0}), [ScheduledEvent(1.0, 1, True)]
        )
        sends = datagram_schedule_after_events(sched, senders=[2, 0, 2], gap=1.0)
        assert [s for _, s in sends] == [0, 2]


class TestScenario:
    def test_round_length(self):
        net = grid_network(1, 4)
        sched = MembershipSchedule(frozenset({0}), [])
        sc = Scenario(
            net=net, schedule=sched, compute_time=2.0, per_hop_delay=1.0
        )
        assert sc.flooding_diameter() == pytest.approx(3.0)
        assert sc.round_length == pytest.approx(5.0)

    def test_describe_mentions_key_facts(self):
        net = grid_network(1, 4)
        sched = MembershipSchedule(frozenset({0}), [])
        sc = Scenario(net=net, schedule=sched, label="demo")
        text = sc.describe()
        assert "demo" in text and "n=4" in text


class TestZipfWeights:
    def test_normalized_and_monotone(self):
        from repro.workloads.zipf import zipf_weights

        weights = zipf_weights(50, 1.1)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)

    def test_rejects_empty(self):
        from repro.workloads.zipf import zipf_weights

        with pytest.raises(ValueError):
            zipf_weights(0, 1.1)


class TestZipfWorkload:
    def test_generated_workload_is_feasible(self, rng):
        from repro.workloads.zipf import zipf_churn_workload

        workload = zipf_churn_workload(20, 50, rng)
        workload.validate()  # raises on infeasibility
        assert workload.total_packets == workload.total_batches * 256
        assert workload.total_events > 0

    def test_popularity_drives_initial_size(self, rng):
        from repro.workloads.zipf import zipf_churn_workload

        workload = zipf_churn_workload(
            20, 50, rng, max_initial_members=12
        )
        members = workload.initial_members()
        assert len(members[0]) == 12  # rank 0 gets the max
        assert len(members[49]) == 2  # the tail gets the floor
        assert all(len(m) >= 2 for m in members.values())

    def test_validate_rejects_infeasible(self):
        from repro.workloads.zipf import (
            ChurnPhase,
            GroupEvent,
            PacketBatch,
            ZipfWorkload,
        )

        workload = ZipfWorkload(
            n=5,
            groups=1,
            s=1.1,
            initial=((0, (1, 2)),),
            phases=(
                ChurnPhase(
                    events=(GroupEvent(0, 1, join=True),),  # already present
                    batches=(PacketBatch(((1, 0),)),),
                ),
            ),
        )
        with pytest.raises(ValueError):
            workload.validate()

    def test_validate_rejects_non_member_source(self):
        from repro.workloads.zipf import ChurnPhase, PacketBatch, ZipfWorkload

        workload = ZipfWorkload(
            n=5,
            groups=1,
            s=1.1,
            initial=((0, (1, 2)),),
            phases=(
                ChurnPhase(events=(), batches=(PacketBatch(((4, 0),)),)),
            ),
        )
        with pytest.raises(ValueError):
            workload.validate()

    @given(st.integers(4, 25), st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_always_feasible(self, n, seed):
        from repro.workloads.zipf import zipf_churn_workload

        workload = zipf_churn_workload(
            n, 20, random.Random(seed), phases=2, events_per_phase=10,
            batches_per_phase=2, batch_size=16,
        )
        workload.validate()


class TestConvergedGroups:
    def _deployment(self, n=10):
        from repro.core import DgmcNetwork, ProtocolConfig
        from repro.topo.generators import ring_network

        return DgmcNetwork(
            ring_network(n),
            ProtocolConfig(compute_time=0.5, per_hop_delay=0.05),
        )

    def test_seed_installs_shared_state_everywhere(self, rng):
        from repro.workloads.zipf import ConvergedGroups, zipf_churn_workload

        dgmc = self._deployment()
        workload = zipf_churn_workload(
            10, 5, rng, phases=1, events_per_phase=4, batches_per_phase=1,
            batch_size=8,
        )
        ConvergedGroups(dgmc).seed(workload)
        for g, members in workload.initial:
            state = dgmc.switches[0].states[g]
            assert state.installed is not None
            assert state.member_set == frozenset(members)
            # one shared object across all switches, by construction
            assert all(
                dgmc.switches[x].states[g] is state for x in range(10)
            )
        assert len(dgmc.install_log) == 5

    def test_apply_churn_records_install(self, rng):
        from repro.workloads.zipf import ConvergedGroups, zipf_churn_workload

        dgmc = self._deployment()
        workload = zipf_churn_workload(
            10, 5, rng, phases=1, events_per_phase=6, batches_per_phase=1,
            batch_size=8,
        )
        seeder = ConvergedGroups(dgmc)
        seeder.seed(workload)
        log0 = len(dgmc.install_log)
        event = workload.phases[0].events[0]
        before = dgmc.switches[0].states[event.group].member_set
        seeder.apply(event)
        after = dgmc.switches[0].states[event.group].member_set
        assert (event.switch in after) == event.join
        assert after != before
        assert len(dgmc.install_log) == log0 + 1

    def test_seed_rejects_size_mismatch(self, rng):
        from repro.workloads.zipf import ConvergedGroups, zipf_churn_workload

        dgmc = self._deployment(n=10)
        workload = zipf_churn_workload(12, 3, rng)
        with pytest.raises(ValueError):
            ConvergedGroups(dgmc).seed(workload)


class TestReplayWorkload:
    def test_replay_is_reference_identical(self, rng):
        from repro.workloads.zipf import replay_workload, zipf_churn_workload
        from repro.topo.generators import waxman_network
        from repro.core import DgmcNetwork, ProtocolConfig

        net = waxman_network(15, rng)
        dgmc = DgmcNetwork(
            net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
        )
        workload = zipf_churn_workload(
            15, 10, rng, phases=2, events_per_phase=6, batches_per_phase=2,
            batch_size=32,
        )
        result = replay_workload(
            dgmc, workload, hop_delay=0.05, reference_sample=40
        )
        assert result.packets == workload.total_packets
        assert result.reference_packets == 40
        assert result.identical_deliveries
        assert result.mismatches == []
        assert result.batched_report.packets == result.packets
        assert result.latencies()  # deliveries happened and were stamped

    def test_mospf_contrast_counts_computations(self, rng):
        from repro.workloads.zipf import mospf_contrast, zipf_churn_workload
        from repro.topo.generators import waxman_network

        net = waxman_network(10, rng)
        workload = zipf_churn_workload(
            10, 5, rng, phases=1, events_per_phase=4, batches_per_phase=1,
            batch_size=16,
        )
        contrast = mospf_contrast(
            net, workload, compute_time=0.5, per_hop_delay=0.05
        )
        assert contrast["datagrams"] == 16
        assert contrast["tree_computations"] > 0
        assert contrast["computations_per_datagram"] > 0
        assert contrast["delivered"] > 0
