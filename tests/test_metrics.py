"""Tests for trial metrics and cross-trial aggregation."""

from __future__ import annotations

import pytest

from repro.metrics.collector import TrialMetrics
from repro.metrics.convergence import convergence_rounds
from repro.metrics.stats import Aggregate, aggregate, aggregate_metric


class TestTrialMetrics:
    def make(self, **kw):
        defaults = dict(
            events=10,
            computations=25,
            floodings=15,
            first_event_time=100.0,
            last_install_time=150.0,
            round_length=10.0,
        )
        defaults.update(kw)
        return TrialMetrics(**defaults)

    def test_per_event_ratios(self):
        m = self.make()
        assert m.computations_per_event == pytest.approx(2.5)
        assert m.floodings_per_event == pytest.approx(1.5)

    def test_zero_events_gives_zero_ratios(self):
        m = self.make(events=0)
        assert m.computations_per_event == 0.0
        assert m.floodings_per_event == 0.0

    def test_convergence(self):
        m = self.make()
        assert m.convergence_time == pytest.approx(50.0)
        assert m.convergence_rounds == pytest.approx(5.0)

    def test_convergence_never_negative(self):
        m = self.make(last_install_time=50.0)  # installed before the burst
        assert m.convergence_time == 0.0

    def test_zero_round_length(self):
        m = self.make(round_length=0.0)
        assert m.convergence_rounds == 0.0


class TestConvergenceRounds:
    def test_basic(self):
        assert convergence_rounds(0.0, 30.0, 5.0, 5.0) == pytest.approx(3.0)

    def test_clamped_at_zero(self):
        assert convergence_rounds(10.0, 5.0, 1.0, 1.0) == 0.0

    def test_zero_round_rejected(self):
        with pytest.raises(ValueError):
            convergence_rounds(0.0, 1.0, 0.0, 0.0)


class TestAggregate:
    def test_known_sample(self):
        agg = aggregate([1.0, 2.0, 3.0, 4.0, 5.0])
        assert agg.mean == pytest.approx(3.0)
        assert agg.count == 5
        assert agg.minimum == 1.0
        assert agg.maximum == 5.0
        assert agg.low < 3.0 < agg.high
        assert agg.low == pytest.approx(agg.mean - agg.halfwidth)

    def test_empty(self):
        agg = aggregate([])
        assert agg.count == 0
        assert agg.mean == 0.0

    def test_singleton_has_zero_halfwidth(self):
        agg = aggregate([7.0])
        assert agg.halfwidth == 0.0

    def test_str_mentions_mean_and_n(self):
        text = str(aggregate([1.0, 2.0]))
        assert "n=2" in text

    def test_aggregate_metric(self):
        trials = [
            TrialMetrics(events=2, computations=4, floodings=2),
            TrialMetrics(events=2, computations=8, floodings=2),
        ]
        agg = aggregate_metric(trials, lambda t: t.computations_per_event)
        assert agg.mean == pytest.approx(3.0)

    def test_ci_contains_true_mean_usually(self):
        # sanity on the Student-t path: CI of a tight sample is tight
        agg = aggregate([10.0, 10.1, 9.9, 10.0, 10.05, 9.95])
        assert agg.halfwidth < 0.2
