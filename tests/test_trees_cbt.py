"""Tests for core selection and core-based trees."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lsr import spf
from repro.topo.generators import grid_network, random_connected_network, star_network
from repro.trees.base import TreeError, edge_weights
from repro.trees.cbt import core_based_tree, select_core


def grid_adj():
    return spf.network_adjacency(grid_network(3, 3))


class TestSelectCore:
    def test_median_on_line(self):
        # line 0-1-2-3-4 with members {0, 1, 4}: node 1 minimizes the sum
        # of distances (0+1+3 = 4).
        adj = spf.network_adjacency(grid_network(1, 5))
        core = select_core(adj, [0, 1, 4], strategy="member-median")
        assert core == 1

    def test_median_breaks_ties_to_smallest_id(self):
        # all nodes of a 3x3 grid have total distance 8 to the four
        # corners; the tie-break picks switch 0.
        core = select_core(grid_adj(), [0, 2, 6, 8], strategy="member-median")
        assert core == 0

    def test_center_strategy(self):
        core = select_core(grid_adj(), [0, 8], strategy="member-center")
        # any node at distance 2 from both corners qualifies; tie-break is
        # the smallest id among minimizers
        assert core == 2

    def test_first_member_strategy(self):
        assert select_core(grid_adj(), [7, 3, 5], strategy="first-member") == 3

    def test_hub_wins_on_star(self):
        adj = spf.network_adjacency(star_network(6))
        assert select_core(adj, [1, 2, 3], strategy="member-median") == 0

    def test_empty_members_rejected(self):
        with pytest.raises(TreeError):
            select_core(grid_adj(), [])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            select_core(grid_adj(), [0], strategy="psychic")

    def test_deterministic(self):
        a = select_core(grid_adj(), [0, 2, 6, 8])
        b = select_core(grid_adj(), [8, 6, 2, 0])
        assert a == b


class TestCoreBasedTree:
    def test_tree_spans_members_and_core(self):
        tree = core_based_tree(grid_adj(), [0, 8], core=4)
        tree.validate([0, 8, 4])
        assert tree.root == 4

    def test_paths_are_unicast_shortest_paths(self):
        tree = core_based_tree(grid_adj(), [2], core=0)
        assert len(tree.edges) == 2  # 0-1-2

    def test_unreachable_member_raises(self):
        adj = {0: {1: 1.0}, 1: {0: 1.0}, 2: {}}
        with pytest.raises(TreeError):
            core_based_tree(adj, [2], core=0)

    def test_core_only_tree_is_empty(self):
        tree = core_based_tree(grid_adj(), [], core=4)
        assert len(tree.edges) == 0

    def test_bad_core_placement_costs_more(self):
        # members clustered at one corner; a far-corner core wastes edges.
        adj = grid_adj()
        weights = edge_weights(adj)
        members = [0, 1, 3]
        good = core_based_tree(adj, members, select_core(adj, members))
        bad = core_based_tree(adj, members, core=8)
        assert bad.cost(weights) > good.cost(weights)

    @given(st.integers(3, 25), st.integers(0, 300), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_always_valid_on_random_graphs(self, n, seed, k):
        rng = random.Random(seed)
        net = random_connected_network(n, rng)
        adj = spf.network_adjacency(net)
        members = rng.sample(range(n), min(k, n))
        core = select_core(adj, members)
        tree = core_based_tree(adj, members, core)
        tree.validate(set(members) | {core})
        assert tree.is_tree()
