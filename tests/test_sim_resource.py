"""Tests for facilities: capacity, FIFO queueing, utilization accounting."""

from __future__ import annotations

import pytest

from repro.sim.kernel import SimulationError
from repro.sim.process import Hold
from repro.sim.resource import Facility


def worker(sim, facility, trace, name, service):
    yield facility.request()
    trace.append(("start", name, sim.now))
    yield Hold(service)
    facility.release()
    trace.append(("end", name, sim.now))


class TestSingleServer:
    def test_serialization(self, sim):
        fac = Facility(sim)
        trace = []
        for name in ("a", "b", "c"):
            sim.spawn(worker(sim, fac, trace, name, 2.0))
        sim.run()
        starts = [t for kind, _, t in trace if kind == "start"]
        assert starts == [0.0, 2.0, 4.0]

    def test_fifo_order(self, sim):
        fac = Facility(sim)
        trace = []

        def late_spawner():
            yield Hold(0.5)
            sim.spawn(worker(sim, fac, trace, "late", 1.0))

        sim.spawn(worker(sim, fac, trace, "first", 2.0))
        sim.spawn(worker(sim, fac, trace, "second", 1.0))
        sim.spawn(late_spawner())
        sim.run()
        order = [n for kind, n, _ in trace if kind == "start"]
        assert order == ["first", "second", "late"]

    def test_busy_flag_and_queue_length(self, sim):
        fac = Facility(sim)
        trace = []
        sim.spawn(worker(sim, fac, trace, "a", 5.0))
        sim.spawn(worker(sim, fac, trace, "b", 5.0))
        sim.run(until=1.0)
        assert fac.busy
        assert fac.in_use == 1
        assert fac.queue_length == 1

    def test_completions_counted(self, sim):
        fac = Facility(sim)
        trace = []
        for name in "abc":
            sim.spawn(worker(sim, fac, trace, name, 1.0))
        sim.run()
        assert fac.completions == 3


class TestMultiServer:
    def test_capacity_two_runs_pairs(self, sim):
        fac = Facility(sim, capacity=2)
        trace = []
        for name in ("a", "b", "c"):
            sim.spawn(worker(sim, fac, trace, name, 2.0))
        sim.run()
        starts = sorted(t for kind, _, t in trace if kind == "start")
        assert starts == [0.0, 0.0, 2.0]

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            Facility(sim, capacity=0)


class TestRelease:
    def test_release_idle_raises(self, sim):
        fac = Facility(sim)
        with pytest.raises(SimulationError):
            fac.release()


class TestUtilization:
    def test_utilization_half_busy(self, sim):
        fac = Facility(sim)
        trace = []
        sim.spawn(worker(sim, fac, trace, "a", 5.0))

        def idle_until_ten():
            yield Hold(10.0)

        sim.spawn(idle_until_ten())
        sim.run()
        assert fac.utilization() == pytest.approx(0.5)

    def test_utilization_zero_when_unused(self, sim):
        fac = Facility(sim)

        def tick():
            yield Hold(4.0)

        sim.spawn(tick())
        sim.run()
        assert fac.utilization() == 0.0
