"""Tests for nodal events: switch failure and recovery."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    DgmcNetwork,
    JoinEvent,
    NodeEvent,
    ProtocolConfig,
)
from repro.dataplane import ForwardingEngine, McPacket
from repro.lsr import spf
from repro.topo.generators import grid_network, ring_network, waxman_network
from repro.trees.algorithms import dominant_members


class TestDominantMembers:
    def test_connected_members_all_kept(self):
        adj = spf.network_adjacency(grid_network(3, 3))
        assert dominant_members(adj, frozenset({0, 4, 8})) == frozenset({0, 4, 8})

    def test_largest_component_wins(self):
        net = grid_network(1, 5)
        net.set_link_state(1, 2, up=False)
        adj = spf.network_adjacency(net)
        # components of members: {0, 1} vs {3, 4}: tie -> smallest min id
        assert dominant_members(adj, frozenset({0, 1, 3, 4})) == frozenset({0, 1})
        # {3, 4} larger than {0}
        assert dominant_members(adj, frozenset({0, 3, 4})) == frozenset({3, 4})

    def test_ghost_anchor_does_not_strand_live_members(self):
        # member 0 is isolated (dead); the live pair must still be served.
        adj = {0: {}, 1: {2: 1.0}, 2: {1: 1.0}}
        assert dominant_members(adj, frozenset({0, 1, 2})) == frozenset({1, 2})

    def test_empty(self):
        assert dominant_members({}, frozenset()) == frozenset()


def deployment(net=None):
    dgmc = DgmcNetwork(
        net or ring_network(6),
        ProtocolConfig(compute_time=0.5, per_hop_delay=0.05),
    )
    dgmc.register_symmetric(1)
    return dgmc


class TestNodeFailure:
    def test_dead_switch_hears_nothing(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(NodeEvent(3, up=False), at=50.0)
        dgmc.inject(JoinEvent(1, 1), at=100.0)
        dgmc.run()
        # switch 3 never saw the second join
        state3 = dgmc.switches[3].states[1]
        assert state3.member_set == frozenset({0})

    def test_events_at_dead_switch_rejected(self):
        dgmc = deployment()
        dgmc.inject(NodeEvent(3, up=False), at=10.0)
        dgmc.inject(JoinEvent(3, 1), at=20.0)
        with pytest.raises(ValueError, match="failed"):
            dgmc.run()

    def test_tree_routes_around_dead_relay(self):
        # ring: members 0 and 2; relay 1 dies; tree must take the long way
        dgmc = deployment(net=ring_network(6))
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(2, 1), at=30.0)
        dgmc.run()
        tree = dgmc.states_for(1)[0].installed.shared_tree
        assert (0, 1) in tree.edges and (1, 2) in tree.edges
        dgmc.inject(NodeEvent(1, up=False), at=100.0)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        tree = dgmc.states_for(1)[0].installed.shared_tree
        assert all(1 not in e for e in tree.edges)
        tree.validate({0, 2})

    def test_dead_member_becomes_ghost_but_live_members_served(self):
        dgmc = deployment(net=ring_network(6))
        for i, sw in enumerate([0, 2, 4]):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        dgmc.inject(NodeEvent(2, up=False), at=100.0)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        state = dgmc.states_for(1)[0]
        # ghost membership lingers (nobody leaves on the dead switch's behalf)
        assert 2 in state.members
        # but the installed tree serves the live members only
        tree = state.installed.shared_tree
        assert tree.spans({0, 4})
        assert all(2 not in e for e in tree.edges)

    def test_double_failure_is_idempotent(self):
        dgmc = deployment()
        dgmc.inject(NodeEvent(3, up=False), at=10.0)
        dgmc.inject(NodeEvent(3, up=False), at=20.0)
        dgmc.run()
        assert dgmc.dead_switches == {3}

    def test_unicast_reroutes_around_dead_switch(self):
        dgmc = deployment(net=ring_network(5))
        dgmc.inject(NodeEvent(1, up=False), at=10.0)
        dgmc.run()
        # 0's route to 2 must now go the long way (via 4, 3)
        assert dgmc.routers[0].next_hop(2) == 4


class TestNodeRecovery:
    def test_recovery_restores_links_and_database(self):
        dgmc = deployment(net=ring_network(5))
        dgmc.inject(NodeEvent(1, up=False), at=10.0)
        dgmc.inject(NodeEvent(1, up=True), at=100.0)
        dgmc.run()
        assert not dgmc.dead_switches
        assert dgmc.net.link(0, 1).up and dgmc.net.link(1, 2).up
        assert dgmc.routers[0].next_hop(2) == 1  # short route again

    def test_ghost_member_resynchronizes_after_revival(self):
        dgmc = deployment(net=ring_network(6))
        for i, sw in enumerate([0, 2, 4]):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        dgmc.inject(NodeEvent(2, up=False), at=100.0)
        dgmc.run()
        dgmc.inject(NodeEvent(2, up=True), at=200.0)
        dgmc.run()
        # a post-revival membership event re-synchronizes everyone
        dgmc.inject(JoinEvent(5, 1), at=300.0)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        tree = dgmc.states_for(1)[0].installed.shared_tree
        tree.validate({0, 4, 5})

    def test_recovery_without_failure_is_noop(self):
        dgmc = deployment()
        before = dgmc.fabric.total_floods
        dgmc.inject(NodeEvent(3, up=True), at=10.0)
        dgmc.run()
        assert dgmc.fabric.total_floods == before


class TestDataPlaneAroundDeadSwitch:
    def test_delivery_after_relay_death(self, rng):
        net = waxman_network(20, rng)
        dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
        dgmc.register_symmetric(1)
        members = [0, 7, 13]
        for i, sw in enumerate(members):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        tree = dgmc.states_for(1)[0].installed.shared_tree
        relays = sorted(tree.nodes() - set(members))
        victim = None
        for candidate in relays:
            probe = dgmc.net.copy()
            for nbr in probe.neighbors(candidate):
                probe.set_link_state(candidate, nbr, False)
            dist = probe.hop_distances(members[0])
            if all(m in dist for m in members[1:]):
                victim = candidate
                break
        if victim is None:
            pytest.skip("no relay whose death keeps members connected")
        dgmc.inject(NodeEvent(victim, up=False), at=200.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(members[0], 1), at=300.0)
        dgmc.run()
        assert record.delivered.keys() >= set(members) - {victim}
