"""Incremental SPF: repaired trees are byte-identical to full recomputes.

The repair in :mod:`repro.lsr.ispf` is only sound on the *canonical*
trees :func:`repro.lsr.spf.dijkstra_uncached` produces (lowest-id exact
predecessors), so every property here compares repaired ``(dist,
parent)`` dicts for exact equality against a from-scratch run on the
post-delta adjacency -- including tie-breaks and disconnections.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsr import spfcache
from repro.lsr.ispf import repair_sssp, repair_sssp_chain
from repro.lsr.lsa import RouterLsa
from repro.lsr.lsdb import LinkStateDatabase
from repro.lsr.spf import dijkstra_uncached
from repro.net.transport import RetransmitPolicy
from repro.topo.graph import Network

#: Few distinct values with repeats: maximizes equal-length paths, the
#: tie-break cases where a sloppy repair diverges from the canonical run.
WEIGHTS = (0.5, 1.0, 1.0, 1.0, 2.0, 2.5)


def _apply(adj, delta):
    """The post-delta adjacency (plain dicts, fresh copies)."""
    u, v, _, new_w = delta
    out = {x: dict(nbrs) for x, nbrs in adj.items()}
    for a, b in ((u, v), (v, u)):
        if new_w is None:
            out[a].pop(b, None)
        else:
            out[a][b] = new_w
    return out


@st.composite
def graph_and_delta(draw):
    """A random weighted graph plus one random single-link delta."""
    n = draw(st.integers(min_value=3, max_value=10))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**32)))
    adj = {x: {} for x in range(n)}
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    density = draw(st.floats(min_value=0.2, max_value=0.9))
    for u, v in pairs:
        if rng.random() < density:
            w = rng.choice(WEIGHTS)
            adj[u][v] = w
            adj[v][u] = w
    edges = [(u, v) for u in adj for v in adj[u] if u < v]
    non_edges = [(u, v) for u, v in pairs if v not in adj[u]]
    kinds = ["change", "remove"] if edges else []
    if non_edges:
        kinds.append("add")
    if not kinds:
        kinds = ["noop"]
    kind = draw(st.sampled_from(kinds))
    if kind == "add":
        u, v = rng.choice(non_edges)
        delta = (u, v, None, rng.choice(WEIGHTS))
    elif kind == "remove":
        u, v = rng.choice(edges)
        delta = (u, v, adj[u][v], None)
    elif kind == "change":
        u, v = rng.choice(edges)
        old_w = adj[u][v]
        new_w = rng.choice([w for w in WEIGHTS if w != old_w])
        delta = (u, v, old_w, new_w)
    else:
        delta = (0, 1, None, None)
    source = draw(st.integers(min_value=0, max_value=n - 1))
    return adj, delta, source


class TestRepairMatchesScratch:
    @settings(max_examples=300, deadline=None)
    @given(graph_and_delta())
    def test_single_delta(self, case):
        adj, delta, source = case
        dist_old, parent_old = dijkstra_uncached(adj, source)
        post = _apply(adj, delta)
        repaired = repair_sssp(post, source, dist_old, parent_old, delta)
        assert repaired is not None
        assert repaired == dijkstra_uncached(post, source)

    @settings(max_examples=100, deadline=None)
    @given(graph_and_delta(), st.integers(min_value=0, max_value=2**32))
    def test_delta_sequence(self, case, seed):
        """A chain of deltas replayed in order equals the final scratch run."""
        adj, delta, source = case
        rng = random.Random(seed)
        deltas = [delta]
        current = _apply(adj, delta)
        for _ in range(rng.randrange(1, 4)):
            edges = [(u, v) for u in current for v in current[u] if u < v]
            if edges and rng.random() < 0.7:
                u, v = rng.choice(edges)
                old_w = current[u][v]
                new_w = rng.choice([w for w in WEIGHTS if w != old_w])
                step = (u, v, old_w, new_w)
            else:
                n = len(current)
                u = rng.randrange(n)
                v = (u + 1 + rng.randrange(n - 1)) % n
                step = (u, v, current[u].get(v), rng.choice(WEIGHTS))
            deltas.append(step)
            current = _apply(current, step)
        dist_old, parent_old = dijkstra_uncached(adj, source)
        repaired = repair_sssp_chain(
            current, source, dist_old, parent_old, tuple(deltas)
        )
        assert repaired is not None
        assert repaired == dijkstra_uncached(current, source)


class TestRepairDeterministic:
    def test_diamond_tie_break_after_removal(self):
        """parent[3] moves 1 -> 2 when the 1--3 edge disappears."""
        adj = {
            0: {1: 1.0, 2: 1.0},
            1: {0: 1.0, 3: 1.0},
            2: {0: 1.0, 3: 1.0},
            3: {1: 1.0, 2: 1.0},
        }
        dist, parent = dijkstra_uncached(adj, 0)
        assert parent[3] == 1  # lowest-id exact predecessor
        delta = (1, 3, 1.0, None)
        post = _apply(adj, delta)
        repaired = repair_sssp(post, 0, dist, parent, delta)
        assert repaired == dijkstra_uncached(post, 0)
        assert repaired[1][3] == 2

    def test_detached_subtree_becomes_unreachable(self):
        adj = {0: {1: 1.0}, 1: {0: 1.0, 2: 1.0}, 2: {1: 1.0}}
        dist, parent = dijkstra_uncached(adj, 0)
        delta = (1, 2, 1.0, None)
        post = _apply(adj, delta)
        repaired = repair_sssp(post, 0, dist, parent, delta)
        assert repaired == dijkstra_uncached(post, 0)
        assert 2 not in repaired[0] and 2 not in repaired[1]

    def test_noop_delta_returns_same_objects(self):
        adj = {0: {1: 1.0}, 1: {0: 1.0}}
        dist, parent = dijkstra_uncached(adj, 0)
        out = repair_sssp(adj, 0, dist, parent, (0, 1, 1.0, 1.0))
        assert out[0] is dist and out[1] is parent

    def test_non_tree_edge_increase_returns_same_objects(self):
        """Stretching an edge no shortest path uses changes nothing."""
        adj = {
            0: {1: 1.0, 2: 1.0},
            1: {0: 1.0, 2: 5.0},
            2: {0: 1.0, 1: 5.0},
        }
        dist, parent = dijkstra_uncached(adj, 0)
        delta = (1, 2, 5.0, 9.0)
        post = _apply(adj, delta)
        out = repair_sssp(post, 0, dist, parent, delta)
        assert out[0] is dist and out[1] is parent


def _lsa(origin, seqnum, links):
    return RouterLsa(origin, seqnum, tuple(links))


def _square_db():
    """4-switch ring 0-1-2-3-0 with unit delays, fully installed."""
    db = LinkStateDatabase(4)
    ring = {0: (1, 3), 1: (0, 2), 2: (1, 3), 3: (0, 2)}
    for origin, nbrs in ring.items():
        db.install(_lsa(origin, 1, [(n, 1.0, True) for n in nbrs]))
    return db


class TestLsdbDeltaChain:
    def test_single_link_change_repairs(self):
        db = _square_db()
        image = db.adjacency()
        before = db.spf_stats.ispf_repairs
        for x in range(4):
            image.sssp(x)
        # Switch 0 re-advertises the 0--1 link slower.
        db.install(_lsa(0, 2, [(1, 3.0, True), (3, 1.0, True)]))
        assert db.last_install_changed_image
        image2 = db.adjacency()
        assert image2 is not image
        for x in range(4):
            dist, parent = image2.sssp(x)
            assert (dist, parent) == dijkstra_uncached(dict(image2), x)
        assert db.spf_stats.ispf_repairs == before + 4
        assert db.spf_stats.relaxations > 0

    def test_multi_install_sequence_still_repairs(self):
        """Two installs between rebuilds replay as an ordered delta chain."""
        db = _square_db()
        image = db.adjacency()
        for x in range(4):
            image.sssp(x)
        db.install(_lsa(0, 2, [(1, 3.0, True), (3, 1.0, True)]))
        db.install(_lsa(2, 2, [(1, 1.0, True), (3, 4.0, True)]))
        image2 = db.adjacency()
        before = db.spf_stats.ispf_repairs
        for x in range(4):
            assert image2.sssp(x) == dijkstra_uncached(dict(image2), x)
        assert db.spf_stats.ispf_repairs == before + 4

    def test_refresh_install_keeps_image(self):
        db = _square_db()
        image = db.adjacency()
        image.sssp(0)
        # Pure seqnum refresh: identical link content.
        db.install(_lsa(0, 2, [(1, 1.0, True), (3, 1.0, True)]))
        assert not db.last_install_changed_image
        assert db.adjacency() is image

    def test_ispf_disabled_matches(self):
        def run():
            db = _square_db()
            db.adjacency().sssp(0)
            db.install(_lsa(0, 2, [(1, 3.0, True), (3, 1.0, True)]))
            return db.adjacency().sssp(0)

        with spfcache.ispf_disabled():
            full = run()
        assert run() == full


class TestNetworkDeltaChain:
    def test_link_state_flip_repairs_view(self):
        net = Network(5)
        for u, v in ((0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)):
            net.add_link(u, v, delay=1.0)
        view = net.spf_view()
        for x in range(5):
            view.sssp(x)
        stats = net.spf_stats
        before = stats.ispf_repairs
        net.set_link_state(1, 3, up=False)
        view2 = net.spf_view()
        for x in range(5):
            assert view2.sssp(x) == dijkstra_uncached(dict(view2), x)
        assert stats.ispf_repairs > before


class TestRetransmitPolicyProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        st.floats(min_value=0.001, max_value=0.2),
        st.floats(min_value=0.2, max_value=5.0),
        st.integers(min_value=1, max_value=40),
    )
    def test_timeout_monotone_and_capped(self, rto, rto_max, attempts):
        policy = RetransmitPolicy(rto=rto, rto_max=rto_max)
        timeouts = [policy.timeout(a) for a in range(1, attempts + 1)]
        assert all(b >= a for a, b in zip(timeouts, timeouts[1:]))
        assert all(t <= rto_max for t in timeouts)
        assert timeouts[0] == min(rto, rto_max)
