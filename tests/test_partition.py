"""Network partition behavior.

The paper explicitly defers partition survival ("the ability of the
protocol to survive disastrous situations, such as network partitioning,
remains for further study").  These tests pin down the library's graceful
degradation: topology computations never crash, each side of a partition
serves the members it can reach, and healing the partition (with
reoptimize_on_link_up) restores a full spanning tree.
"""

from __future__ import annotations

import pytest

from repro.core import DgmcNetwork, JoinEvent, LinkEvent, ProtocolConfig
from repro.lsr import spf
from repro.topo.generators import grid_network
from repro.trees.algorithms import SharedTreeAlgorithm, reachable_members


BOTH = frozenset(("sender", "receiver"))


class TestReachableMembers:
    def test_full_reachability(self):
        adj = spf.network_adjacency(grid_network(1, 4))
        assert reachable_members(adj, frozenset({0, 3})) == frozenset({0, 3})

    def test_partition_keeps_anchor_side(self):
        net = grid_network(1, 4)
        net.set_link_state(1, 2, up=False)
        adj = spf.network_adjacency(net)
        assert reachable_members(adj, frozenset({0, 1, 3})) == frozenset({0, 1})

    def test_custom_anchor(self):
        net = grid_network(1, 4)
        net.set_link_state(1, 2, up=False)
        adj = spf.network_adjacency(net)
        assert reachable_members(adj, frozenset({0, 3}), anchor=2) == frozenset({3})

    def test_empty(self):
        assert reachable_members({}, frozenset()) == frozenset()


class TestAlgorithmDegradation:
    def test_shared_tree_serves_reachable_component(self):
        net = grid_network(1, 4)
        net.set_link_state(1, 2, up=False)
        adj = spf.network_adjacency(net)
        topo = SharedTreeAlgorithm(method="pruned-spt").compute(
            adj, {0: BOTH, 1: BOTH, 3: BOTH}, None
        )
        tree = topo.shared_tree
        assert tree.members == frozenset({0, 1})
        tree.validate({0, 1})


class TestProtocolUnderPartition:
    def test_partition_does_not_crash_and_serves_each_side(self):
        # line 0-1-2-3; members 0 and 3; cut the middle.
        net = grid_network(1, 4)
        dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
        dgmc.register_symmetric(1)
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.inject(JoinEvent(3, 1), at=20.0)
        dgmc.run()
        dgmc.inject(LinkEvent(1, 1, 2, up=False), at=40.0)
        dgmc.run()  # must not raise
        # The detector side recomputed; its tree covers only its component.
        state0 = dgmc.states_for(1)[0]
        tree = state0.installed.shared_tree
        up_edges = {link.key for link in net.links()}
        assert tree.edges <= up_edges

    def test_heal_restores_spanning_tree(self):
        net = grid_network(1, 4)
        dgmc = DgmcNetwork(
            net,
            ProtocolConfig(
                compute_time=0.5, per_hop_delay=0.05, reoptimize_on_link_up=True
            ),
        )
        dgmc.register_symmetric(1)
        dgmc.inject(JoinEvent(0, 1), at=1.0)
        dgmc.inject(JoinEvent(3, 1), at=20.0)
        dgmc.inject(LinkEvent(1, 1, 2, up=False), at=40.0)
        dgmc.run()
        dgmc.inject(LinkEvent(1, 1, 2, up=True), at=80.0)
        dgmc.run()
        ok, detail = dgmc.agreement(1)
        assert ok, detail
        tree = dgmc.states_for(1)[0].installed.shared_tree
        tree.validate({0, 3})
