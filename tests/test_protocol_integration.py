"""Network-wide integration tests: the DESIGN.md invariants end-to-end."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    DgmcNetwork,
    JoinEvent,
    LeaveEvent,
    LinkEvent,
    ProtocolConfig,
)
from repro.topo.generators import grid_network, waxman_network


def make_dgmc(net, **kw):
    kw.setdefault("compute_time", 0.5)
    kw.setdefault("per_hop_delay", 0.05)
    return DgmcNetwork(net, ProtocolConfig(**kw))


def check_invariants(dgmc, connection_id):
    """DESIGN.md invariants 2-3: agreement + valid spanning tree."""
    assert dgmc.quiescent()
    ok, detail = dgmc.agreement(connection_id)
    assert ok, detail
    states = dgmc.states_for(connection_id)
    if not states:
        return
    state = states[min(states)]
    if not state.members:
        return
    up_edges = {link.key for link in dgmc.net.links()}
    for _, tree in state.installed.trees:
        tree.validate(state.member_set if tree.root is None else None)
        assert tree.edges <= up_edges, "installed tree uses a down link"


class TestSparseWorkloads:
    def test_exactly_one_computation_and_flood_per_event(self, rng):
        net = waxman_network(30, rng)
        dgmc = make_dgmc(net)
        dgmc.register_symmetric(1)
        switches = rng.sample(range(30), 6)
        for i, sw in enumerate(switches):
            dgmc.inject(JoinEvent(sw, 1), at=100.0 * (i + 1))
        dgmc.run()
        check_invariants(dgmc, 1)
        assert dgmc.total_computations() == 6
        assert dgmc.mc_floodings() == 6

    def test_join_leave_churn(self, rng):
        net = waxman_network(25, rng)
        dgmc = make_dgmc(net)
        dgmc.register_symmetric(1)
        t = 100.0
        members = set()
        for _ in range(15):
            absent = [x for x in range(25) if x not in members]
            if absent and (len(members) < 2 or rng.random() < 0.6):
                sw = rng.choice(absent)
                dgmc.inject(JoinEvent(sw, 1), at=t)
                members.add(sw)
            else:
                sw = rng.choice(sorted(members))
                dgmc.inject(LeaveEvent(sw, 1), at=t)
                members.remove(sw)
            t += 100.0
        dgmc.run()
        check_invariants(dgmc, 1)
        if members:
            assert dgmc.states_for(1)[0].member_set == frozenset(members)


class TestBurstyWorkloads:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_bursts_converge_and_agree(self, seed):
        rng = random.Random(seed)
        net = waxman_network(30, rng)
        dgmc = make_dgmc(net)
        dgmc.register_symmetric(1)
        for sw in rng.sample(range(30), 8):
            dgmc.inject(JoinEvent(sw, 1), at=1.0 + rng.random())
        dgmc.run()
        check_invariants(dgmc, 1)
        assert dgmc.states_for(1)[0].member_set == frozenset(
            dgmc.states_for(1)[29].member_set
        )

    def test_burst_cost_well_below_brute_force(self, rng):
        n = 40
        net = waxman_network(n, rng)
        dgmc = make_dgmc(net)
        dgmc.register_symmetric(1)
        k = 8
        for sw in rng.sample(range(n), k):
            dgmc.inject(JoinEvent(sw, 1), at=1.0 + rng.random() * 2)
        dgmc.run()
        check_invariants(dgmc, 1)
        # brute force would cost n per event; D-GMC stays far below
        assert dgmc.total_computations() < 0.5 * n * k

    def test_interleaved_joins_and_leaves_in_burst(self, rng):
        net = waxman_network(20, rng)
        dgmc = make_dgmc(net)
        dgmc.register_symmetric(1)
        for i, sw in enumerate([3, 7, 11, 15]):
            dgmc.inject(JoinEvent(sw, 1), at=50.0 * (i + 1))
        dgmc.run()
        # burst: two leaves and two joins nearly simultaneous
        dgmc.inject(LeaveEvent(3, 1), at=300.0)
        dgmc.inject(LeaveEvent(7, 1), at=300.1)
        dgmc.inject(JoinEvent(2, 1), at=300.2)
        dgmc.inject(JoinEvent(9, 1), at=300.3)
        dgmc.run()
        check_invariants(dgmc, 1)
        assert dgmc.states_for(1)[0].member_set == frozenset({11, 15, 2, 9})


class TestMultipleConnections:
    def test_connections_are_independent(self, rng):
        net = waxman_network(25, rng)
        dgmc = make_dgmc(net)
        dgmc.register_symmetric(1)
        dgmc.register_receiver_only(2)
        for i, sw in enumerate([2, 6, 10]):
            dgmc.inject(JoinEvent(sw, 1), at=100.0 * (i + 1))
        dgmc.run()
        comps_conn1 = dgmc.total_computations()
        for i, sw in enumerate([4, 8]):
            dgmc.inject(JoinEvent(sw, 2), at=1000.0 + 100.0 * (i + 1))
        dgmc.run()
        check_invariants(dgmc, 1)
        check_invariants(dgmc, 2)
        # connection 2's events triggered no recomputation for connection 1
        conn1_comps = [r for r in dgmc.computation_log if r.connection_id == 1]
        assert len(conn1_comps) == comps_conn1

    def test_shared_link_failure_affects_both(self, rng):
        from repro.topo.generators import ring_network

        net = ring_network(4)  # neighbors 0-1-2: both trees share links
        dgmc = make_dgmc(net)
        dgmc.register_symmetric(1)
        dgmc.register_symmetric(2)
        for m in (1, 2):
            dgmc.inject(JoinEvent(0, m), at=10.0 * m)
            dgmc.inject(JoinEvent(2, m), at=10.0 * m + 5.0)
        dgmc.run()
        before = dgmc.mc_event_count
        tree1 = dgmc.states_for(1)[0].installed.shared_tree
        tree2 = dgmc.states_for(2)[0].installed.shared_tree
        shared = sorted(tree1.edges & tree2.edges)
        assert shared, "test premise: trees share a link"
        u, v = shared[0]
        dgmc.inject(LinkEvent(u, u, v, up=False), at=100.0)
        dgmc.run()
        # Figure 2: one link event -> one MC event per affected connection
        assert dgmc.mc_event_count == before + 2


class TestLsaAccounting:
    def test_membership_event_floods_exactly_one_event_lsa(self, rng):
        """DESIGN.md invariant 4 (event LSAs; proposals are extra)."""
        net = waxman_network(20, rng)
        dgmc = make_dgmc(net)
        dgmc.register_symmetric(1)
        for i, sw in enumerate([1, 5, 9]):
            dgmc.inject(JoinEvent(sw, 1), at=100.0 * (i + 1))
        dgmc.run()
        event_lsas = sum(sw.event_lsas_flooded for sw in dgmc.switches.values())
        assert event_lsas == 3

    def test_link_event_floods_one_non_mc_plus_one_per_connection(self, rng):
        from repro.topo.generators import ring_network

        net = ring_network(4)
        dgmc = make_dgmc(net)
        dgmc.register_symmetric(1)
        dgmc.register_symmetric(2)
        for m in (1, 2):
            dgmc.inject(JoinEvent(0, m), at=10.0 * m)
            dgmc.inject(JoinEvent(1, m), at=10.0 * m + 5)
        dgmc.run()
        non_mc_before = dgmc.fabric.count_for("non-mc")
        event_lsas_before = sum(
            sw.event_lsas_flooded for sw in dgmc.switches.values()
        )
        # both trees are exactly the (0,1) edge
        dgmc.inject(LinkEvent(0, 0, 1, up=False), at=100.0)
        dgmc.run()
        assert dgmc.fabric.count_for("non-mc") == non_mc_before + 1
        event_lsas = sum(sw.event_lsas_flooded for sw in dgmc.switches.values())
        assert event_lsas == event_lsas_before + 2  # one MC LSA per connection


class TestFaultTolerance:
    def test_sequential_link_failures(self, rng):
        net = waxman_network(20, rng)
        dgmc = make_dgmc(net)
        dgmc.register_symmetric(1)
        for i, sw in enumerate([0, 5, 10, 15]):
            dgmc.inject(JoinEvent(sw, 1), at=50.0 * (i + 1))
        dgmc.run()
        check_invariants(dgmc, 1)
        # fail two tree links in sequence (keeping the network connected)
        for round_idx in range(2):
            tree = dgmc.states_for(1)[0].installed.shared_tree
            for edge in sorted(tree.edges):
                candidate = dgmc.net.copy()
                candidate.set_link_state(*edge, up=False)
                if candidate.is_connected():
                    dgmc.inject(
                        LinkEvent(edge[0], *edge, up=False),
                        at=dgmc.sim.now + 100.0,
                    )
                    break
            else:
                pytest.skip("no safely removable tree edge")
            dgmc.run()
            check_invariants(dgmc, 1)

    def test_failure_concurrent_with_membership_burst(self, rng):
        net = waxman_network(20, rng)
        dgmc = make_dgmc(net)
        dgmc.register_symmetric(1)
        for i, sw in enumerate([0, 5, 10]):
            dgmc.inject(JoinEvent(sw, 1), at=50.0 * (i + 1))
        dgmc.run()
        tree = dgmc.states_for(1)[0].installed.shared_tree
        edge = None
        for e in sorted(tree.edges):
            candidate = dgmc.net.copy()
            candidate.set_link_state(*e, up=False)
            if candidate.is_connected():
                edge = e
                break
        if edge is None:
            pytest.skip("no safely removable tree edge")
        t = dgmc.sim.now + 100.0
        dgmc.inject(LinkEvent(edge[0], *edge, up=False), at=t)
        dgmc.inject(JoinEvent(15, 1), at=t + 0.01)
        dgmc.inject(LeaveEvent(5, 1), at=t + 0.02)
        dgmc.run()
        check_invariants(dgmc, 1)
        assert dgmc.states_for(1)[0].member_set == frozenset({0, 10, 15})


class TestDeterminism:
    def test_identical_runs_identical_outcomes(self):
        def run_once():
            rng = random.Random(77)
            net = waxman_network(20, rng)
            dgmc = make_dgmc(net)
            dgmc.register_symmetric(1)
            for sw in rng.sample(range(20), 6):
                dgmc.inject(JoinEvent(sw, 1), at=1.0 + rng.random())
            dgmc.run()
            state = dgmc.states_for(1)[0]
            return (
                dgmc.total_computations(),
                dgmc.mc_floodings(),
                state.current_stamp,
                state.installed,
                dgmc.sim.now,
            )

        assert run_once() == run_once()
