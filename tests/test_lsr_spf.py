"""Tests for SPF computations, cross-checked against networkx."""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.lsr import spf
from repro.topo.generators import random_connected_network, waxman_network


def line_adj():
    # 0 -1- 1 -1- 2 -1- 3 plus a shortcut 0-3 of weight 10
    return {
        0: {1: 1.0, 3: 10.0},
        1: {0: 1.0, 2: 1.0},
        2: {1: 1.0, 3: 1.0},
        3: {2: 1.0, 0: 10.0},
    }


class TestDijkstra:
    def test_line_distances(self):
        dist, parent = spf.dijkstra(line_adj(), 0)
        assert dist == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
        assert parent[0] is None
        assert parent[3] == 2  # cheap path, not the 10.0 shortcut

    def test_unreachable_nodes_absent(self):
        adj = {0: {1: 1.0}, 1: {0: 1.0}, 2: {}}
        dist, parent = spf.dijkstra(adj, 0)
        assert 2 not in dist and 2 not in parent

    def test_deterministic_tie_break_toward_lower_parent(self):
        # two equal-cost paths to 3: via 1 and via 2
        adj = {
            0: {1: 1.0, 2: 1.0},
            1: {0: 1.0, 3: 1.0},
            2: {0: 1.0, 3: 1.0},
            3: {1: 1.0, 2: 1.0},
        }
        _, parent = spf.dijkstra(adj, 0)
        assert parent[3] == 1

    @given(st.integers(2, 40), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx(self, n, seed):
        net = random_connected_network(n, random.Random(seed))
        adj = spf.network_adjacency(net)
        dist, _ = spf.dijkstra(adj, 0)
        expected = nx.single_source_dijkstra_path_length(
            net.to_networkx(), 0, weight="delay"
        )
        assert set(dist) == set(expected)
        for node in dist:
            assert dist[node] == pytest.approx(expected[node])


class TestShortestPath:
    def test_path_nodes(self):
        path = spf.shortest_path(line_adj(), 0, 3)
        assert path == [0, 1, 2, 3]

    def test_path_to_self(self):
        assert spf.shortest_path(line_adj(), 2, 2) == [2]

    def test_unreachable_returns_none(self):
        adj = {0: {}, 1: {}}
        assert spf.shortest_path(adj, 0, 1) is None

    def test_path_edges_canonical(self):
        assert spf.path_edges([3, 1, 2]) == [(1, 3), (1, 2)]


class TestRoutingTable:
    def test_next_hops_on_line(self):
        table = spf.routing_table(line_adj(), 0)
        assert table == {1: 1, 2: 1, 3: 1}

    def test_next_hop_is_a_neighbor(self, rng):
        net = waxman_network(30, rng)
        adj = spf.network_adjacency(net)
        for src in (0, 7, 15):
            table = spf.routing_table(adj, src)
            for dest, hop in table.items():
                assert hop in adj[src]
                assert dest != src

    def test_following_next_hops_reaches_destination(self, rng):
        net = waxman_network(25, rng)
        adj = spf.network_adjacency(net)
        tables = {x: spf.routing_table(adj, x) for x in net.switches()}
        for dest in (3, 12, 24):
            node = 0
            for _ in range(net.n):
                if node == dest:
                    break
                node = tables[node][dest]
            assert node == dest


class TestNetworkAdjacency:
    def test_respects_down_links(self, grid4x4):
        grid4x4.set_link_state(0, 1, up=False)
        adj = spf.network_adjacency(grid4x4)
        assert 1 not in adj[0]
        adj_all = spf.network_adjacency(grid4x4, include_down=True)
        assert 1 in adj_all[0]


class TestEccentricity:
    def test_line_eccentricity(self):
        assert spf.eccentricity(line_adj(), 0) == pytest.approx(3.0)
        assert spf.eccentricity(line_adj(), 1) == pytest.approx(2.0)

    def test_isolated_node(self):
        assert spf.eccentricity({0: {}}, 0) == 0.0
