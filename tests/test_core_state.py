"""Tests for per-(switch, connection) D-GMC state."""

from __future__ import annotations

import pytest

from repro.core.mc import ConnectionSpec, ConnectionType, Role
from repro.core.state import McState
from repro.trees.algorithms import RECEIVER, SENDER
from repro.trees.base import McTopology, MulticastTree


def make_state(ctype=ConnectionType.SYMMETRIC, n=4):
    return McState(ConnectionSpec(1, ctype), n)


class TestMembership:
    def test_join_with_default_role_symmetric(self):
        st = make_state()
        st.apply_join(2, None)
        assert st.members[2] == frozenset({SENDER, RECEIVER})

    def test_join_with_default_role_receiver_only(self):
        st = make_state(ConnectionType.RECEIVER_ONLY)
        st.apply_join(2, None)
        assert st.members[2] == frozenset({RECEIVER})

    def test_join_with_explicit_role(self):
        st = make_state(ConnectionType.ASYMMETRIC)
        st.apply_join(1, Role.SENDER)
        assert st.members[1] == frozenset({SENDER})

    def test_join_accumulates_roles(self):
        st = make_state(ConnectionType.ASYMMETRIC)
        st.apply_join(1, Role.SENDER)
        st.apply_join(1, Role.RECEIVER)
        assert st.members[1] == frozenset({SENDER, RECEIVER})

    def test_leave_removes_entirely(self):
        st = make_state()
        st.apply_join(1, None)
        st.apply_leave(1)
        assert 1 not in st.members
        assert st.empty

    def test_leave_is_idempotent(self):
        st = make_state()
        st.apply_leave(3)  # no raise
        assert st.empty

    def test_member_set(self):
        st = make_state()
        st.apply_join(1, None)
        st.apply_join(3, None)
        assert st.member_set == frozenset({1, 3})


class TestPredicates:
    def test_no_outstanding_initially(self):
        st = make_state()
        assert st.no_outstanding_lsas()

    def test_outstanding_after_expected_merge(self):
        st = make_state()
        st.expected.merge([0, 1, 0, 0])
        assert not st.no_outstanding_lsas()
        st.received.increment(1)
        assert st.no_outstanding_lsas()

    def test_covers_new_events(self):
        st = make_state()
        assert not st.covers_new_events()  # R == C == 0
        st.received.increment(0)
        assert st.covers_new_events()


class TestInstall:
    def test_install_sets_c_and_proposer(self):
        st = make_state()
        topo = McTopology.shared(MulticastTree.build([(0, 1)], [0, 1]))
        st.install(topo, (1, 0, 0, 0), now=5.0, proposer=2)
        assert st.installed == topo
        assert st.current_stamp == (1, 0, 0, 0)
        assert st.current_proposer == 2
        assert st.last_install_time == 5.0
        assert st.proposals_accepted == 1

    def test_initial_proposer_is_sentinel(self):
        st = make_state(n=4)
        assert st.current_proposer == 4  # loses every tie
