"""Tests for the brute-force event-driven baseline (Section 2)."""

from __future__ import annotations

import pytest

from repro.baselines.brute_force import BruteForceNetwork
from repro.core.mc import Role
from repro.topo.generators import ring_network, waxman_network


def make(net=None, **kw):
    kw.setdefault("compute_time", 0.5)
    kw.setdefault("per_hop_delay", 0.05)
    bf = BruteForceNetwork(net or ring_network(6), **kw)
    bf.register_symmetric(1)
    return bf


class TestCost:
    def test_n_computations_per_event(self):
        bf = make()
        bf.inject_join(0, 1, at=1.0)
        bf.run()
        assert bf.total_computations == 6  # n = 6

    def test_cost_scales_linearly_with_events(self):
        bf = make()
        for i, sw in enumerate([0, 2, 4]):
            bf.inject_join(sw, 1, at=10.0 * (i + 1))
        bf.run()
        assert bf.total_computations == 18
        assert bf.mc_floodings() == 3

    def test_every_switch_computes_each_event(self, rng):
        net = waxman_network(15, rng)
        bf = BruteForceNetwork(net, compute_time=0.5, per_hop_delay=0.05)
        bf.register_symmetric(1)
        bf.inject_join(3, 1, at=1.0)
        bf.run()
        assert bf.total_computations == 15


class TestCorrectness:
    def test_agreement_after_sparse_events(self, rng):
        net = waxman_network(12, rng)
        bf = BruteForceNetwork(net, compute_time=0.5, per_hop_delay=0.05)
        bf.register_symmetric(1)
        for i, sw in enumerate([1, 5, 9]):
            bf.inject_join(sw, 1, at=100.0 * (i + 1))
        bf.inject_leave(5, 1, at=500.0)
        bf.run()
        assert bf.agreement(1)
        state = bf.states[0][1]
        assert sorted(state.members) == [1, 9]
        state.installed.shared_tree.validate({1, 9})

    def test_roles_respected(self):
        bf = make()
        bf.inject_join(0, 1, at=1.0, role=Role.SENDER)
        bf.run()
        assert bf.states[3][1].members[0] == frozenset({"sender"})

    def test_receiver_only_registration(self):
        bf = BruteForceNetwork(ring_network(4), compute_time=0.1)
        bf.register_receiver_only(7)
        bf.inject_join(1, 7, at=1.0)
        bf.run()
        assert bf.states[0][7].members[1] == frozenset({"receiver"})

    def test_leave_to_empty_gives_empty_topology(self):
        bf = make()
        bf.inject_join(0, 1, at=1.0)
        bf.inject_leave(0, 1, at=50.0)
        bf.run()
        state = bf.states[2][1]
        assert not state.members
        assert state.installed.trees == ()

    def test_last_install_time_advances(self):
        bf = make()
        bf.inject_join(0, 1, at=1.0)
        bf.run()
        assert bf.last_install_time(1) > 1.0
        assert bf.last_install_time(99) == 0.0
