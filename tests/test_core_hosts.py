"""Tests for the host-facing service layer (hosts -> ingress switches)."""

from __future__ import annotations

import pytest

from repro.core import DgmcNetwork, ProtocolConfig, Role
from repro.core.hosts import HostService
from repro.topo.generators import ring_network


def deployment(ctype="symmetric"):
    net = ring_network(6)
    for host, ingress in [("alice", 0), ("bob", 0), ("carol", 2), ("dave", 4)]:
        net.attach_host(host, ingress)
    dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
    if ctype == "symmetric":
        dgmc.register_symmetric(1)
    else:
        dgmc.register_asymmetric(1)
    return dgmc, HostService(dgmc)


class TestJoin:
    def test_first_host_joins_switch(self):
        dgmc, svc = deployment()
        svc.host_join("alice", 1, at=10.0)
        dgmc.run()
        assert dgmc.states_for(1)[1].member_set == frozenset({0})
        assert svc.hosts_on(0, 1) == frozenset({"alice"})

    def test_second_host_on_same_switch_is_silent(self):
        dgmc, svc = deployment()
        svc.host_join("alice", 1, at=10.0)
        svc.host_join("bob", 1, at=50.0)
        dgmc.run()
        # one switch-level event only: bob's join changed nothing network-wide
        assert dgmc.mc_event_count == 1
        assert svc.hosts_on(0, 1) == frozenset({"alice", "bob"})

    def test_hosts_on_different_switches_both_join(self):
        dgmc, svc = deployment()
        svc.host_join("alice", 1, at=10.0)
        svc.host_join("carol", 1, at=50.0)
        dgmc.run()
        assert dgmc.states_for(1)[5].member_set == frozenset({0, 2})
        assert dgmc.mc_event_count == 2

    def test_unknown_host_rejected(self):
        dgmc, svc = deployment()
        with pytest.raises(KeyError):
            svc.host_join("mallory", 1, at=10.0)

    def test_unknown_connection_rejected(self):
        dgmc, svc = deployment()
        with pytest.raises(KeyError):
            svc.host_join("alice", 99, at=10.0)

    def test_connections_of_host(self):
        dgmc, svc = deployment()
        svc.host_join("alice", 1, at=10.0)
        dgmc.run()
        assert svc.connections_of("alice") == frozenset({1})
        assert svc.connections_of("carol") == frozenset()


class TestLeave:
    def test_last_host_leave_removes_switch(self):
        dgmc, svc = deployment()
        svc.host_join("alice", 1, at=10.0)
        svc.host_join("carol", 1, at=30.0)
        svc.host_leave("alice", 1, at=100.0)
        dgmc.run()
        assert dgmc.states_for(1)[5].member_set == frozenset({2})

    def test_remaining_host_keeps_switch_joined(self):
        dgmc, svc = deployment()
        svc.host_join("alice", 1, at=10.0)
        svc.host_join("bob", 1, at=30.0)
        svc.host_join("carol", 1, at=50.0)
        svc.host_leave("alice", 1, at=100.0)
        dgmc.run()
        assert dgmc.states_for(1)[5].member_set == frozenset({0, 2})
        assert dgmc.mc_event_count == 2  # alice's leave was host-local

    def test_leave_without_join_is_ignored(self):
        dgmc, svc = deployment()
        svc.host_join("carol", 1, at=10.0)
        svc.host_leave("alice", 1, at=50.0)
        dgmc.run()
        assert dgmc.states_for(1)[0].member_set == frozenset({2})


class TestRoles:
    def test_asymmetric_roles_union(self):
        dgmc, svc = deployment(ctype="asymmetric")
        svc.host_join("alice", 1, at=10.0, role=Role.RECEIVER)
        svc.host_join("carol", 1, at=30.0, role=Role.SENDER)
        dgmc.run()
        state = dgmc.states_for(1)[4]
        assert state.members[0] == frozenset({"receiver"})
        assert state.members[2] == frozenset({"sender"})

    def test_role_widening_readvertises(self):
        dgmc, svc = deployment(ctype="asymmetric")
        svc.host_join("alice", 1, at=10.0, role=Role.RECEIVER)
        svc.host_join("carol", 1, at=20.0, role=Role.SENDER)  # makes trees exist
        svc.host_join("bob", 1, at=50.0, role=Role.SENDER)  # widens switch 0
        dgmc.run()
        state = dgmc.states_for(1)[4]
        assert state.members[0] == frozenset({"sender", "receiver"})
        assert dgmc.mc_event_count == 3  # widening cost one extra event

    def test_symmetric_default_role(self):
        dgmc, svc = deployment()
        svc.host_join("alice", 1, at=10.0)
        dgmc.run()
        state = dgmc.states_for(1)[3]
        assert state.members[0] == frozenset({"sender", "receiver"})
