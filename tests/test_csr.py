"""Differential tests for the flat-array CSR graph core.

The CSR core (:mod:`repro.lsr.csr`) must be **byte-identical** to the
dict Dijkstra -- distances, parents, settle/iteration order, routing
tables, next-hop DAGs, and masked FRR paths -- on both backends, across
disconnected graphs, equal-cost ties, and weight-patch (delta) chains up
to the shared repair horizon.  Every property here compares ``repr``
strings, so dict *iteration order* is part of the contract (the
memoization and the bench equivalence gates depend on it).

Also hosts the regression tests for the two satellite bugfixes riding
this change: the O(n) single-pass routing-table build (was a quadratic
parent-chain walk) and the shared producer/consumer delta cap (was two
independently defined ``8``s).
"""

from __future__ import annotations

import contextlib
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.frr.backup import _masked_shortest_path
from repro.lsr import csr, ispf, lsdb, spf, spfcache
from repro.lsr.csr import CsrGraph
from repro.lsr.ispf import MAX_REPAIR_CHAIN
from repro.lsr.lsa import RouterLsa
from repro.lsr.lsdb import LinkStateDatabase
from repro.lsr.spf import (
    TABLE_STEP_COUNTER,
    dijkstra_uncached,
    first_hop_table,
    next_hop_dag,
    routing_table,
)

#: Backends under test: the pure-python one always (numpy suffices), the
#: scipy one when the scientific stack is complete.
BACKENDS = ["python"] + (["scipy"] if csr.scipy_available() else [])

#: Few distinct values with repeats: maximizes equal-cost paths, the tie
#: cases where the canonical-parent and settle-order reconstruction must
#: match the dict core's heap exactly.
WEIGHTS = (0.5, 1.0, 1.0, 1.0, 2.0, 2.5)


@contextlib.contextmanager
def _env(**kv):
    saved = {k: os.environ.get(k) for k in kv}
    os.environ.update(kv)
    try:
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _random_adj(rng: random.Random, n: int, density: float):
    """A random undirected weighted graph; low density => disconnected."""
    adj = {x: {} for x in range(n)}
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                w = rng.choice(WEIGHTS)
                adj[u][v] = w
                adj[v][u] = w
    return adj


@st.composite
def graph_and_source(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**32)))
    density = draw(st.floats(min_value=0.1, max_value=0.9))
    adj = _random_adj(rng, n, density)
    source = draw(st.integers(min_value=0, max_value=n - 1))
    return adj, source


def _delta_chain(rng: random.Random, adj, length: int):
    """``length`` successive single-link deltas and the adjacency after
    each (same shapes :meth:`LinkStateDatabase.install` tracks)."""
    deltas = []
    images = []
    cur = {x: dict(nbrs) for x, nbrs in adj.items()}
    nodes = sorted(cur)
    for _ in range(length):
        pairs = [(u, v) for u in nodes for v in nodes if u < v]
        edges = [(u, v) for u, v in pairs if v in cur[u]]
        non_edges = [(u, v) for u, v in pairs if v not in cur[u]]
        kind = rng.choice(
            (["change", "remove"] if edges else []) + (["add"] if non_edges else [])
        )
        if kind == "add":
            u, v = rng.choice(non_edges)
            delta = (u, v, None, rng.choice(WEIGHTS))
        elif kind == "remove":
            u, v = rng.choice(edges)
            delta = (u, v, cur[u][v], None)
        else:
            u, v = rng.choice(edges)
            old_w = cur[u][v]
            delta = (u, v, old_w, rng.choice([w for w in WEIGHTS if w != old_w]))
        u, v, _, new_w = delta
        nxt = {x: dict(nbrs) for x, nbrs in cur.items()}
        for a, b in ((u, v), (v, u)):
            if new_w is None:
                nxt[a].pop(b, None)
            else:
                nxt[a][b] = new_w
        deltas.append(delta)
        images.append(nxt)
        cur = nxt
    return deltas, images


class TestDifferentialSolve:
    """CsrGraph solves == dijkstra_uncached, repr-for-repr."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=60, deadline=None)
    @given(case=graph_and_source())
    def test_tree_matches_dict_core(self, backend, case):
        adj, source = case
        graph = CsrGraph.from_adjacency(adj, backend=backend)
        expected = dijkstra_uncached(adj, source)
        got = graph.tree(source, count=False).dicts()
        assert repr(got) == repr(expected)

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=30, deadline=None)
    @given(case=graph_and_source())
    def test_batched_trees_match_dict_core(self, backend, case):
        adj, _ = case
        graph = CsrGraph.from_adjacency(adj, backend=backend)
        sources = sorted(adj)
        trees = graph.trees(sources, count=False)
        for s, tree in zip(sources, trees):
            assert repr(tree.dicts()) == repr(dijkstra_uncached(adj, s))

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=40, deadline=None)
    @given(case=graph_and_source())
    def test_tables_and_dags_match_via_cache(self, backend, case):
        """Through SpfCache (the production path): tables and DAGs."""
        adj, source = case
        cache = spfcache.SpfCache(adj)
        cache._csr = CsrGraph.from_adjacency(adj, backend=backend)
        cache._csr_ready = True
        assert repr(spf.dijkstra(cache, source)) == repr(
            dijkstra_uncached(adj, source)
        )
        assert repr(cache.routing_table(source)) == repr(
            routing_table(adj, source)
        )
        assert repr(next_hop_dag(cache, source)) == repr(
            next_hop_dag(adj, source)
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_relax_counter_parity(self, backend):
        """A CSR full run charges exactly the dict core's relaxations."""
        rng = random.Random(11)
        adj = _random_adj(rng, 10, 0.5)
        before = spf.RELAX_COUNTER.count
        dijkstra_uncached(adj, 0)
        dict_relax = spf.RELAX_COUNTER.count - before
        graph = CsrGraph.from_adjacency(adj, backend=backend)
        before = spf.RELAX_COUNTER.count
        graph.tree(0)
        assert spf.RELAX_COUNTER.count - before == dict_relax


class TestDifferentialPatching:
    """Weight-patched clones == fresh compiles of the post-delta image."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=40, deadline=None)
    @given(
        case=graph_and_source(),
        chain_len=st.integers(min_value=1, max_value=MAX_REPAIR_CHAIN),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_patched_matches_rebuild(self, backend, case, chain_len, seed):
        adj, source = case
        rng = random.Random(seed)
        deltas, images = _delta_chain(rng, adj, chain_len)
        graph = CsrGraph.from_adjacency(adj, backend=backend)
        patched = graph.patched(tuple(deltas), images[-1])
        if patched is None:
            # Inexpressible in this layout (an added edge): rebuild path.
            assert any(old_w is None for _, _, old_w, _ in deltas)
            return
        rebuilt = CsrGraph.from_adjacency(images[-1], backend=backend)
        assert repr(patched.tree(source, count=False).dicts()) == repr(
            rebuilt.tree(source, count=False).dicts()
        )
        assert repr(patched.tree(source, count=False).dicts()) == repr(
            dijkstra_uncached(images[-1], source)
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_kill_revive_kill_tracks_dead_slots(self, backend):
        """A slot patched out, back in, and out again counts dead once."""
        adj = {0: {1: 1.0, 2: 2.0}, 1: {0: 1.0, 2: 1.0}, 2: {0: 2.0, 1: 1.0}}
        graph = CsrGraph.from_adjacency(adj, backend=backend)
        after = {0: {2: 2.0}, 1: {2: 1.0}, 2: {0: 2.0, 1: 1.0}}
        deltas = (
            (0, 1, 1.0, None),
            (0, 1, None, 0.5),
            (0, 1, 0.5, None),
        )
        patched = graph.patched(deltas, after)
        assert patched is not None
        assert patched.weight_of(0, 1) is None
        assert patched.dead_out.dtype == np.int64
        assert int(patched.dead_out[0]) == 1
        assert int(patched.dead_out[1]) == 1
        assert repr(patched.tree(0, count=False).dicts()) == repr(
            dijkstra_uncached(after, 0)
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=30, deadline=None)
    @given(
        case=graph_and_source(),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_cache_generation_chain(self, backend, case, seed):
        """SpfCache generations linked by deltas reuse patched graphs and
        still answer byte-identically to the dict core."""
        adj, source = case
        rng = random.Random(seed)
        deltas, images = _delta_chain(rng, adj, 3)
        with _env(REPRO_CSR_BACKEND=backend, REPRO_CSR_MIN_NODES="0"):
            prev = spfcache.SpfCache(adj)
            prev.sssp(source)  # compiles the CSR core lazily
            for k, (delta, image) in enumerate(zip(deltas, images)):
                cache = spfcache.SpfCache(
                    image, generation=k + 1, prev=prev, delta=(delta,)
                )
                # The memoized answer may come from an ISPF repair, which
                # is value-identical (not order-identical) by contract.
                assert cache.sssp(source) == dijkstra_uncached(image, source)
                prev_graph = prev.csr_graph()
                graph = cache.csr_graph()
                assert graph is not None
                u, v = delta[0], delta[1]
                if prev_graph is not None and prev_graph._slot(u, v) is not None:
                    # Expressible delta: the chain patched, not rebuilt.
                    assert graph.indices is prev_graph.indices
                # A fresh solve on the (possibly patched) graph is
                # repr-identical to the dict core, order included.
                assert repr(graph.tree(source, count=False).dicts()) == repr(
                    dijkstra_uncached(image, source)
                )
                prev = cache


class TestDifferentialMaskedPath:
    """masked_path == the FRR dict-walk, edge for edge."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=40, deadline=None)
    @given(case=graph_and_source(), seed=st.integers(0, 2**32))
    def test_masked_path_matches_dict_walk(self, backend, case, seed):
        adj, source = case
        rng = random.Random(seed)
        edges = [(u, v) for u in adj for v in adj[u] if u < v]
        banned = rng.choice(edges) if edges else (0, 1)
        graph = CsrGraph.from_adjacency(adj, backend=backend)
        for target in adj:
            expected = _masked_shortest_path(adj, source, target, banned)
            assert graph.masked_path(source, target, banned) == expected


class TestRoutingTableLinear:
    """Satellite 1: the first-hop build is a single pass, not a chain walk."""

    def test_path_graph_is_linear(self):
        """n=10k path graph: total chain steps bounded by O(n), where the
        old per-destination parent-chain walk did ~n^2/2."""
        n = 10_000
        adj = {i: {} for i in range(n)}
        for i in range(n - 1):
            adj[i][i + 1] = 1.0
            adj[i + 1][i] = 1.0
        before = TABLE_STEP_COUNTER.count
        table = routing_table(adj, 0)
        steps = TABLE_STEP_COUNTER.count - before
        assert steps <= 2 * n
        assert len(table) == n - 1
        assert all(hop == 1 for hop in table.values())

    @settings(max_examples=40, deadline=None)
    @given(case=graph_and_source())
    def test_matches_naive_chain_walk(self, case):
        """The single-pass table equals the per-destination chain walk."""
        adj, source = case
        dist, parent = dijkstra_uncached(adj, source)
        naive = {}
        for dest in dist:
            if dest == source:
                continue
            hop = dest
            while parent[hop] != source:
                hop = parent[hop]
            naive[dest] = hop
        assert repr(first_hop_table(source, dist, parent)) == repr(naive)


class TestSharedDeltaCap:
    """Satellite 2: one constant caps producer tracking and consumer replay."""

    def test_single_shared_constant(self):
        assert lsdb._MAX_PENDING_DELTAS is ispf.MAX_REPAIR_CHAIN
        assert spfcache._MAX_REPAIR_CHAIN is ispf.MAX_REPAIR_CHAIN

    def _full_mesh_lsas(self, n, seq=1, tweak=None):
        lsas = []
        for origin in range(n):
            links = []
            for nbr in range(n):
                if nbr == origin:
                    continue
                delay = 1.0
                if tweak is not None and {origin, nbr} == set(tweak[:2]):
                    delay = tweak[2]
                links.append((nbr, delay, True))
            lsas.append(RouterLsa(origin, seq, tuple(links)))
        return lsas

    def _chain_run(self, installs: int):
        """Memoize one source, apply ``installs`` single-link deltas
        before the rebuild, re-query; returns the stats delta."""
        db = LinkStateDatabase(3)
        for lsa in self._full_mesh_lsas(3):
            db.install(lsa)
        image = db.adjacency()
        image.sssp(0)
        for k in range(installs):
            db.install(
                self._full_mesh_lsas(3, seq=2 + k, tweak=(0, 1, 2.0 + k))[0]
            )
        before = db.spf_stats.copy()
        new_image = db.adjacency()
        new_image.sssp(0)
        adj = {x: dict(nbrs) for x, nbrs in new_image.items()}
        assert repr(new_image.sssp(0)) == repr(dijkstra_uncached(adj, 0))
        return db.spf_stats - before

    def test_at_cap_repairs(self):
        """Exactly MAX_REPAIR_CHAIN deltas stay on the repair path."""
        diff = self._chain_run(MAX_REPAIR_CHAIN)
        assert diff.ispf_repairs >= 1
        assert diff.ispf_full_fallbacks == 0

    def test_past_cap_falls_back_exactly_once(self):
        """Nine deltas (cap + 1) degrade the sequence: the re-query pays
        exactly one full Dijkstra fallback, not one per delta."""
        diff = self._chain_run(MAX_REPAIR_CHAIN + 1)
        assert diff.ispf_full_fallbacks == 1
        assert diff.full_runs == 1
        assert diff.ispf_repairs == 0


class TestCacheEngagement:
    """SpfCache only compiles CSR above the size floor / with a backend."""

    def test_small_image_stays_on_dicts(self):
        adj = _random_adj(random.Random(3), 10, 0.6)
        with _env(REPRO_CSR_MIN_NODES="256"):
            cache = spfcache.SpfCache(adj)
            cache.sssp(0)
            assert cache.csr_graph() is None
            assert cache.sssp_tree(0) is None

    def test_backend_off_disables(self):
        adj = _random_adj(random.Random(3), 10, 0.6)
        with _env(REPRO_CSR_BACKEND="off", REPRO_CSR_MIN_NODES="0"):
            cache = spfcache.SpfCache(adj)
            cache.sssp(0)
            assert cache.csr_graph() is None

    def test_prewarm_batches_and_counts_once(self):
        adj = _random_adj(random.Random(5), 12, 0.6)
        with _env(REPRO_CSR_MIN_NODES="0"):
            cache = spfcache.SpfCache(adj)
            if cache.csr_graph() is None:  # no scipy: dict fallback path
                assert cache.prewarm(sorted(adj)) == len(adj)
                return
            before = spf.RUN_COUNTER.count
            solved = cache.prewarm(sorted(adj))
            assert solved == len(adj)
            assert spf.RUN_COUNTER.count - before == len(adj)
            assert cache.stats.misses == len(adj)
            # The trees stay in array form until someone reads them ...
            tree = cache.sssp_tree(0)
            assert tree is not None
            hits = cache.stats.hits
            # ... and materializing the dict view counts as a hit.
            assert repr(cache.sssp(0)) == repr(dijkstra_uncached(adj, 0))
            assert cache.stats.hits == hits + 1
            assert cache.prewarm(sorted(adj)) == 0

    def test_min_nodes_env_override(self):
        with _env(REPRO_CSR_MIN_NODES="7"):
            assert csr.min_nodes() == 7
        with _env(REPRO_CSR_MIN_NODES="junk"):
            assert csr.min_nodes() == csr._DEFAULT_MIN_NODES
