"""Tests for the multicast data plane: per-type delivery semantics."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    DgmcNetwork,
    JoinEvent,
    LeaveEvent,
    LinkEvent,
    ProtocolConfig,
    Role,
)
from repro.dataplane import ForwardingEngine, McPacket
from repro.topo.generators import grid_network, ring_network, waxman_network


def deployment(net=None, ctype="symmetric"):
    dgmc = DgmcNetwork(
        net or ring_network(6), ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
    )
    if ctype == "symmetric":
        dgmc.register_symmetric(1)
    elif ctype == "receiver-only":
        dgmc.register_receiver_only(1)
    else:
        dgmc.register_asymmetric(1)
    return dgmc


class TestSymmetricDelivery:
    def test_member_to_members(self):
        dgmc = deployment()
        for i, sw in enumerate([0, 2, 4]):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert record.complete
        assert record.intended == frozenset({0, 2, 4})
        assert set(record.delivered) >= {0, 2, 4}
        assert record.duplicates == 0

    def test_latency_positive_for_remote_members(self):
        dgmc = deployment(net=grid_network(1, 5))
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(4, 1), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert record.latency(0) == 0.0  # local delivery
        assert record.latency(4) == pytest.approx(4.0)  # 4 unit-delay hops

    def test_every_member_can_send(self, rng):
        net = waxman_network(20, rng)
        dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
        dgmc.register_symmetric(1)
        members = [2, 8, 14, 19]
        for i, sw in enumerate(members):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        records = [
            engine.send(McPacket(m, 1), at=200.0 + i)
            for i, m in enumerate(members)
        ]
        dgmc.run()
        assert all(r.complete for r in records)

    def test_undeliverable_without_state(self):
        dgmc = deployment()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=1.0)
        dgmc.run()
        assert record.undeliverable


class TestReceiverOnlyDelivery:
    def test_two_stage_delivery_from_non_member(self):
        # line 0-1-2-3-4; members at 3 and 4; sender 0 is off-tree.
        dgmc = deployment(net=grid_network(1, 5), ctype="receiver-only")
        dgmc.inject(JoinEvent(3, 1), at=10.0)
        dgmc.inject(JoinEvent(4, 1), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert record.complete
        assert record.intended == frozenset({3, 4})
        # stage 1 rode unicast 0->1->2->3 (3 hops) + tree hop 3->4
        assert record.hops == 4

    def test_contact_node_is_nearest_member(self):
        dgmc = deployment(net=ring_network(8), ctype="receiver-only")
        dgmc.inject(JoinEvent(2, 1), at=10.0)
        dgmc.inject(JoinEvent(6, 1), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(1, 1), at=100.0)
        dgmc.run()
        assert record.complete
        # nearest member to 1 on the ring is 2 (1 hop); delivery there first
        assert record.delivered[2] < record.delivered[6]


class TestAsymmetricDelivery:
    def test_sender_tree_reaches_receivers_only(self):
        dgmc = deployment(net=ring_network(6), ctype="asymmetric")
        dgmc.inject(JoinEvent(0, 1, role=Role.SENDER), at=10.0)
        dgmc.inject(JoinEvent(2, 1, role=Role.RECEIVER), at=20.0)
        dgmc.inject(JoinEvent(4, 1, role=Role.RECEIVER), at=30.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert record.intended == frozenset({2, 4})
        assert record.complete
        # the sender itself is not a receiver
        assert 0 not in record.delivered or record.intended != {0}

    def test_non_sender_has_no_tree(self):
        dgmc = deployment(net=ring_network(6), ctype="asymmetric")
        dgmc.inject(JoinEvent(0, 1, role=Role.SENDER), at=10.0)
        dgmc.inject(JoinEvent(2, 1, role=Role.RECEIVER), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        # switch 4 never joined as sender: no source-rooted tree for it
        record = engine.send(McPacket(4, 1), at=100.0)
        dgmc.run()
        assert record.delivery_ratio < 1.0 or record.undeliverable


class TestChurnDisruption:
    def test_steady_state_is_loss_free(self, rng):
        net = waxman_network(25, rng)
        dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
        dgmc.register_symmetric(1)
        members = [1, 7, 13, 19]
        for i, sw in enumerate(members):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        for i in range(10):
            engine.send(McPacket(members[i % 4], 1), at=200.0 + 10.0 * i)
        dgmc.run()
        assert engine.report.mean_delivery_ratio == 1.0
        assert engine.report.total_duplicates == 0

    def test_packets_after_link_failure_use_new_tree(self):
        dgmc = deployment(net=ring_network(6))
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(1, 1), at=20.0)
        dgmc.run()
        dgmc.inject(LinkEvent(0, 0, 1, up=False), at=50.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert record.complete
        # the direct link is dead; delivery must take the long way (4 hops)
        assert record.hops >= 4

    def test_mid_reconvergence_packets_reported_not_crashed(self):
        # inject a packet while the join burst is still converging: the
        # engine must account for it (possibly incomplete), never raise.
        dgmc = deployment(net=ring_network(8))
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.run()
        for sw in (2, 4, 6):
            dgmc.inject(JoinEvent(sw, 1), at=100.0)
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=100.4)
        dgmc.run()
        assert 0.0 <= record.delivery_ratio <= 1.0


class TestReport:
    def test_aggregates(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(3, 1), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        for i in range(3):
            engine.send(McPacket(0, 1), at=100.0 + i)
        dgmc.run()
        report = engine.report
        assert report.packets == 3
        assert report.complete_deliveries == 3
        assert report.mean_delivery_ratio == 1.0
        assert report.total_hops > 0

    def test_fixed_hop_delay(self):
        dgmc = deployment(net=grid_network(1, 3))
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(2, 1), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc, hop_delay=5.0)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert record.latency(2) == pytest.approx(10.0)
