"""Tests for the multicast data plane: per-type delivery semantics.

The second half of the file covers the batched engine: compiled-state
forwarding must be delivery-for-delivery identical to the per-packet
reference engine at every quiescent dispatch point -- unit cases first,
then a Hypothesis property over random topologies, connection types,
membership interleavings, and TTL settings.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DgmcNetwork,
    JoinEvent,
    LeaveEvent,
    LinkEvent,
    ProtocolConfig,
    Role,
)
from repro.dataplane import BatchForwardingEngine, ForwardingEngine, McPacket
from repro.topo.generators import grid_network, ring_network, waxman_network


def deployment(net=None, ctype="symmetric"):
    dgmc = DgmcNetwork(
        net or ring_network(6), ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)
    )
    if ctype == "symmetric":
        dgmc.register_symmetric(1)
    elif ctype == "receiver-only":
        dgmc.register_receiver_only(1)
    else:
        dgmc.register_asymmetric(1)
    return dgmc


class TestSymmetricDelivery:
    def test_member_to_members(self):
        dgmc = deployment()
        for i, sw in enumerate([0, 2, 4]):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert record.complete
        assert record.intended == frozenset({0, 2, 4})
        assert set(record.delivered) >= {0, 2, 4}
        assert record.duplicates == 0

    def test_latency_positive_for_remote_members(self):
        dgmc = deployment(net=grid_network(1, 5))
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(4, 1), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert record.latency(0) == 0.0  # local delivery
        assert record.latency(4) == pytest.approx(4.0)  # 4 unit-delay hops

    def test_every_member_can_send(self, rng):
        net = waxman_network(20, rng)
        dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
        dgmc.register_symmetric(1)
        members = [2, 8, 14, 19]
        for i, sw in enumerate(members):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        records = [
            engine.send(McPacket(m, 1), at=200.0 + i)
            for i, m in enumerate(members)
        ]
        dgmc.run()
        assert all(r.complete for r in records)

    def test_undeliverable_without_state(self):
        dgmc = deployment()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=1.0)
        dgmc.run()
        assert record.undeliverable


class TestReceiverOnlyDelivery:
    def test_two_stage_delivery_from_non_member(self):
        # line 0-1-2-3-4; members at 3 and 4; sender 0 is off-tree.
        dgmc = deployment(net=grid_network(1, 5), ctype="receiver-only")
        dgmc.inject(JoinEvent(3, 1), at=10.0)
        dgmc.inject(JoinEvent(4, 1), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert record.complete
        assert record.intended == frozenset({3, 4})
        # stage 1 rode unicast 0->1->2->3 (3 hops) + tree hop 3->4
        assert record.hops == 4

    def test_contact_node_is_nearest_member(self):
        dgmc = deployment(net=ring_network(8), ctype="receiver-only")
        dgmc.inject(JoinEvent(2, 1), at=10.0)
        dgmc.inject(JoinEvent(6, 1), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(1, 1), at=100.0)
        dgmc.run()
        assert record.complete
        # nearest member to 1 on the ring is 2 (1 hop); delivery there first
        assert record.delivered[2] < record.delivered[6]


class TestAsymmetricDelivery:
    def test_sender_tree_reaches_receivers_only(self):
        dgmc = deployment(net=ring_network(6), ctype="asymmetric")
        dgmc.inject(JoinEvent(0, 1, role=Role.SENDER), at=10.0)
        dgmc.inject(JoinEvent(2, 1, role=Role.RECEIVER), at=20.0)
        dgmc.inject(JoinEvent(4, 1, role=Role.RECEIVER), at=30.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert record.intended == frozenset({2, 4})
        assert record.complete
        # the sender itself is not a receiver
        assert 0 not in record.delivered or record.intended != {0}

    def test_non_sender_has_no_tree(self):
        dgmc = deployment(net=ring_network(6), ctype="asymmetric")
        dgmc.inject(JoinEvent(0, 1, role=Role.SENDER), at=10.0)
        dgmc.inject(JoinEvent(2, 1, role=Role.RECEIVER), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        # switch 4 never joined as sender: no source-rooted tree for it
        record = engine.send(McPacket(4, 1), at=100.0)
        dgmc.run()
        assert record.delivery_ratio < 1.0 or record.undeliverable


class TestChurnDisruption:
    def test_steady_state_is_loss_free(self, rng):
        net = waxman_network(25, rng)
        dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
        dgmc.register_symmetric(1)
        members = [1, 7, 13, 19]
        for i, sw in enumerate(members):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        for i in range(10):
            engine.send(McPacket(members[i % 4], 1), at=200.0 + 10.0 * i)
        dgmc.run()
        assert engine.report.mean_delivery_ratio == 1.0
        assert engine.report.total_duplicates == 0

    def test_packets_after_link_failure_use_new_tree(self):
        dgmc = deployment(net=ring_network(6))
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(1, 1), at=20.0)
        dgmc.run()
        dgmc.inject(LinkEvent(0, 0, 1, up=False), at=50.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert record.complete
        # the direct link is dead; delivery must take the long way (4 hops)
        assert record.hops >= 4

    def test_mid_reconvergence_packets_reported_not_crashed(self):
        # inject a packet while the join burst is still converging: the
        # engine must account for it (possibly incomplete), never raise.
        dgmc = deployment(net=ring_network(8))
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.run()
        for sw in (2, 4, 6):
            dgmc.inject(JoinEvent(sw, 1), at=100.0)
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=100.4)
        dgmc.run()
        assert 0.0 <= record.delivery_ratio <= 1.0


class TestTtlGuard:
    def test_ttl_zero_drops_at_source(self):
        dgmc = deployment(net=grid_network(1, 5))
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(4, 1), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc, ttl=0)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        # Local delivery still happens; the single eligible out-edge is
        # suppressed and counted exactly once.
        assert set(record.delivered) == {0}
        assert record.ttl_drops == 1
        assert record.hops == 0

    def test_ttl_exhausts_mid_tree(self):
        # line 0-1-2-3-4: reaching 4 takes 4 hops; ttl=2 dies at switch 2.
        dgmc = deployment(net=grid_network(1, 5))
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(4, 1), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc, ttl=2)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert set(record.delivered) == {0}
        assert record.ttl_drops == 1
        assert record.hops == 2

    def test_ttl_zero_drops_unicast_stage(self):
        dgmc = deployment(net=grid_network(1, 5), ctype="receiver-only")
        dgmc.inject(JoinEvent(3, 1), at=10.0)
        dgmc.inject(JoinEvent(4, 1), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc, ttl=0)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert not record.delivered
        assert record.ttl_drops == 1

    def test_default_ttl_is_generous(self):
        dgmc = deployment(net=ring_network(6))
        for i, sw in enumerate([0, 2, 4]):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert record.complete
        assert record.ttl_drops == 0
        assert engine.report.total_ttl_drops == 0


def record_key(record):
    """Every observable field of a delivery record, times included."""
    return (
        record.undeliverable,
        record.intended,
        record.hops,
        record.duplicates,
        record.ttl_drops,
        tuple(sorted(record.delivered.items())),
    )


def assert_batched_matches_reference(dgmc, flows, *, ttl=None, hop_delay=None):
    """Dispatch ``flows`` through both engines at one quiescent point."""
    batched = BatchForwardingEngine(dgmc, hop_delay=hop_delay, ttl=ttl)
    reference = ForwardingEngine(dgmc, hop_delay=hop_delay, ttl=ttl)
    at = dgmc.sim.now + 1.0
    batch_records = batched.dispatch(
        [McPacket(src, m) for src, m in flows], at=at
    )
    ref_records = [
        reference.send(McPacket(src, m), at=at) for src, m in flows
    ]
    dgmc.run()
    for ref, bat in zip(ref_records, batch_records):
        assert record_key(ref) == record_key(bat)
    return batched


class TestBatchedEngine:
    def test_matches_reference_symmetric(self):
        dgmc = deployment()
        for i, sw in enumerate([0, 2, 4]):
            dgmc.inject(JoinEvent(sw, 1), at=10.0 * (i + 1))
        dgmc.run()
        assert_batched_matches_reference(dgmc, [(0, 1), (2, 1), (4, 1)])

    def test_matches_reference_receiver_only(self):
        dgmc = deployment(net=grid_network(1, 5), ctype="receiver-only")
        dgmc.inject(JoinEvent(3, 1), at=10.0)
        dgmc.inject(JoinEvent(4, 1), at=20.0)
        dgmc.run()
        # off-tree senders ride the two-stage unicast path
        assert_batched_matches_reference(dgmc, [(0, 1), (3, 1)])

    def test_matches_reference_asymmetric(self):
        dgmc = deployment(net=ring_network(6), ctype="asymmetric")
        dgmc.inject(JoinEvent(0, 1, role=Role.SENDER), at=10.0)
        dgmc.inject(JoinEvent(2, 1, role=Role.RECEIVER), at=20.0)
        dgmc.inject(JoinEvent(4, 1, role=Role.RECEIVER), at=30.0)
        dgmc.run()
        # sender 0 has a source tree; 4 (receiver role) does not
        assert_batched_matches_reference(dgmc, [(0, 1), (4, 1)])

    def test_matches_reference_with_ttl(self):
        dgmc = deployment(net=grid_network(1, 5))
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(4, 1), at=20.0)
        dgmc.run()
        for ttl in (0, 2, None):
            assert_batched_matches_reference(dgmc, [(0, 1)], ttl=ttl)

    def test_undeliverable_without_state(self):
        dgmc = deployment()
        assert_batched_matches_reference(dgmc, [(0, 1)])

    def test_invalidates_on_membership_install(self):
        dgmc = deployment(net=ring_network(8))
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(2, 1), at=20.0)
        dgmc.run()
        engine = assert_batched_matches_reference(dgmc, [(0, 1)])
        before = engine._template(1, 0)
        dgmc.inject(JoinEvent(5, 1), at=dgmc.sim.now + 10.0)
        dgmc.run()
        # the install log advanced: the next dispatch recompiles and the
        # new member appears in the deliveries
        record = engine.dispatch([McPacket(0, 1)], at=dgmc.sim.now + 1.0)[0]
        assert 5 in record.delivered
        assert engine._template(1, 0) is not before

    def test_invalidates_on_link_event(self):
        dgmc = deployment(net=ring_network(6))
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(1, 1), at=20.0)
        dgmc.run()
        engine = assert_batched_matches_reference(dgmc, [(0, 1)])
        dgmc.inject(LinkEvent(0, 0, 1, up=False), at=dgmc.sim.now + 10.0)
        dgmc.run()
        # liveness is baked into the compiled arrays: the Network.version
        # bump must drop them, and the re-dispatch matches the reference
        # on the repaired tree (the long way around the ring)
        assert_batched_matches_reference(dgmc, [(0, 1)])
        record = engine.dispatch([McPacket(0, 1)], at=dgmc.sim.now + 1.0)[0]
        assert record.complete
        assert record.hops >= 4

    def test_explicit_invalidate_recompiles(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(3, 1), at=20.0)
        dgmc.run()
        engine = BatchForwardingEngine(dgmc)
        engine.dispatch([McPacket(0, 1)], at=dgmc.sim.now + 1.0)
        assert engine._compiled
        engine.invalidate()
        assert not engine._compiled
        engine.invalidate(1)  # idempotent on absent state
        assert_batched_matches_reference(dgmc, [(0, 1)])

    def test_dataplane_counters(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(3, 1), at=20.0)
        dgmc.run()
        engine = BatchForwardingEngine(dgmc)
        packets = [McPacket(0, 1) for _ in range(4)]
        engine.dispatch(packets, at=dgmc.sim.now + 1.0)
        samples = dgmc.metrics.snapshot()
        assert samples["dataplane_batches_total"] == 1
        assert samples["dataplane_packets_total"] == 4
        assert samples["dataplane_compiled_connections_total"] == 1
        assert samples["dataplane_template_builds_total"] == 1
        # one build, three same-flow hits
        assert samples["dataplane_template_hits_total"] == 3

    def test_batch_dispatch_span_emitted(self):
        from repro.obs.tracer import RingBufferSink, Tracer, use_tracer

        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(3, 1), at=20.0)
        dgmc.run()
        tracer = Tracer(enabled=True)
        sink = RingBufferSink()
        tracer.add_sink(sink)
        with use_tracer(tracer):
            engine = BatchForwardingEngine(dgmc)
            engine.dispatch([McPacket(0, 1)], at=dgmc.sim.now + 1.0)
        names = [e.name for e in sink.events()]
        assert "batch_dispatch" in names

    def test_send_is_single_packet_dispatch(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(3, 1), at=20.0)
        dgmc.run()
        engine = BatchForwardingEngine(dgmc)
        record = engine.send(McPacket(0, 1), at=dgmc.sim.now + 1.0)
        assert record.complete
        assert engine.report.packets == 1


@st.composite
def equivalence_runs(draw):
    """Random topology + churn interleaving + dispatch plan."""
    n = draw(st.integers(5, 14))
    topo_seed = draw(st.integers(0, 4000))
    ctype = draw(
        st.sampled_from(["symmetric", "receiver-only", "asymmetric"])
    )
    steps = draw(st.integers(1, 3))
    churn_seed = draw(st.integers(0, 4000))
    ttl = draw(st.sampled_from([None, None, 0, 3]))
    return n, topo_seed, ctype, steps, churn_seed, ttl


@given(equivalence_runs())
@settings(max_examples=25, deadline=None)
def test_batched_engine_equals_reference_under_churn(run):
    """The PR's core property: at every quiescent point of a random
    churn interleaving, batched records equal reference records field
    for field -- exact delivery timestamps included."""
    n, topo_seed, ctype, steps, churn_seed, ttl = run
    net = waxman_network(n, random.Random(topo_seed))
    dgmc = deployment(net=net, ctype=ctype)
    rng = random.Random(churn_seed)
    members: set[int] = set()
    roles = (
        [Role.SENDER, Role.RECEIVER, Role.BOTH]
        if ctype == "asymmetric"
        else [None]
    )
    for _ in range(steps):
        for _ in range(rng.randint(1, 4)):
            t = dgmc.sim.now + 1.0 + rng.random() * 5.0
            absent = [x for x in range(n) if x not in members]
            if absent and (len(members) < 2 or rng.random() < 0.6):
                sw = rng.choice(absent)
                dgmc.inject(JoinEvent(sw, 1, role=rng.choice(roles)), at=t)
                members.add(sw)
            else:
                sw = rng.choice(sorted(members))
                dgmc.inject(LeaveEvent(sw, 1), at=t)
                members.discard(sw)
        dgmc.run()  # quiesce: the equivalence contract's dispatch point
        sources = rng.sample(range(n), min(n, 4))
        assert_batched_matches_reference(
            dgmc, [(src, 1) for src in sources], ttl=ttl
        )


class TestReport:
    def test_aggregates(self):
        dgmc = deployment()
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(3, 1), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc)
        for i in range(3):
            engine.send(McPacket(0, 1), at=100.0 + i)
        dgmc.run()
        report = engine.report
        assert report.packets == 3
        assert report.complete_deliveries == 3
        assert report.mean_delivery_ratio == 1.0
        assert report.total_hops > 0

    def test_fixed_hop_delay(self):
        dgmc = deployment(net=grid_network(1, 3))
        dgmc.inject(JoinEvent(0, 1), at=10.0)
        dgmc.inject(JoinEvent(2, 1), at=20.0)
        dgmc.run()
        engine = ForwardingEngine(dgmc, hop_delay=5.0)
        record = engine.send(McPacket(0, 1), at=100.0)
        dgmc.run()
        assert record.latency(2) == pytest.approx(10.0)
