"""Tests for topology validation."""

from __future__ import annotations

import pytest

from repro.topo.graph import Network
from repro.topo.validate import TopologyError, validate_network


def test_valid_network_passes():
    net = Network(3)
    net.add_link(0, 1)
    net.add_link(1, 2)
    validate_network(net)


def test_disconnected_rejected():
    net = Network(3)
    net.add_link(0, 1)
    with pytest.raises(TopologyError, match="not connected"):
        validate_network(net)


def test_disconnected_allowed_when_not_required():
    net = Network(3)
    net.add_link(0, 1)
    validate_network(net, require_connected=False)


def test_down_links_break_connectivity():
    net = Network(3)
    net.add_link(0, 1)
    net.add_link(1, 2)
    net.set_link_state(1, 2, up=False)
    with pytest.raises(TopologyError):
        validate_network(net)


def test_mutated_delay_caught():
    net = Network(2)
    link = net.add_link(0, 1)
    link.delay = -1.0  # direct mutation bypassing add_link's check
    with pytest.raises(TopologyError, match="delay"):
        validate_network(net, require_connected=False)
