"""Chaos soak harness: seeded schedules and a small end-to-end soak."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.lsa import McEvent, McLsa
from repro.net.chaos import (
    ChaosAction,
    ChaosSettings,
    build_schedule,
    run_chaos_soak_sync,
)
from repro.net.fabric import LiveFabric
from repro.topo.graph import Network


def replay(n: int, seed: int, count: int, members: set) -> list:
    return build_schedule(n, random.Random(seed), count, set(members))


class TestBuildSchedule:
    def test_same_seed_same_schedule(self):
        a = replay(12, 1996, 20, {0, 1, 2, 3})
        b = replay(12, 1996, 20, {0, 1, 2, 3})
        assert a == b

    def test_different_seed_different_schedule(self):
        a = replay(12, 1, 20, {0, 1, 2, 3})
        b = replay(12, 2, 20, {0, 1, 2, 3})
        assert a != b

    @pytest.mark.parametrize("seed", range(10))
    def test_guarantees_and_feasibility(self, seed):
        n = 12
        actions = replay(n, seed, 20, {0, 1, 2, 3})
        kinds = [a.kind for a in actions]
        # Acceptance-critical cycles are always present.
        assert "crash" in kinds and "restart" in kinds
        assert "partition" in kinds and "heal" in kinds
        assert "race" in kinds  # the reorder hazard fires in every soak
        # Replay the schedule symbolically: it must be feasible throughout
        # and end at a stable point.
        crashed: set = set()
        partitioned = False
        roster = {0, 1, 2, 3}
        for action in actions:
            if action.kind == "crash":
                assert action.target not in crashed
                crashed.add(action.target)
            elif action.kind == "restart":
                assert action.target in crashed
                crashed.discard(action.target)
            elif action.kind == "partition":
                assert not partitioned
                assert len(action.groups) == 2
                side, rest = (set(g) for g in action.groups)
                assert side | rest == set(range(n)) and not (side & rest)
                assert len(side) >= 2 and len(rest) >= 2
                partitioned = True
            elif action.kind == "heal":
                assert partitioned
                partitioned = False
            elif action.kind == "join":
                assert action.target not in roster
                roster.add(action.target)
            else:
                # A race is a leave plus an adjacent link flap from the
                # same switch -- roster-wise it behaves like a leave.
                assert action.kind in ("leave", "race")
                assert action.target in roster
                roster.discard(action.target)
                assert len(roster) >= 2
                if action.kind == "race":
                    assert not partitioned
        assert not crashed and not partitioned

    def test_small_net_never_partitions(self):
        """n < 4 cannot form two groups of >= 2, so no partition is drawn."""
        for seed in range(5):
            actions = replay(3, seed, 10, {0, 1})
            assert all(a.kind != "partition" for a in actions)

    def test_describe(self):
        assert ChaosAction("crash", 3).describe() == "crash 3"
        assert ChaosAction("heal").describe() == "heal"
        part = ChaosAction("partition", groups=((0, 1), (2, 3)))
        assert part.describe() == "partition0,1|2,3"


class TestChaosSettings:
    def test_live_config_carries_knobs(self):
        cfg = ChaosSettings(loss=0.25, duplicate_rate=0.05, seed=7).live_config()
        assert cfg.faults is not None
        assert cfg.faults.loss == 0.25
        assert cfg.faults.duplicate_rate == 0.05
        assert cfg.faults.seed == 7
        assert cfg.hello_interval > 0
        assert cfg.dead_interval > cfg.hello_interval


class TestCrashBlackhole:
    def test_send_toward_crashed_host_leaves_no_pending_state(self):
        """A crash must not let later traffic arm the retransmit budget:
        frames toward the corpse fail fast instead of wedging quiescence
        for ~12s of exponential backoff."""

        async def run():
            net = Network(3)
            for u, v in ((0, 1), (1, 2), (2, 0)):
                net.add_link(u, v, delay=1.0)
            fabric = LiveFabric(net)
            await fabric.start()
            try:
                await fabric.crash(2)
                before = dict(fabric.transport.counters())
                fabric.transport.send(
                    0, 2, McLsa(0, McEvent.LEAVE, 1, None, (1,))
                )
                pending = [
                    key for key in fabric.transport.pending_keys()
                    if key[1] == 2
                ]
                return pending, before, dict(fabric.transport.counters())
            finally:
                await fabric.shutdown()

        pending, before, after = asyncio.run(run())
        assert pending == []
        assert (
            after["live_blackholed_total"]
            >= before["live_blackholed_total"] + 1
        )
        assert (
            after["live_delivery_failures_total"]
            >= before["live_delivery_failures_total"] + 1
        )


class TestSoakSmoke:
    def test_small_seeded_soak_settles(self):
        report = run_chaos_soak_sync(
            ChaosSettings(switches=6, seed=7, actions=8, quiesce_timeout=30.0)
        )
        assert report.ok, report.violations
        assert report.checks >= 1
        assert report.crash_count >= 1
        assert report.restarted  # at least one cold restart happened
        # Resync rebuilt the restarted switches: handshakes really ran.
        assert report.counters["resync_dbd_sent_total"] >= 1
        assert report.counters["live_hellos_sent_total"] >= 1
        assert report.prom  # Prometheus dump for the CI artifact

    def test_report_summary_mentions_seed(self):
        report = run_chaos_soak_sync(
            ChaosSettings(switches=6, seed=7, actions=8, quiesce_timeout=30.0)
        )
        text = "\n".join(report.summary_lines())
        assert "seed 7" in text
        assert "violations: 0" in text
