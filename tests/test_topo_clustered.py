"""Tests for the clustered (hierarchy-shaped) topology generator."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.hier import AreaPlan
from repro.topo.generators import clustered_network
from repro.topo.validate import validate_network


class TestClusteredNetwork:
    def test_shape_and_assignment(self, rng):
        net, assignment = clustered_network(3, 10, rng)
        assert net.n == 30
        assert set(assignment.values()) == {0, 1, 2}
        assert all(assignment[x] == x // 10 for x in net.switches())
        validate_network(net)

    def test_intra_cluster_connectivity(self, rng):
        net, assignment = clustered_network(4, 8, rng)
        # removing all trunks leaves each cluster internally connected
        for link in list(net.links()):
            if assignment[link.u] != assignment[link.v]:
                net.set_link_state(*link.key, up=False)
        for c in range(4):
            ids = [x for x in net.switches() if assignment[x] == c]
            dist = net.hop_distances(ids[0])
            assert set(ids) <= set(dist)

    def test_few_trunks(self, rng):
        net, assignment = clustered_network(4, 12, rng, inter_links_per_pair=1)
        trunks = [
            l for l in net.links() if assignment[l.u] != assignment[l.v]
        ]
        assert len(trunks) <= 4  # ring of clusters

    def test_two_clusters_single_pair(self, rng):
        net, assignment = clustered_network(2, 6, rng)
        trunks = [
            l for l in net.links() if assignment[l.u] != assignment[l.v]
        ]
        assert len(trunks) == 1

    def test_usable_as_area_plan(self, rng):
        net, assignment = clustered_network(3, 9, rng)
        plan = AreaPlan(net, assignment)
        # trunk endpoints only -> tiny backbone
        assert plan.backbone.n <= 6

    def test_rejects_tiny(self, rng):
        with pytest.raises(ValueError):
            clustered_network(1, 10, rng)
        with pytest.raises(ValueError):
            clustered_network(2, 1, rng)

    @given(st.integers(2, 5), st.integers(2, 12), st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_always_connected(self, clusters, size, seed):
        net, _ = clustered_network(clusters, size, random.Random(seed))
        assert net.is_connected()
