"""Workload generators for the simulation study.

Section 4.1: "Two event-generating methods are used.  In the first, events
are clustered in a short period of time and conflict with each other.
Such very busy periods may be found at the beginning period of a
multi-party conversation.  In the second event-generating method, events
are relatively evenly distributed over long periods of time."

* :mod:`repro.workloads.membership` -- bursty and sparse (Poisson)
  join/leave event schedules,
* :mod:`repro.workloads.traffic` -- datagram schedules for the MOSPF
  baseline (data-driven computations need data),
* :mod:`repro.workloads.scenario` -- bundling of a topology, a connection,
  and an event schedule into one runnable scenario,
* :mod:`repro.workloads.zipf` -- Zipf-popularity group churn and traffic
  batches with converged many-group bring-up, for the batched data plane.
"""

from repro.workloads.membership import (
    MembershipSchedule,
    ScheduledEvent,
    bursty_schedule,
    sparse_schedule,
)
from repro.workloads.traffic import datagram_schedule_after_events
from repro.workloads.scenario import Scenario
from repro.workloads.failures import FailureInjector, FailureRecord
from repro.workloads.zipf import (
    ConvergedGroups,
    ZipfWorkload,
    zipf_churn_workload,
)

__all__ = [
    "ScheduledEvent",
    "MembershipSchedule",
    "bursty_schedule",
    "sparse_schedule",
    "datagram_schedule_after_events",
    "Scenario",
    "FailureInjector",
    "FailureRecord",
    "ZipfWorkload",
    "zipf_churn_workload",
    "ConvergedGroups",
]
