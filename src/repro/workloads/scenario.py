"""A scenario bundles everything one simulation trial needs.

The harness (:mod:`repro.harness.experiment`) executes scenarios against
D-GMC or a baseline protocol and extracts the paper's metrics.  The
scenario itself is pure data: the physical network, the connection type,
the membership schedule, and the timing parameters Tc (topology
computation time) and the per-hop LSA delay that together set the paper's
Tf-to-Tc ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.topo.graph import Network
from repro.workloads.membership import MembershipSchedule


@dataclass
class Scenario:
    """One runnable simulation trial."""

    net: Network
    schedule: MembershipSchedule
    connection_type: str = "symmetric"
    connection_id: int = 1
    #: Tc: time for one topology computation.
    compute_time: float = 1.0
    #: Fixed per-hop LSA transmission time (None = use link delays).
    per_hop_delay: Optional[float] = 0.05
    #: Free-form label for reports.
    label: str = ""

    def flooding_diameter(self) -> float:
        """Tf: the worst-case flooding completion time for this network."""
        return self.net.flooding_diameter(per_hop_delay=self.per_hop_delay)

    @property
    def round_length(self) -> float:
        """The paper's *round*: Tf + Tc."""
        return self.flooding_diameter() + self.compute_time

    def describe(self) -> str:
        tf = self.flooding_diameter()
        return (
            f"Scenario({self.label or 'unnamed'}: n={self.net.n}, "
            f"{self.connection_type}, events={len(self.schedule.events)}, "
            f"Tc={self.compute_time:g}, Tf={tf:g})"
        )
