"""Membership-event schedules: bursty clusters and sparse Poisson streams.

A schedule is a list of :class:`ScheduledEvent` (time, switch, join/leave)
for one connection, generated so it is always *feasible*: a switch joins
only while absent and leaves only while present, and the schedule never
empties the connection mid-run (the last member never leaves), so every
event truly changes membership and the "per event" metrics are clean.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set


@dataclass(frozen=True)
class ScheduledEvent:
    """One membership event in a workload schedule."""

    time: float
    switch: int
    join: bool


@dataclass
class MembershipSchedule:
    """An event schedule plus the initial member set it assumes."""

    initial_members: frozenset
    events: List[ScheduledEvent]

    @property
    def span(self) -> float:
        """Time of the last event (0 for an empty schedule)."""
        return self.events[-1].time if self.events else 0.0

    def final_members(self) -> frozenset:
        members = set(self.initial_members)
        for ev in self.events:
            if ev.join:
                members.add(ev.switch)
            else:
                members.discard(ev.switch)
        return frozenset(members)

    def validate(self) -> None:
        """Raise ValueError if the schedule is infeasible."""
        members: Set[int] = set(self.initial_members)
        last_time = 0.0
        for ev in self.events:
            if ev.time < last_time:
                raise ValueError("events out of chronological order")
            last_time = ev.time
            if ev.join:
                if ev.switch in members:
                    raise ValueError(f"switch {ev.switch} joins twice")
                members.add(ev.switch)
            else:
                if ev.switch not in members:
                    raise ValueError(f"switch {ev.switch} leaves while absent")
                if len(members) == 1:
                    raise ValueError("schedule empties the connection")
                members.remove(ev.switch)


def _feasible_events(
    n: int,
    count: int,
    times: List[float],
    rng: random.Random,
    initial_members: frozenset,
    join_fraction: float,
) -> List[ScheduledEvent]:
    """Draw feasible join/leave events at the given (sorted) times."""
    members: Set[int] = set(initial_members)
    events: List[ScheduledEvent] = []
    for t in times:
        absent = [x for x in range(n) if x not in members]
        can_leave = len(members) > 1
        can_join = bool(absent)
        if not can_join and not can_leave:
            raise ValueError("no feasible event exists (network too small)")
        if can_join and (not can_leave or rng.random() < join_fraction):
            switch = rng.choice(absent)
            members.add(switch)
            events.append(ScheduledEvent(t, switch, True))
        else:
            switch = rng.choice(sorted(members))
            members.remove(switch)
            events.append(ScheduledEvent(t, switch, False))
    return events


def bursty_schedule(
    n: int,
    rng: random.Random,
    count: int = 10,
    window: float = 1.0,
    start: float = 0.0,
    initial_members: Optional[frozenset] = None,
    join_fraction: float = 0.7,
) -> MembershipSchedule:
    """Events clustered uniformly inside ``[start, start + window]``.

    "Such very busy periods may be found at the beginning period of a
    multi-party conversation" -- so the default bias is toward joins.
    ``window`` should be on the order of a round (Tf + Tc) or less for the
    events to genuinely conflict.
    """
    if initial_members is None:
        initial_members = frozenset([rng.randrange(n)])
    times = sorted(start + rng.random() * window for _ in range(count))
    events = _feasible_events(n, count, times, rng, initial_members, join_fraction)
    schedule = MembershipSchedule(initial_members, events)
    schedule.validate()
    return schedule


def sparse_schedule(
    n: int,
    rng: random.Random,
    count: int = 20,
    mean_gap: float = 50.0,
    start: float = 0.0,
    initial_members: Optional[frozenset] = None,
    join_fraction: float = 0.5,
) -> MembershipSchedule:
    """Poisson event stream: exponential inter-arrival with ``mean_gap``.

    ``mean_gap`` should be much larger than a round so "most of the events
    are sufficiently separated that they are handled individually".
    """
    if initial_members is None:
        initial_members = frozenset([rng.randrange(n)])
    times = []
    t = start
    for _ in range(count):
        t += rng.expovariate(1.0 / mean_gap)
        times.append(t)
    events = _feasible_events(n, count, times, rng, initial_members, join_fraction)
    schedule = MembershipSchedule(initial_members, events)
    schedule.validate()
    return schedule
