"""The curated scenarios the systematic explorer runs on.

Each scenario is designed around one arbitration hazard; the two race
scenarios are small enough to explore exhaustively (the CI gate asserts
exhaustion), the others run under a transition budget:

* ``membership-race`` -- the hazard that forced the membership-ordering
  vector M: a leave and a link failure fire back-to-back at the same
  switch, and the link-event LSA (higher event index) can overtake the
  leave LSA in flight.  A receiver applying membership only "when the LSA
  advances R" then silently discards the leave -- member lists diverge
  forever.  With the M vector the reordered leave still applies.
* ``degraded-repair`` -- the hazard that forced degraded-tree repair on
  link-up: the only path to a member fails, the re-proposed tree
  legitimately omits the unreachable member, and when the link recovers
  nothing re-proposes (the paper treats recovery as a non-event) --
  the installed tree permanently fails ``spans``.
* ``triple-conflict`` -- three concurrent joins on a triangle: the
  maximal 3-switch proposal-conflict workload (equal-stamp arbitration,
  withdrawal, triggered proposals).  Its state space exceeds 5M
  transitions, so the CI gate explores it under a budget in
  deterministic DFS order rather than to exhaustion.
* ``frr-inflight-repair`` -- fast reroute composing with the in-flight
  repair guard: a tree-edge failure lands while a join's Tc compute
  window is open *and* a backup fragment is active.  The reconciling
  install must retire the fragment without ever installing against a
  stale stamp; because backup state is excluded from canonical
  fingerprints, the explored state space must be isomorphic to a no-FRR
  run of the same schedule.
* ``ring4-churn`` / ``mesh5-link-storm`` -- 4- and 5-switch nightly
  scenarios: churn and link flaps on topologies with redundant paths,
  too large for exhaustion, explored under budget (guided or bounded
  DFS) with loss branching enabled in the nightly workflow.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.stress.model import ScenarioEvent, StressScenario

#: Exhaustively explored in the CI gate (3 switches each).
GATE_SCENARIOS: Tuple[str, ...] = (
    "membership-race",
    "degraded-repair",
    "triple-conflict",
)

#: Budget-bounded nightly scenarios (4-5 switches).
DEEP_SCENARIOS: Tuple[str, ...] = ("ring4-churn", "mesh5-link-storm")


def _triangle(
    name: str,
    description: str,
    initial_members: Tuple[int, ...],
    events: Tuple[ScenarioEvent, ...],
) -> StressScenario:
    return StressScenario(
        name=name,
        description=description,
        switches=3,
        links=((0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)),
        initial_members=initial_members,
        events=events,
    )


MEMBERSHIP_RACE = _triangle(
    "membership-race",
    "leave(0) races its own link(0,2) failure; the link LSA can overtake "
    "the leave LSA at switch 2 (re-derives the M-vector deviation)",
    initial_members=(0, 2),
    events=(
        ScenarioEvent("leave", 0),
        ScenarioEvent("link", 0, u=0, v=2, up=False),
    ),
)

DEGRADED_REPAIR = StressScenario(
    name="degraded-repair",
    description="the only path to member 2 fails and recovers; without "
    "degraded-tree repair the recovery is a non-event and the installed "
    "tree never spans the members again (re-derives the link-up repair "
    "deviation)",
    switches=3,
    links=((0, 1, 1.0), (1, 2, 1.0)),  # a line: (1,2) is a bridge
    initial_members=(0, 2),
    events=(
        ScenarioEvent("link", 1, u=1, v=2, up=False),
        ScenarioEvent("link", 1, u=1, v=2, up=True, after=(0,)),
    ),
)

TRIPLE_CONFLICT = _triangle(
    "triple-conflict",
    "three concurrent joins on a triangle: maximal 3-switch proposal "
    "conflict (equal stamps, withdrawal, triggered proposals)",
    initial_members=(),
    events=(
        ScenarioEvent("join", 0),
        ScenarioEvent("join", 1),
        ScenarioEvent("join", 2),
    ),
)

RING4_CHURN = StressScenario(
    name="ring4-churn",
    description="membership churn while a ring link flaps: reordering "
    "across the two ring directions (nightly, budget-bounded)",
    switches=4,
    links=((0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)),
    initial_members=(0, 2),
    events=(
        ScenarioEvent("join", 3),
        ScenarioEvent("leave", 0),
        ScenarioEvent("link", 1, u=1, v=2, up=False),
        ScenarioEvent("link", 1, u=1, v=2, up=True, after=(2,)),
    ),
)

FRR_INFLIGHT_REPAIR = _triangle(
    "frr-inflight-repair",
    "join(1) computes while the installed (0,2) tree edge fails and its "
    "backup fragment activates: the in-flight-repair stale-install guard "
    "and fast-reroute reconciliation must compose (explored with "
    "enable_frr on; backup state is canonically invisible, so the state "
    "space must match a no-FRR run exactly)",
    initial_members=(0, 2),
    events=(
        ScenarioEvent("join", 1),
        ScenarioEvent("link", 0, u=0, v=2, up=False),
        ScenarioEvent("link", 0, u=0, v=2, up=True, after=(1,)),
    ),
)

MESH5_LINK_STORM = StressScenario(
    name="mesh5-link-storm",
    description="two link failures and a join on a 5-switch mesh: "
    "concurrent detectors flooding conflicting proposals (nightly, "
    "budget-bounded)",
    switches=5,
    links=(
        (0, 1, 1.0),
        (1, 2, 1.0),
        (2, 3, 1.0),
        (3, 4, 1.0),
        (0, 4, 1.0),
        (1, 3, 1.0),
    ),
    initial_members=(0, 2, 4),
    events=(
        ScenarioEvent("join", 3),
        ScenarioEvent("link", 1, u=1, v=3, up=False),
        ScenarioEvent("link", 3, u=3, v=4, up=False),
        ScenarioEvent("link", 3, u=3, v=4, up=True, after=(2,)),
    ),
)

SCENARIOS: Dict[str, StressScenario] = {
    s.name: s
    for s in (
        MEMBERSHIP_RACE,
        DEGRADED_REPAIR,
        TRIPLE_CONFLICT,
        FRR_INFLIGHT_REPAIR,
        RING4_CHURN,
        MESH5_LINK_STORM,
    )
}


def get_scenario(name: str) -> StressScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown stress scenario {name!r} "
            f"(available: {', '.join(sorted(SCENARIOS))})"
        ) from None
