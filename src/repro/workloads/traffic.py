"""Datagram traffic schedules for the MOSPF baseline.

MOSPF's computations are data-driven, so comparing it against D-GMC needs
a traffic model: senders transmit between membership events.  The paper's
comparison assumes the natural worst case for MOSPF -- at least one
datagram per source between consecutive events, so every event's cache
flush is paid for in full.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.workloads.membership import MembershipSchedule


def datagram_schedule_after_events(
    schedule: MembershipSchedule,
    senders: Iterable[int],
    gap: float,
) -> List[Tuple[float, int]]:
    """One datagram per sender, ``gap`` after each membership event.

    Returns ``[(time, sender), ...]``.  ``gap`` should exceed the flooding
    diameter so the membership LSA has reached all routers before the
    datagram travels (the steady-state MOSPF cost the paper cites); a
    smaller gap exercises the transient where caches are flushed
    mid-flight.
    """
    senders = sorted(set(senders))
    sends: List[Tuple[float, int]] = []
    for ev in schedule.events:
        for s in senders:
            sends.append((ev.time + gap, s))
    return sends
