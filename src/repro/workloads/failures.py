"""Link-failure injection: exercising the paper's fault-tolerance claim.

Section 6: "Being a link-state routing protocol, the D-GMC protocol has
the intrinsic advantage in fault tolerance.  The protocol handles faulty
components in the network through topology computations triggered by
link/nodal events."

:class:`FailureInjector` schedules failure/repair cycles against a running
:class:`~repro.core.protocol.DgmcNetwork`.  By default it only fails links
whose loss keeps the network connected (partition survival is the paper's
explicit non-goal); set ``allow_partition`` to stress the degradation
path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.events import LinkEvent
from repro.core.protocol import DgmcNetwork


@dataclass
class FailureRecord:
    """One injected failure/repair cycle."""

    edge: Tuple[int, int]
    failed_at: float
    repaired_at: Optional[float]


class FailureInjector:
    """Schedules link failures (and optional repairs) on a deployment."""

    def __init__(
        self,
        dgmc: DgmcNetwork,
        rng: random.Random,
        allow_partition: bool = False,
    ) -> None:
        self.dgmc = dgmc
        self.rng = rng
        self.allow_partition = allow_partition
        self.records: List[FailureRecord] = []

    # -- selection ----------------------------------------------------------

    def _safe_candidates(self) -> List[Tuple[int, int]]:
        """Up links whose loss is acceptable under the partition policy.

        Without ``allow_partition`` the safe links are exactly the up links
        that are not bridges -- computed in one O(V + E) lowpoint pass
        (:meth:`~repro.topo.graph.Network.bridges`) instead of deep-copying
        the network once per link.  An already-disconnected network has no
        safe candidates (every removal probe used to fail), matching the
        old probing behaviour exactly.
        """
        up_links = [link.key for link in self.dgmc.net.links()]
        if self.allow_partition:
            return up_links
        if not self.dgmc.net.is_connected():
            return []
        bridges = set(self.dgmc.net.bridges())
        return [key for key in up_links if key not in bridges]

    # -- scheduling -----------------------------------------------------------

    def schedule_cycle(
        self, fail_at: float, repair_after: Optional[float] = None
    ) -> None:
        """Schedule one failure (edge chosen at fire time) and its repair.

        The edge is selected when the failure fires, against the network's
        state at that moment, so stacked cycles never pick an already-dead
        link and never disconnect the network (unless allowed).
        """
        self.dgmc.sim.schedule_at(
            fail_at, lambda: self._fire_failure(repair_after)
        )

    def schedule_campaign(
        self,
        start: float,
        count: int,
        mean_gap: float,
        mean_downtime: Optional[float] = None,
    ) -> None:
        """Schedule ``count`` failure cycles with exponential gaps.

        ``mean_downtime`` of None means failures are permanent (no repair).
        """
        t = start
        for _ in range(count):
            t += self.rng.expovariate(1.0 / mean_gap)
            downtime = (
                None
                if mean_downtime is None
                else self.rng.expovariate(1.0 / mean_downtime)
            )
            self.schedule_cycle(t, repair_after=downtime)

    # -- firing ---------------------------------------------------------------------

    def _fire_failure(self, repair_after: Optional[float]) -> None:
        candidates = self._safe_candidates()
        if not candidates:
            return  # nothing can fail safely right now
        edge = candidates[self.rng.randrange(len(candidates))]
        record = FailureRecord(edge, self.dgmc.sim.now, None)
        self.records.append(record)
        u, v = edge
        self.dgmc._fire_link(LinkEvent(u, u, v, up=False))
        if repair_after is not None:
            self.dgmc.sim.schedule(
                repair_after, lambda: self._fire_repair(record)
            )

    def _fire_repair(self, record: FailureRecord) -> None:
        u, v = record.edge
        link = self.dgmc.net.link(u, v)
        if link.up:
            return  # already repaired (should not happen; defensive)
        record.repaired_at = self.dgmc.sim.now
        self.dgmc._fire_link(LinkEvent(u, u, v, up=True))

    # -- accounting ---------------------------------------------------------------------

    @property
    def failures_injected(self) -> int:
        return len(self.records)

    @property
    def repairs_completed(self) -> int:
        return sum(1 for r in self.records if r.repaired_at is not None)
