"""Zipf-popularity group churn interleaved with datagram batches.

The data-plane study needs traffic that looks like real multipoint usage:
a few very popular connections carry most of the datagrams and most of
the membership churn, with a long tail of small groups.  This module
generates that workload -- group popularity is Zipf-distributed with
exponent ``s``, and popularity drives *both* the group's member count and
its share of churn events and traffic -- plus the machinery to replay it:

* :func:`zipf_churn_workload` -- a deterministic, feasibility-checked
  schedule of churn phases interleaved with packet batches,
* :class:`ConvergedGroups` -- converged-state bring-up and churn for
  many-group deployments (1k groups at n=100 switches), bypassing the
  control-plane flood storm while recording installs so compiled
  data-plane state invalidates exactly as under the live protocol,
* :func:`replay_workload` -- drives the batched engine over the workload
  (optionally shadowing a sample of packets through the reference engine
  for an exact delivery-equivalence check),
* :func:`mospf_contrast` -- replays equivalent churn + traffic through
  the MOSPF baseline, where every (source, group) datagram pays a
  data-driven shortest-path computation (the paper's Section 2 contrast).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from itertools import accumulate
from random import Random
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.protocol import DgmcNetwork
from repro.core.state import McState
from repro.dataplane.engine import BatchForwardingEngine
from repro.dataplane.forwarding import DeliveryReport, ForwardingEngine
from repro.dataplane.packet import DeliveryRecord, McPacket


def zipf_weights(groups: int, s: float) -> List[float]:
    """Normalized Zipf(s) popularity weights for group ranks 0..groups-1."""
    if groups <= 0:
        raise ValueError("groups must be positive")
    raw = [(rank + 1) ** -s for rank in range(groups)]
    total = sum(raw)
    return [w / total for w in raw]


@dataclass(frozen=True)
class GroupEvent:
    """One membership churn event (feasible by construction)."""

    group: int
    switch: int
    join: bool


@dataclass(frozen=True)
class PacketBatch:
    """One traffic batch: (source switch, group) per packet."""

    packets: Tuple[Tuple[int, int], ...]

    def __len__(self) -> int:
        return len(self.packets)


@dataclass(frozen=True)
class ChurnPhase:
    """Churn events followed by the traffic batches sent after them."""

    events: Tuple[GroupEvent, ...]
    batches: Tuple[PacketBatch, ...]


@dataclass(frozen=True)
class ZipfWorkload:
    """A complete churn-and-traffic schedule over many groups."""

    n: int
    groups: int
    s: float
    #: group -> initial member switches (every group starts with >= 2).
    initial: Tuple[Tuple[int, Tuple[int, ...]], ...]
    phases: Tuple[ChurnPhase, ...]

    @property
    def total_packets(self) -> int:
        return sum(len(b) for p in self.phases for b in p.batches)

    @property
    def total_events(self) -> int:
        return sum(len(p.events) for p in self.phases)

    @property
    def total_batches(self) -> int:
        return sum(len(p.batches) for p in self.phases)

    def initial_members(self) -> Dict[int, FrozenSet[int]]:
        return {g: frozenset(members) for g, members in self.initial}

    def validate(self) -> None:
        """Raise ValueError on an infeasible schedule.

        Feasibility mirrors :class:`repro.workloads.membership`: joins
        only for absent switches, leaves only for present ones, no group
        ever drops below two members (so every tree is non-trivial and
        no connection is destroyed mid-run), and every packet's source
        is a current member of its group.
        """
        members = {g: set(m) for g, m in self.initial}
        for g, current in members.items():
            if len(current) < 2:
                raise ValueError(f"group {g} starts with < 2 members")
        for index, phase in enumerate(self.phases):
            for event in phase.events:
                current = members.get(event.group)
                if current is None:
                    raise ValueError(f"phase {index}: unknown group {event.group}")
                if event.join:
                    if event.switch in current:
                        raise ValueError(
                            f"phase {index}: join of present switch {event.switch}"
                        )
                    current.add(event.switch)
                else:
                    if event.switch not in current:
                        raise ValueError(
                            f"phase {index}: leave of absent switch {event.switch}"
                        )
                    if len(current) <= 2:
                        raise ValueError(
                            f"phase {index}: leave would shrink group "
                            f"{event.group} below 2 members"
                        )
                    current.discard(event.switch)
            for batch in phase.batches:
                for source, group in batch.packets:
                    if source not in members.get(group, ()):
                        raise ValueError(
                            f"phase {index}: packet source {source} is not "
                            f"a member of group {group}"
                        )


def zipf_churn_workload(
    n: int,
    groups: int,
    rng: Random,
    *,
    s: float = 1.1,
    phases: int = 3,
    events_per_phase: int = 32,
    batches_per_phase: int = 4,
    batch_size: int = 256,
    max_initial_members: int = 12,
) -> ZipfWorkload:
    """Generate a feasible Zipf churn-and-traffic workload.

    Popularity rank drives initial member count (rank 0 gets
    ``max_initial_members``, the tail gets 2), the probability a churn
    event touches the group, and the group's share of each traffic batch.
    """
    if n < 3:
        raise ValueError("need at least 3 switches")
    weights = zipf_weights(groups, s)
    cumulative = list(accumulate(weights))

    def pick_group() -> int:
        return min(bisect_right(cumulative, rng.random()), groups - 1)

    members: Dict[int, set] = {}
    initial: List[Tuple[int, Tuple[int, ...]]] = []
    top = weights[0]
    for g in range(groups):
        span = max_initial_members - 2
        size = 2 + round(span * (weights[g] / top))
        size = max(2, min(n, size))
        chosen = rng.sample(range(n), size)
        members[g] = set(chosen)
        initial.append((g, tuple(sorted(chosen))))

    phase_list: List[ChurnPhase] = []
    for _ in range(phases):
        events: List[GroupEvent] = []
        for _ in range(events_per_phase):
            g = pick_group()
            current = members[g]
            absent = [x for x in range(n) if x not in current]
            can_join = bool(absent)
            can_leave = len(current) > 2
            if can_join and (not can_leave or rng.random() < 0.5):
                switch = rng.choice(absent)
                current.add(switch)
                events.append(GroupEvent(g, switch, True))
            elif can_leave:
                switch = rng.choice(sorted(current))
                current.discard(switch)
                events.append(GroupEvent(g, switch, False))
        batches: List[PacketBatch] = []
        for _ in range(batches_per_phase):
            packets = []
            for _ in range(batch_size):
                g = pick_group()
                source = rng.choice(sorted(members[g]))
                packets.append((source, g))
            batches.append(PacketBatch(tuple(packets)))
        phase_list.append(ChurnPhase(tuple(events), tuple(batches)))

    workload = ZipfWorkload(n, groups, s, tuple(initial), tuple(phase_list))
    workload.validate()
    return workload


class ConvergedGroups:
    """Converged-state bring-up and churn for many-group deployments.

    Running the full control plane to converge 1k groups takes minutes of
    wall time and -- worse -- hundreds of megabytes of per-switch vector
    state.  A *converged* deployment is definitionally one where every
    switch holds an identical view of each connection, so this seeder
    installs **one shared** :class:`~repro.core.state.McState` object per
    group into every switch.  Each churn event mutates the shared state,
    recomputes the group's topology once (through the network's memoizing
    SPF view, so Dijkstra runs are shared across groups), reinstalls it,
    and appends an install record via the protocol's own hook -- so
    data-plane engines observe the same install-generation signal the
    live protocol produces, and their invalidation fires identically.

    Restriction: only for experiments that dispatch traffic at converged
    points; mixing this seeder with live control-plane activity on the
    same connections would let the shared state and the per-switch
    protocol machinery diverge.
    """

    def __init__(self, dgmc: DgmcNetwork) -> None:
        self.dgmc = dgmc
        #: group -> per-origin event counts (the R vector the stamps carry).
        self._event_counts: Dict[int, List[int]] = {}

    def seed(self, workload: ZipfWorkload) -> None:
        """Register and install every group at its initial membership."""
        n = self.dgmc.net.n
        if workload.n != n:
            raise ValueError(
                f"workload built for n={workload.n}, network has n={n}"
            )
        adj = self.dgmc.net.spf_view()
        for g, members in workload.initial:
            spec = self.dgmc.register_symmetric(g)
            state = McState(spec, n)
            counts = [0] * n
            for switch in members:
                state.apply_join(switch, None)
                counts[switch] += 1
            self._event_counts[g] = counts
            topology = state.algorithm.compute(adj, state.members, None)
            proposer = min(members)
            state.install(topology, tuple(counts), self.dgmc.sim.now, proposer)
            for x in range(n):
                self.dgmc.switches[x].states[g] = state
            self.dgmc._record_install(proposer, g, tuple(counts), proposer)

    def apply(self, event: GroupEvent) -> None:
        """Apply one churn event: mutate membership, recompute, reinstall."""
        state = self.dgmc.switches[event.switch].states[event.group]
        if event.join:
            state.apply_join(event.switch, None)
        else:
            state.apply_leave(event.switch)
        counts = self._event_counts[event.group]
        counts[event.switch] += 1
        adj = self.dgmc.net.spf_view()
        topology = state.algorithm.compute(adj, state.members, state.installed)
        state.install(
            topology, tuple(counts), self.dgmc.sim.now, event.switch
        )
        self.dgmc._record_install(
            event.switch, event.group, tuple(counts), event.switch
        )


@dataclass
class ReplayResult:
    """Outcome of replaying a workload through the batched engine."""

    packets: int
    batches: int
    events: int
    batched_wall_s: float
    batched_report: DeliveryReport
    #: Reference-engine shadow sample (empty when reference_sample == 0).
    reference_packets: int = 0
    reference_wall_s: float = 0.0
    reference_report: Optional[DeliveryReport] = None
    #: Human-readable descriptions of batched-vs-reference mismatches.
    mismatches: List[str] = field(default_factory=list)

    @property
    def batched_pps(self) -> float:
        return self.packets / self.batched_wall_s if self.batched_wall_s else 0.0

    @property
    def reference_pps(self) -> float:
        if not self.reference_wall_s:
            return 0.0
        return self.reference_packets / self.reference_wall_s

    @property
    def speedup(self) -> float:
        if not self.reference_pps:
            return 0.0
        return self.batched_pps / self.reference_pps

    @property
    def identical_deliveries(self) -> bool:
        return self.reference_packets > 0 and not self.mismatches

    def latencies(self) -> List[float]:
        """All per-receiver delivery latencies seen by the batched engine."""
        out: List[float] = []
        for record in self.batched_report.records:
            for receiver in record.delivered:
                latency = record.latency(receiver)
                if latency is not None:
                    out.append(latency)
        return out


def _record_key(record: DeliveryRecord) -> tuple:
    return (
        record.undeliverable,
        record.intended,
        record.hops,
        record.duplicates,
        record.ttl_drops,
        tuple(sorted(record.delivered.items())),
    )


def replay_workload(
    dgmc: DgmcNetwork,
    workload: ZipfWorkload,
    *,
    hop_delay: Optional[float] = None,
    reference_sample: int = 0,
    batch_spacing: float = 1.0,
) -> ReplayResult:
    """Seed, churn, and dispatch the workload through the batched engine.

    ``reference_sample`` > 0 additionally shadows that many packets
    (spread across batches) through the per-packet reference engine at
    the same injection times and cross-checks every record field --
    the compiled-equals-reference invariant the benchmark gate enforces.
    """
    seeder = ConvergedGroups(dgmc)
    seeder.seed(workload)
    engine = BatchForwardingEngine(dgmc, hop_delay=hop_delay)
    reference = (
        ForwardingEngine(dgmc, hop_delay=hop_delay) if reference_sample else None
    )
    total_batches = workload.total_batches or 1
    per_batch_quota = -(-reference_sample // total_batches)  # ceil
    remaining_sample = reference_sample

    batched_wall = 0.0
    reference_wall = 0.0
    reference_packets = 0
    mismatches: List[str] = []
    events = 0

    for phase in workload.phases:
        for event in phase.events:
            seeder.apply(event)
            events += 1
        for batch in phase.batches:
            at = dgmc.sim.now + batch_spacing
            packets = [McPacket(src, g) for src, g in batch.packets]
            start = perf_counter()
            records = engine.dispatch(packets, at=at)
            batched_wall += perf_counter() - start
            if reference is not None and remaining_sample > 0:
                take = min(per_batch_quota, remaining_sample, len(batch.packets))
                twins = [
                    McPacket(src, g) for src, g in batch.packets[:take]
                ]
                start = perf_counter()
                shadow = [reference.send(p, at=at) for p in twins]
                dgmc.run()
                reference_wall += perf_counter() - start
                reference_packets += take
                remaining_sample -= take
                for ref_record, bat_record in zip(shadow, records[:take]):
                    if _record_key(ref_record) != _record_key(bat_record):
                        mismatches.append(
                            f"flow (src={ref_record.packet.source}, "
                            f"G={ref_record.packet.connection_id}): "
                            f"reference {_record_key(ref_record)} != "
                            f"batched {_record_key(bat_record)}"
                        )

    return ReplayResult(
        packets=workload.total_packets,
        batches=workload.total_batches,
        events=events,
        batched_wall_s=batched_wall,
        batched_report=engine.report,
        reference_packets=reference_packets,
        reference_wall_s=reference_wall,
        reference_report=reference.report if reference is not None else None,
        mismatches=mismatches,
    )


def mospf_contrast(
    net,
    workload: ZipfWorkload,
    *,
    compute_time: float = 1.0,
    per_hop_delay: Optional[float] = None,
) -> Dict[str, float]:
    """Replay the workload's churn and traffic through the MOSPF baseline.

    MOSPF computes a source-rooted tree on first sight of each
    (source, group) pair at each router and flushes caches on every
    membership LSA, so under churny Zipf traffic its data plane keeps
    paying for shortest-path computations that D-GMC performed once at
    install time.  Returns wall-clock and computation counts for the
    benchmark's heavy-traffic contrast row.
    """
    from repro.baselines.mospf import MospfNetwork

    mospf = MospfNetwork(net, compute_time=compute_time, per_hop_delay=per_hop_delay)
    at = 1.0
    for g, members in workload.initial:
        for switch in members:
            mospf.inject_join(switch, g, at=at)
            at += 0.1
    mospf.run()

    datagrams = 0
    start = perf_counter()
    for phase in workload.phases:
        for event in phase.events:
            at = mospf.sim.now + 0.5
            if event.join:
                mospf.inject_join(event.switch, event.group, at=at)
            else:
                mospf.inject_leave(event.switch, event.group, at=at)
            mospf.run()
        for batch in phase.batches:
            at = mospf.sim.now + 1.0
            for source, group in batch.packets:
                mospf.send_datagram(source, group, at=at)
                datagrams += 1
            mospf.run()
    wall = perf_counter() - start

    return {
        "datagrams": float(datagrams),
        "delivered": float(mospf.datagrams_delivered),
        "wall_s": wall,
        "pps": datagrams / wall if wall else 0.0,
        "tree_computations": float(mospf.total_computations),
        "computations_per_datagram": (
            mospf.total_computations / datagrams if datagrams else 0.0
        ),
    }
