"""Counterexample minimization: shrink a violating schedule to 1-minimal.

A schedule found by the explorer carries everything it took to *reach*
the violation, including deliveries and advances that played no causal
role.  The minimizer shrinks it until removing any single step makes the
violation disappear (1-minimality), which is what turns a machine-found
interleaving into a human-readable race.

Replay semantics during minimization: apply the candidate schedule from a
fresh executor, then *flush* -- deterministically FIFO-deliver every
remaining pending LSA and advance to full quiescence -- and evaluate the
target invariant at the settled terminal state.  The flush is what allows
steps to be dropped at all: a removed delivery still happens eventually,
just in the benign FIFO order, so only steps whose *specific ordering*
causes the violation survive.  A candidate whose replay hits an
:class:`~repro.stress.executor.InfeasibleStep` (a causally required step
was removed, e.g. the delivery of an LSA that is no longer flooded)
counts as non-violating, so causal prefixes are preserved.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.stress.executor import InfeasibleStep, StressExecutor
from repro.stress.model import Step, StressScenario


def replay_violates(
    scenario: StressScenario,
    schedule: List[Step],
    config_overrides: Optional[Dict[str, bool]] = None,
    invariant: Optional[str] = None,
    loss_branching: bool = False,
    max_drops: int = 1,
) -> bool:
    """Replay ``schedule`` + flush; does ``invariant`` (or anything) break?"""
    ex = StressExecutor(
        scenario,
        scenario.make_config(**(config_overrides or {})),
        loss_branching=loss_branching,
        max_drops=max_drops,
    )
    try:
        ex.replay(schedule)
    except InfeasibleStep:
        return False
    ex.flush()
    violations = ex.check_invariants()
    if invariant is None:
        return bool(violations)
    return any(v.invariant == invariant for v in violations)


def minimize_schedule(
    scenario: StressScenario,
    schedule: List[Step],
    config_overrides: Optional[Dict[str, bool]] = None,
    invariant: Optional[str] = None,
    loss_branching: bool = False,
    max_drops: int = 1,
) -> List[Step]:
    """Shrink a violating schedule to a 1-minimal event sequence.

    Two phases: first find the shortest violating *prefix* (the flush
    completes whatever the prefix set in motion), then greedily delete
    single steps until no single deletion preserves the violation.
    Returns the input unchanged if it does not violate to begin with.
    """

    def violates(candidate: List[Step]) -> bool:
        return replay_violates(
            scenario,
            candidate,
            config_overrides=config_overrides,
            invariant=invariant,
            loss_branching=loss_branching,
            max_drops=max_drops,
        )

    if not violates(schedule):
        return list(schedule)
    current = list(schedule)
    for length in range(len(current)):
        if violates(current[:length]):
            current = current[:length]
            break
    changed = True
    while changed:
        changed = False
        i = 0
        while i < len(current):
            trial = current[:i] + current[i + 1 :]
            if violates(trial):
                current = trial
                changed = True
            else:
                i += 1
    return current
