"""Deterministic executor: one protocol stack under external scheduling.

The executor runs the *unmodified* protocol stack -- a real
:class:`~repro.core.protocol.DgmcNetwork` on the real simulation kernel --
but takes away its two sources of internal nondeterminism-hiding:

* **LSA deliveries** are intercepted by :class:`StressTransport`: a flood
  produces *pending deliveries* instead of scheduled kernel events, and
  the explorer chooses which pending LSA arrives next (or, with loss
  branching, is lost).  Arbitrary reordering across pending LSAs is
  physically realizable: flood arrival times are computed against the
  up-link topology at flood time, so later topology changes let one
  flood's copy overtake another's.
* **Time advances** only on an explicit ``("advance",)`` step, which
  completes the earliest in-flight topology computation
  (:meth:`~repro.sim.kernel.Simulator.advance_to_next`).  The zero-delay
  cascade after every step (process wake-ups, mailbox drains) runs to
  completion via :meth:`~repro.sim.kernel.Simulator.run_instant`, so a
  state between steps is always settled-at-an-instant.

Because the kernel heap is ordered by ``(time, priority, seq)`` and every
counter in the stack is deterministic, replaying the same step sequence
from a fresh executor reproduces the same state bit for bit -- the
foundation for stateless (replay-based) search and schedule minimization.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.lsa import McLsa
from repro.core.protocol import DgmcNetwork, ProtocolConfig
from repro.core.state import McState
from repro.core.timestamp import stamp_gt
from repro.core.wire import encode_topology
from repro.lsr.lsa import NonMcLsa
from repro.net.invariants import (
    STALE_INSTALL,
    Violation,
    check_agreement_violations,
    check_spans,
    check_tree_bytes,
    check_tree_structure,
)
from repro.net.transport import DeliverFn, Transport
from repro.sim.kernel import Simulator
from repro.stress.model import Step, StressScenario


class InfeasibleStep(RuntimeError):
    """A replayed step is not enabled in the current state.

    Raised during minimization when removing an earlier step breaks a
    causal dependency (e.g. a ``deliver`` referencing an LSA that was
    never flooded).  The minimizer treats an infeasible replay as
    non-violating, so causally required steps are never removed.
    """


@dataclass(frozen=True)
class PendingDelivery:
    """One LSA copy in flight: flooded but not yet delivered or lost."""

    seq: int
    src: int
    dest: int
    payload: Any


class StressTransport(Transport):
    """Transport that parks every send as an explorer-visible branch point."""

    def __init__(self) -> None:
        self._handlers: Dict[int, DeliverFn] = {}
        self._seq = itertools.count(1)
        #: seq -> pending delivery, insertion-ordered (dict preserves it).
        self.pending: Dict[int, PendingDelivery] = {}
        self.delivered = 0
        self.dropped = 0

    def register(self, switch_id: int, handler: DeliverFn) -> None:
        if switch_id in self._handlers:
            raise ValueError(f"switch {switch_id} already registered")
        self._handlers[switch_id] = handler

    def has_handler(self, switch_id: int) -> bool:
        return switch_id in self._handlers

    def send(self, src: int, dest: int, payload: Any, delay: float = 0.0) -> None:
        seq = next(self._seq)
        self.pending[seq] = PendingDelivery(seq, src, dest, payload)

    def deliver(self, seq: int) -> PendingDelivery:
        entry = self.pending.pop(seq, None)
        if entry is None:
            raise InfeasibleStep(f"no pending LSA with seq {seq}")
        self.delivered += 1
        self._handlers[entry.dest](entry.dest, entry.payload)
        return entry

    def drop(self, seq: int) -> PendingDelivery:
        entry = self.pending.pop(seq, None)
        if entry is None:
            raise InfeasibleStep(f"no pending LSA with seq {seq}")
        self.dropped += 1
        return entry

    @property
    def idle(self) -> bool:
        return not self.pending

    @property
    def handler_count(self) -> int:
        return len(self._handlers)


def _canon_payload(payload: Any) -> Tuple:
    """Semantic fingerprint of one flooded payload (send-order free)."""
    if isinstance(payload, McLsa):
        proposal = (
            encode_topology(payload.proposal)
            if payload.proposal is not None
            else None
        )
        role = payload.role.value if payload.role is not None else None
        return (
            "mc",
            payload.source,
            payload.event.value,
            payload.connection_id,
            tuple(payload.timestamp),
            role,
            proposal,
        )
    if isinstance(payload, NonMcLsa):
        d = payload.description
        return ("non-mc", payload.source, d.origin, d.seqnum, tuple(d.links))
    raise TypeError(f"unexpected flooded payload {payload!r}")


class StressExecutor:
    """One deterministic execution of a scenario under external scheduling.

    Construction converges the setup phase (sequential initial joins,
    each flushed to quiescence with FIFO delivery), leaving the explorer
    a settled starting state with zero pending work.  From there,
    :meth:`enabled_steps` / :meth:`apply` expose the transition system.
    """

    def __init__(
        self,
        scenario: StressScenario,
        config: Optional[ProtocolConfig] = None,
        loss_branching: bool = False,
        max_drops: int = 1,
    ) -> None:
        self.scenario = scenario
        self.loss_branching = loss_branching
        self.max_drops = max_drops
        self.transport = StressTransport()
        self.sim = Simulator()
        self.dgmc = DgmcNetwork(
            scenario.build_net(),
            config or scenario.make_config(),
            sim=self.sim,
            transport=self.transport,
        )
        self.dgmc.register_symmetric(scenario.connection_id)
        #: Scenario event indices already fired.
        self.fired: Set[int] = set()
        self.drops = 0
        #: Transitions applied (replay cost accounting for the explorer).
        self.steps_applied = 0
        #: Continuously monitored violations (stale installs).
        self.monitor_violations: List[Violation] = []
        self._installed_stamps: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        for sw in self.dgmc.switches.values():
            sw.on_install = self._watch_install
        # Setup: converge each initial join in isolation, FIFO delivery.
        from repro.core.events import JoinEvent

        for member in scenario.initial_members:
            self.dgmc.inject(
                JoinEvent(member, scenario.connection_id), at=self.sim.now
            )
            self.flush()

    # -- install monitor -----------------------------------------------------

    def _watch_install(
        self, switch: int, connection_id: int, stamp: tuple, proposer: int
    ) -> None:
        """``stale-install``: an installed topology must never regress.

        Arbitration (:meth:`~repro.core.switch.DgmcSwitch._beats`) is
        supposed to guarantee the installed stamp is non-decreasing at
        every switch; a strictly dominated replacement means a stale
        proposal won.
        """
        key = (switch, connection_id)
        prev = self._installed_stamps.get(key)
        if prev is not None and stamp_gt(prev, stamp):
            self.monitor_violations.append(
                Violation(
                    STALE_INSTALL,
                    f"switch {switch} replaced installed stamp {prev} "
                    f"with dominated stamp {tuple(stamp)} "
                    f"(proposer {proposer})",
                )
            )
        self._installed_stamps[key] = tuple(stamp)
        self.dgmc._record_install(switch, connection_id, stamp, proposer)

    # -- transition system ---------------------------------------------------

    def enabled_steps(self) -> List[Step]:
        """Every transition enabled now, in deterministic order."""
        steps: List[Step] = []
        for i, ev in enumerate(self.scenario.events):
            if i in self.fired:
                continue
            if any(j not in self.fired for j in ev.after):
                continue
            steps.append(("event", i))
        for seq in sorted(self.transport.pending):
            steps.append(("deliver", seq))
        if self.loss_branching and self.drops < self.max_drops:
            for seq in sorted(self.transport.pending):
                steps.append(("drop", seq))
        if self.sim.peek() is not None:
            steps.append(("advance",))
        return steps

    def apply(self, step: Step) -> None:
        """Apply one transition and settle the zero-delay cascade."""
        kind = step[0]
        self.steps_applied += 1
        if kind == "event":
            i = step[1]
            if i in self.fired or not (0 <= i < len(self.scenario.events)):
                raise InfeasibleStep(f"scenario event {i} not enabled")
            ev = self.scenario.events[i]
            if any(j not in self.fired for j in ev.after):
                raise InfeasibleStep(f"scenario event {i} blocked by 'after'")
            self.fired.add(i)
            self.dgmc.inject(
                ev.to_event(self.scenario.connection_id), at=self.sim.now
            )
            self.sim.run_instant()
        elif kind == "deliver":
            self.transport.deliver(step[1])
            self.sim.run_instant()
        elif kind == "drop":
            self.transport.drop(step[1])
            self.drops += 1
        elif kind == "advance":
            if self.sim.peek() is None:
                raise InfeasibleStep("nothing scheduled to advance to")
            self.sim.advance_to_next()
        else:
            raise InfeasibleStep(f"unknown step {step!r}")

    def replay(self, schedule: List[Step]) -> None:
        for step in schedule:
            self.apply(step)

    def flush(self) -> None:
        """Deterministic drain: FIFO-deliver everything, advance to done.

        Used for the setup phase and to complete a (possibly shortened)
        schedule during minimization: lowest-seq pending LSA first, then
        advance; repeat until fully quiescent.  Never drops.
        """
        self.sim.run_instant()
        while True:
            if self.transport.pending:
                self.transport.deliver(min(self.transport.pending))
                self.sim.run_instant()
                continue
            if self.sim.peek() is not None:
                self.sim.advance_to_next()
                continue
            break

    # -- state inspection ----------------------------------------------------

    @property
    def all_events_fired(self) -> bool:
        return len(self.fired) == len(self.scenario.events)

    def quiescent(self) -> bool:
        """Nothing pending anywhere: a settled (possibly terminal) state."""
        return self.transport.idle and self.dgmc.quiescent()

    def terminal(self) -> bool:
        return self.all_events_fired and self.quiescent()

    def states(self) -> Dict[int, McState]:
        return self.dgmc.states_for(self.scenario.connection_id)

    def canonical_key(self) -> Tuple:
        """Hashable fingerprint collapsing symmetric interleavings.

        Absolute simulated time and send sequence numbers are excluded:
        two interleavings that settle every switch, mailbox, in-flight
        computation, and pending LSA into the same semantic content will
        behave identically from here on, whatever order produced them.
        """
        switches = []
        for x, sw in sorted(self.dgmc.switches.items()):
            per_conn = tuple(
                (
                    cid,
                    state.canonical(),
                    tuple(
                        _canon_payload(p)
                        for p in sw._mailboxes[cid].peek_all()
                    ),
                )
                for cid, state in sorted(sw.states.items())
            )
            inflight = tuple(
                (c.connection_id, c.members, c.acquired_at is not None)
                for c in sw.inflight_computes
            )
            lsdb = tuple(
                (origin, lsa.seqnum, tuple(lsa.links))
                for origin, lsa in sorted(
                    self.dgmc.routers[x].lsdb.entries().items()
                )
            )
            switches.append((x, per_conn, inflight, lsdb))
        pending = tuple(
            sorted(
                (p.dest, _canon_payload(p.payload), p.src)
                for p in self.transport.pending.values()
            )
        )
        links = tuple(
            (link.key, link.up)
            for link in sorted(
                self.dgmc.net.links(include_down=True), key=lambda lk: lk.key
            )
        )
        return (
            tuple(switches),
            pending,
            links,
            frozenset(self.fired),
            self.drops,
        )

    # -- invariants ----------------------------------------------------------

    def _members_mutually_reachable(self, members: FrozenSet[int]) -> bool:
        """All members in one connected component of the up-link graph."""
        if len(members) <= 1:
            return True
        start = min(members)
        seen = {start}
        frontier = deque([start])
        while frontier:
            x = frontier.popleft()
            for y in self.dgmc.net.neighbors(x):
                if y not in seen:
                    seen.add(y)
                    frontier.append(y)
        return members <= seen

    def check_invariants(self, context: str = "") -> List[Violation]:
        """Every violated invariant at the current state.

        Monitored violations (``stale-install``) and ``tree-structure``
        are unconditional.  ``agreement`` and ``tree-bytes`` require a
        *terminal loss-free* state: before the schedule completes (or
        after a deliberate drop) switches legitimately disagree.
        ``spans`` additionally requires the member set to be mutually
        reachable over the current up-link topology -- a tree computed
        while part of the membership was unreachable legitimately fails
        to span it, and only restored connectivity makes the check fair.
        """
        violations = list(self.monitor_violations)
        states = self.states()
        violations += check_tree_structure(states, context)
        if self.terminal() and self.drops == 0:
            violations += check_agreement_violations(
                self.scenario.connection_id, states, context
            )
            violations += check_tree_bytes(states, context)
            if states:
                ref = states[min(states)]
                if self._members_mutually_reachable(ref.member_set):
                    violations += check_spans(states, context)
        return violations
