"""STRESS-style systematic state-space exploration of D-GMC arbitration.

The chaos soak samples interleavings with a seed; this package
*enumerates* them (Helmy/Estrin/Gupta's STRESS methodology, adapted to
drive the real implementation): every pending LSA delivery, loss, and
scenario event is a branch point, symmetric interleavings collapse under
canonical state hashing, and violating schedules are minimized into
replayable JSON counterexamples.  See docs/systematic-testing.md.
"""

from repro.stress.executor import (
    InfeasibleStep,
    PendingDelivery,
    StressExecutor,
    StressTransport,
)
from repro.stress.explore import (
    STRATEGIES,
    StressOptions,
    StressReport,
    explore,
)
from repro.stress.minimize import minimize_schedule, replay_violates
from repro.stress.model import (
    Counterexample,
    ScenarioEvent,
    Step,
    StressScenario,
    describe_step,
)

__all__ = [
    "Counterexample",
    "InfeasibleStep",
    "PendingDelivery",
    "STRATEGIES",
    "ScenarioEvent",
    "Step",
    "StressExecutor",
    "StressOptions",
    "StressReport",
    "StressScenario",
    "StressTransport",
    "describe_step",
    "explore",
    "minimize_schedule",
    "replay_violates",
]
