"""The explorer's vocabulary: scenarios, schedule steps, counterexamples.

A *scenario* fixes everything the exploration does not branch on: the
physical topology, the initial (sequentially converged) member set, and a
small pool of *branchable events* -- joins, leaves, and link changes whose
firing order, relative to every pending LSA delivery, is the explorer's
choice.  A *schedule* is one resolved interleaving: a sequence of
:class:`Step` transitions.  A *counterexample* is a schedule that drives
the protocol into a violated invariant, serialized as replayable JSON so
it can be committed as a regression test.

Steps (the transition alphabet):

* ``("event", i)``   -- fire scenario event ``i`` at the current instant;
* ``("deliver", s)`` -- deliver the pending LSA with send sequence ``s``;
* ``("drop", s)``    -- lose that LSA instead (loss branching only);
* ``("advance",)``   -- advance the kernel to its next scheduled instant
  (completes the earliest in-flight topology computation).

Send sequence numbers are assigned by a deterministic global counter at
flood time, and replays are bit-for-bit identical, so a step sequence
uniquely identifies an execution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.events import JoinEvent, LeaveEvent, LinkEvent
from repro.core.protocol import ProtocolConfig
from repro.topo.graph import Network

#: A schedule step, e.g. ``("event", 0)`` or ``("advance",)``.
Step = Tuple


@dataclass(frozen=True)
class ScenarioEvent:
    """One branchable event of a scenario.

    ``kind`` is ``join`` / ``leave`` / ``link``.  For link events,
    ``switch`` is the detector and ``(u, v, up)`` name the link change.
    ``after`` lists indices of scenario events that must have fired first
    (physical feasibility: a link cannot recover before it fails).
    """

    kind: str
    switch: int
    u: int = -1
    v: int = -1
    up: bool = True
    after: Tuple[int, ...] = ()

    def to_event(self, connection_id: int):
        if self.kind == "join":
            return JoinEvent(self.switch, connection_id)
        if self.kind == "leave":
            return LeaveEvent(self.switch, connection_id)
        if self.kind == "link":
            return LinkEvent(self.switch, self.u, self.v, up=self.up)
        raise ValueError(f"unknown scenario event kind {self.kind!r}")

    def describe(self) -> str:
        if self.kind == "link":
            arrow = "up" if self.up else "down"
            return f"link({self.u},{self.v}) {arrow} @sw{self.switch}"
        return f"{self.kind}({self.switch})"


@dataclass(frozen=True)
class StressScenario:
    """Everything one exploration run is parameterized by."""

    name: str
    description: str
    switches: int
    #: ``(u, v, delay)`` triples.
    links: Tuple[Tuple[int, int, float], ...]
    #: Joined sequentially (to quiescence each) before exploration starts.
    initial_members: Tuple[int, ...]
    events: Tuple[ScenarioEvent, ...]
    connection_id: int = 1
    compute_time: float = 1.0
    per_hop_delay: float = 0.1

    def build_net(self) -> Network:
        net = Network(self.switches, name=self.name)
        for u, v, delay in self.links:
            net.add_link(u, v, delay=delay)
        return net

    def make_config(self, **overrides) -> ProtocolConfig:
        return ProtocolConfig(
            compute_time=self.compute_time,
            per_hop_delay=self.per_hop_delay,
            **overrides,
        )


def steps_to_json(schedule: List[Step]) -> List[List]:
    return [list(step) for step in schedule]


def steps_from_json(raw: List[List]) -> List[Step]:
    out: List[Step] = []
    for item in raw:
        if not item or item[0] not in ("event", "deliver", "drop", "advance"):
            raise ValueError(f"malformed schedule step {item!r}")
        out.append(tuple(item))
    return out


def describe_step(step: Step, scenario: Optional[StressScenario] = None) -> str:
    if step[0] == "event":
        if scenario is not None and 0 <= step[1] < len(scenario.events):
            return f"event[{step[1]}] {scenario.events[step[1]].describe()}"
        return f"event[{step[1]}]"
    if step[0] == "advance":
        return "advance (complete earliest computation)"
    return f"{step[0]} lsa#{step[1]}"


@dataclass
class Counterexample:
    """A violating schedule, replayable from the named scenario."""

    scenario: str
    invariant: str
    detail: str
    schedule: List[Step]
    #: ProtocolConfig field overrides the violation was found under
    #: (e.g. ``{"ablate_member_stamp": true}``).
    config: Dict[str, bool] = field(default_factory=dict)
    minimized: bool = False

    def to_json(self) -> str:
        return json.dumps(
            {
                "scenario": self.scenario,
                "invariant": self.invariant,
                "detail": self.detail,
                "config": self.config,
                "minimized": self.minimized,
                "schedule": steps_to_json(self.schedule),
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Counterexample":
        raw = json.loads(text)
        return cls(
            scenario=raw["scenario"],
            invariant=raw["invariant"],
            detail=raw.get("detail", ""),
            schedule=steps_from_json(raw["schedule"]),
            config={k: bool(v) for k, v in raw.get("config", {}).items()},
            minimized=bool(raw.get("minimized", False)),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "Counterexample":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
