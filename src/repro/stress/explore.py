"""Systematic search over event/delivery interleavings (STRESS-style).

Three pluggable strategies over the transition system that
:class:`~repro.stress.executor.StressExecutor` exposes:

* ``dfs`` (default) -- exhaustive depth-first search with canonical-state
  deduplication.  Backtracking re-materializes the parent state by
  replaying its schedule from a fresh executor (stateless search: the
  protocol stack contains running generators, so states are *replayed*,
  never copied).
* ``bfs`` -- exhaustive breadth-first search; finds shallowest violations
  first at the cost of keeping the frontier's schedules in memory.
* ``guided`` -- the practical adaptation of STRESS *backward search*:
  states are expanded best-first under a violation-proximity score
  derived from the invariant predicates themselves (member-view
  divergence, C-stamp divergence, reordered pending LSAs, in-flight
  computations).  Where true backward search would enumerate predecessors
  of a violating state -- impossible against a real implementation whose
  transition relation is only executable forward -- the guided strategy
  walks forward while greedily descending the same distance-to-violation
  metric, and is used with a transition budget on the 4-5-switch
  scenarios where exhaustive search is out of reach.

All strategies dedupe on :meth:`StressExecutor.canonical_key`, count
every applied transition (replays included) against ``max_transitions``,
and report whether the exploration was *exhaustive* (frontier drained
within budget) -- the property the CI gate asserts for 3-switch runs.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.net.invariants import Violation
from repro.obs import flight
from repro.stress.executor import InfeasibleStep, StressExecutor
from repro.stress.minimize import minimize_schedule
from repro.stress.model import (
    Counterexample,
    Step,
    StressScenario,
    describe_step,
)

STRATEGIES = ("dfs", "bfs", "guided")


@dataclass
class StressOptions:
    """Everything one exploration run is tuned by."""

    strategy: str = "dfs"
    #: Hard budget on applied transitions, replays included.
    max_transitions: int = 250_000
    #: Depth bound on schedules (None = unbounded; exhaustiveness is only
    #: claimed when no expansion was suppressed by the bound).
    max_depth: Optional[int] = None
    loss_branching: bool = False
    max_drops: int = 1
    max_counterexamples: int = 1
    minimize: bool = True
    #: ProtocolConfig field overrides (e.g. the deviation knobs).
    config_overrides: Dict[str, bool] = field(default_factory=dict)


@dataclass
class StressReport:
    """Outcome of one exploration."""

    scenario: str
    strategy: str
    states_explored: int = 0
    pruned: int = 0
    transitions: int = 0
    terminal_states: int = 0
    max_depth_seen: int = 0
    exhaustive: bool = False
    budget_hit: bool = False
    counterexamples: List[Counterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def summary_lines(self) -> List[str]:
        lines = [
            f"stress {self.scenario}: strategy={self.strategy} "
            f"states={self.states_explored} pruned={self.pruned} "
            f"transitions={self.transitions}",
            f"terminal states: {self.terminal_states}  "
            f"max depth: {self.max_depth_seen}  "
            f"exhaustive: {self.exhaustive}"
            + ("  (transition budget hit)" if self.budget_hit else ""),
        ]
        for ce in self.counterexamples:
            tag = "minimized, " if ce.minimized else ""
            lines.append(
                f"  COUNTEREXAMPLE {ce.invariant} "
                f"({tag}{len(ce.schedule)} steps): {ce.detail}"
            )
        if not self.counterexamples:
            lines.append("  no counterexamples")
        return lines


class _BudgetExceeded(Exception):
    pass


class _Search:
    """Shared bookkeeping for every strategy."""

    def __init__(self, scenario: StressScenario, options: StressOptions):
        self.scenario = scenario
        self.options = options
        self.report = StressReport(scenario.name, options.strategy)
        self.visited: Set[Tuple] = set()
        self.truncated = False

    def fresh(self) -> StressExecutor:
        return StressExecutor(
            self.scenario,
            self.scenario.make_config(**self.options.config_overrides),
            loss_branching=self.options.loss_branching,
            max_drops=self.options.max_drops,
        )

    def apply(self, ex: StressExecutor, step: Step) -> None:
        if self.report.transitions >= self.options.max_transitions:
            self.report.budget_hit = True
            raise _BudgetExceeded
        self.report.transitions += 1
        ex.apply(step)

    def materialize(self, schedule: List[Step]) -> StressExecutor:
        ex = self.fresh()
        for step in schedule:
            self.apply(ex, step)
        return ex

    def record_violation(
        self, schedule: List[Step], violations: List[Violation]
    ) -> bool:
        """Record a counterexample; True when the search should stop."""
        v = violations[0]
        ce = Counterexample(
            scenario=self.scenario.name,
            invariant=v.invariant,
            detail=v.detail,
            schedule=list(schedule),
            config=dict(self.options.config_overrides),
        )
        if self.options.minimize:
            ce.schedule = minimize_schedule(
                self.scenario,
                ce.schedule,
                config_overrides=self.options.config_overrides,
                invariant=ce.invariant,
                loss_branching=self.options.loss_branching,
                max_drops=self.options.max_drops,
            )
            ce.minimized = True
        self.report.counterexamples.append(ce)
        flight.dump_on_violation(
            f"stress-{ce.invariant}",
            {
                "scenario": ce.scenario,
                "invariant": ce.invariant,
                "detail": ce.detail,
                "config_overrides": ce.config,
                "minimized": ce.minimized,
                "schedule": [
                    describe_step(step, self.scenario) for step in ce.schedule
                ],
            },
        )
        return len(self.report.counterexamples) >= self.options.max_counterexamples


def _score(ex: StressExecutor) -> int:
    """Violation proximity: how close this state is to breaking agreement.

    The guided strategy's heuristic, derived from the violation
    predicates: count the distinct member views and distinct C stamps
    across switches (agreement distance), pending event LSAs that are
    already stale at their destination (reordering pressure -- the M
    vector's failure mode), and in-flight computations (withdrawal and
    stale-proposal pressure).
    """
    states = ex.states()
    member_views = {
        tuple(sorted((m, tuple(sorted(r))) for m, r in s.members.items()))
        for s in states.values()
    }
    stamps = {s.current_stamp for s in states.values()}
    score = 3 * (len(member_views) - 1) + 2 * (len(stamps) - 1)
    for p in ex.transport.pending.values():
        payload = p.payload
        if hasattr(payload, "timestamp") and hasattr(payload, "source"):
            dest_state = states.get(p.dest)
            if (
                dest_state is not None
                and payload.timestamp[payload.source]
                <= dest_state.received[payload.source]
            ):
                score += 2  # delivering this LSA exercises the stale path
    for sw in ex.dgmc.switches.values():
        score += len(sw.inflight_computes)
    return score


def explore(
    scenario: StressScenario, options: Optional[StressOptions] = None
) -> StressReport:
    """Run one exploration and return its report."""
    options = options or StressOptions()
    if options.strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {options.strategy!r} (choose from {STRATEGIES})"
        )
    search = _Search(scenario, options)
    try:
        if options.strategy == "dfs":
            _explore_dfs(search)
        elif options.strategy == "bfs":
            _explore_bfs(search)
        else:
            _explore_guided(search)
        search.report.exhaustive = not search.truncated
    except _BudgetExceeded:
        search.report.exhaustive = False
    return search.report


def _enter_state(
    search: _Search, ex: StressExecutor, schedule: List[Step]
) -> Tuple[Optional[List[Step]], bool]:
    """Dedup, count, and check one reached state.

    Returns ``(steps_to_expand, stop)``: ``steps_to_expand`` is ``None``
    when the state should not be expanded (seen before, violating,
    terminal, or depth-bounded); ``stop`` ends the whole search.
    """
    report = search.report
    key = ex.canonical_key()
    if key in search.visited:
        report.pruned += 1
        return None, False
    search.visited.add(key)
    report.states_explored += 1
    report.max_depth_seen = max(report.max_depth_seen, len(schedule))
    violations = ex.check_invariants()
    if violations:
        stop = search.record_violation(schedule, violations)
        if stop:
            # Stopping at the counterexample cap leaves the frontier
            # undrained; never claim exhaustiveness for such a run.
            search.truncated = True
        return None, stop
    steps = ex.enabled_steps()
    if not steps:
        report.terminal_states += 1
        return None, False
    if (
        search.options.max_depth is not None
        and len(schedule) >= search.options.max_depth
    ):
        search.truncated = True
        return None, False
    return steps, False


def _explore_dfs(search: _Search) -> None:
    ex: Optional[StressExecutor] = search.fresh()
    path: List[Step] = []
    steps, stop = _enter_state(search, ex, path)
    if stop or steps is None:
        return
    frames: List[deque] = [deque(steps)]
    while frames:
        frame = frames[-1]
        if not frame:
            frames.pop()
            if path:
                path.pop()
            ex = None  # parent state re-materialized lazily on next apply
            continue
        step = frame.popleft()
        if ex is None:
            ex = search.materialize(path)
        try:
            search.apply(ex, step)
        except InfeasibleStep:  # pragma: no cover - enabled steps only
            ex = None
            continue
        path.append(step)
        steps, stop = _enter_state(search, ex, path)
        if stop:
            return
        if steps is None:
            path.pop()
            ex = None
            continue
        frames.append(deque(steps))


def _explore_bfs(search: _Search) -> None:
    ex = search.fresh()
    steps, stop = _enter_state(search, ex, [])
    if stop or steps is None:
        return
    frontier: deque = deque([([], steps)])
    while frontier:
        schedule, steps = frontier.popleft()
        for step in steps:
            ex = search.materialize(schedule)
            try:
                search.apply(ex, step)
            except InfeasibleStep:  # pragma: no cover - enabled steps only
                continue
            child = schedule + [step]
            child_steps, stop = _enter_state(search, ex, child)
            if stop:
                return
            if child_steps is not None:
                frontier.append((child, child_steps))


def _explore_guided(search: _Search) -> None:
    ex = search.fresh()
    steps, stop = _enter_state(search, ex, [])
    if stop or steps is None:
        return
    counter = 0
    # Max-heap on violation proximity; insertion order breaks ties, so
    # the frontier ordering is fully deterministic.
    heap = [(-_score(ex), 0, [], steps)]
    while heap:
        _, _, schedule, steps = heapq.heappop(heap)
        for step in steps:
            ex = search.materialize(schedule)
            try:
                search.apply(ex, step)
            except InfeasibleStep:  # pragma: no cover - enabled steps only
                continue
            child = schedule + [step]
            child_steps, stop = _enter_state(search, ex, child)
            if stop:
                return
            if child_steps is not None:
                counter += 1
                heapq.heappush(
                    heap, (-_score(ex), counter, child, child_steps)
                )
