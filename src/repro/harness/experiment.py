"""Run one scenario under a protocol and extract trial metrics.

Every trial has the same three phases:

1. **Setup** -- the schedule's initial members join, widely spaced, and the
   simulation runs to quiescence; this models an MC in steady state before
   the measured workload arrives.
2. **Measured workload** -- the schedule's events are injected (shifted to
   start after setup), and the simulation runs to quiescence again.
3. **Harvest** -- counters are differenced against their post-setup
   snapshots so the metrics cover exactly the measured events.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.baselines.brute_force import BruteForceNetwork
from repro.baselines.mospf import MospfNetwork
from repro.core.events import JoinEvent, LeaveEvent
from repro.core.mc import Role
from repro.core.protocol import DgmcNetwork, ProtocolConfig
from repro.metrics.collector import TrialMetrics
from repro.workloads.scenario import Scenario


def _register(dgmc: DgmcNetwork, scenario: Scenario) -> None:
    if scenario.connection_type == "symmetric":
        dgmc.register_symmetric(scenario.connection_id)
    elif scenario.connection_type == "receiver-only":
        dgmc.register_receiver_only(scenario.connection_id)
    elif scenario.connection_type == "asymmetric":
        dgmc.register_asymmetric(scenario.connection_id)
    else:
        raise ValueError(
            f"unknown connection type {scenario.connection_type!r}"
        )


def _join_role(scenario: Scenario, switch: int) -> Role | None:
    """Role for a joining switch.

    Symmetric / receiver-only MCs use their defaults.  For asymmetric MCs
    the harness assigns deterministic mixed roles by switch id: one third
    senders, one third receivers, one third both -- exercising per-source
    trees without changing the membership schedule format.
    """
    if scenario.connection_type != "asymmetric":
        return None
    return (Role.SENDER, Role.RECEIVER, Role.BOTH)[switch % 3]


def run_dgmc_trial(scenario: Scenario) -> TrialMetrics:
    """Execute a scenario under D-GMC and return its metrics."""
    config = ProtocolConfig(
        compute_time=scenario.compute_time,
        per_hop_delay=scenario.per_hop_delay,
    )
    dgmc = DgmcNetwork(scenario.net, config)
    _register(dgmc, scenario)
    m = scenario.connection_id
    round_length = scenario.round_length

    # Phase 1: setup -- initial members join far apart, no conflicts.
    setup_gap = 4.0 * round_length
    t = setup_gap
    for switch in sorted(scenario.schedule.initial_members):
        dgmc.inject(JoinEvent(switch, m, role=_join_role(scenario, switch)), at=t)
        t += setup_gap
    dgmc.run()
    assert dgmc.quiescent(), "setup phase did not quiesce"

    # Snapshot counters after setup.
    events0 = dgmc.mc_event_count
    comps0 = dgmc.total_computations()
    floods0 = dgmc.mc_floodings()
    snap0 = dgmc.metrics.snapshot()

    # Phase 2: the measured workload.
    t0 = dgmc.sim.now + 4.0 * round_length
    first_event_time = None
    for ev in scenario.schedule.events:
        at = t0 + ev.time
        if first_event_time is None:
            first_event_time = at
        if ev.join:
            dgmc.inject(
                JoinEvent(ev.switch, m, role=_join_role(scenario, ev.switch)),
                at=at,
            )
        else:
            dgmc.inject(LeaveEvent(ev.switch, m), at=at)
    dgmc.run()
    assert dgmc.quiescent(), "measured phase did not quiesce"

    agreed, _ = dgmc.agreement(m)
    return TrialMetrics(
        events=dgmc.mc_event_count - events0,
        computations=dgmc.total_computations() - comps0,
        floodings=dgmc.mc_floodings() - floods0,
        first_event_time=first_event_time or 0.0,
        last_install_time=dgmc.last_install_time(m),
        round_length=round_length,
        agreed=agreed,
        protocol="dgmc",
        metrics=dgmc.metrics.delta(snap0),
    )


def run_brute_force_trial(scenario: Scenario) -> TrialMetrics:
    """Execute a scenario under the brute-force event-driven protocol."""
    bf = BruteForceNetwork(
        scenario.net,
        compute_time=scenario.compute_time,
        per_hop_delay=scenario.per_hop_delay,
    )
    m = scenario.connection_id
    if scenario.connection_type == "symmetric":
        bf.register_symmetric(m)
    else:
        bf.register_receiver_only(m)
    round_length = scenario.round_length

    setup_gap = 4.0 * round_length
    t = setup_gap
    for switch in sorted(scenario.schedule.initial_members):
        bf.inject_join(switch, m, at=t)
        t += setup_gap
    bf.run()

    events0 = bf.events_injected
    comps0 = bf.total_computations
    floods0 = bf.mc_floodings()
    snap0 = bf.metrics.snapshot()

    t0 = bf.sim.now + 4.0 * round_length
    first_event_time = None
    for ev in scenario.schedule.events:
        at = t0 + ev.time
        if first_event_time is None:
            first_event_time = at
        if ev.join:
            bf.inject_join(ev.switch, m, at=at)
        else:
            bf.inject_leave(ev.switch, m, at=at)
    bf.run()

    return TrialMetrics(
        events=bf.events_injected - events0,
        computations=bf.total_computations - comps0,
        floodings=bf.mc_floodings() - floods0,
        first_event_time=first_event_time or 0.0,
        last_install_time=bf.last_install_time(m),
        round_length=round_length,
        agreed=bf.agreement(m),
        protocol="brute-force",
        metrics=bf.metrics.delta(snap0),
    )


def run_mospf_trial(
    scenario: Scenario,
    senders: Optional[Iterable[int]] = None,
    datagram_gap: Optional[float] = None,
) -> TrialMetrics:
    """Execute a scenario under MOSPF.

    ``senders`` default to the schedule's initial members; each sender
    transmits one datagram ``datagram_gap`` after every membership event
    (default: one flooding diameter, i.e. after the LSA has settled), which
    is the minimum traffic that realizes MOSPF's data-driven costs.
    """
    mo = MospfNetwork(
        scenario.net,
        compute_time=scenario.compute_time,
        per_hop_delay=scenario.per_hop_delay,
    )
    m = scenario.connection_id
    round_length = scenario.round_length
    if senders is None:
        senders = sorted(scenario.schedule.initial_members)
    if datagram_gap is None:
        datagram_gap = scenario.flooding_diameter()

    setup_gap = 4.0 * round_length
    t = setup_gap
    for switch in sorted(scenario.schedule.initial_members):
        mo.inject_join(switch, m, at=t)
        t += setup_gap
    # Prime the caches: one datagram per sender before measurement starts,
    # so the measured computations are those *caused by the events*.
    for s in senders:
        mo.send_datagram(s, m, at=t)
        t += setup_gap
    mo.run()

    events0 = mo.events_injected
    comps0 = mo.total_computations
    floods0 = mo.mc_floodings()
    snap0 = mo.metrics.snapshot()

    t0 = mo.sim.now + 4.0 * round_length
    first_event_time = None
    for ev in scenario.schedule.events:
        at = t0 + ev.time
        if first_event_time is None:
            first_event_time = at
        if ev.join:
            mo.inject_join(ev.switch, m, at=at)
        else:
            mo.inject_leave(ev.switch, m, at=at)
        for s in senders:
            mo.send_datagram(s, m, at=at + datagram_gap)
    mo.run()

    return TrialMetrics(
        events=mo.events_injected - events0,
        computations=mo.total_computations - comps0,
        floodings=mo.mc_floodings() - floods0,
        first_event_time=first_event_time or 0.0,
        last_install_time=mo.sim.now,
        round_length=round_length,
        agreed=True,
        protocol="mospf",
        metrics=mo.metrics.delta(snap0),
    )
