"""Plain-text rendering of sweep results (the paper's figure panels)."""

from __future__ import annotations

from typing import Sequence

from repro.harness.sweeps import SweepRow


def _fmt(agg) -> str:
    return f"{agg.mean:7.3f} +-{agg.halfwidth:6.3f}"


def render_rows(
    rows: Sequence[SweepRow],
    title: str,
    include_convergence: bool = True,
) -> str:
    """Render a sweep as the three panels of a paper figure.

    Columns: network size, proposals (topology computations) per event,
    floodings per event, and -- for bursty workloads -- convergence time in
    rounds.  Matches the series plotted in Figures 6-8.
    """
    lines = [title, "=" * len(title)]
    header = f"{'n':>5} | {'proposals/event':>17} | {'floodings/event':>17}"
    if include_convergence:
        header += f" | {'convergence (rounds)':>21}"
    header += " | agreed"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        line = (
            f"{row.size:>5} | {_fmt(row.computations_per_event):>17} "
            f"| {_fmt(row.floodings_per_event):>17}"
        )
        if include_convergence:
            line += f" | {_fmt(row.convergence_rounds):>21}"
        line += f" | {'yes' if row.all_agreed else 'NO'}"
        lines.append(line)
    return "\n".join(lines)


def render_comparison(rows, title: str) -> str:
    """Render a baseline-comparison table (computations per event)."""
    lines = [title, "=" * len(title)]
    header = (
        f"{'n':>5} | {'D-GMC':>17} | {'MOSPF':>17} | {'brute-force':>17}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.size:>5} | {_fmt(row.dgmc):>17} | {_fmt(row.mospf):>17} "
            f"| {_fmt(row.brute_force):>17}"
        )
    return "\n".join(lines)
