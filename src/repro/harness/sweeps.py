"""Parameter sweeps over network size with per-size aggregation.

"In these experiments, networks containing up to 100 switches were
simulated.  In each set of simulations, 10 graphs were generated randomly
for each network size."  (Section 4.2; digits OCR-reconstructed.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.metrics.collector import TrialMetrics
from repro.metrics.stats import Aggregate, aggregate
from repro.obs.metrics import merge_sum
from repro.sim.rng import RngRegistry
from repro.workloads.scenario import Scenario

#: Build a scenario for (network size, graph index, per-trial RNG registry).
ScenarioFactory = Callable[[int, int, RngRegistry], Scenario]
#: Run a scenario, producing trial metrics.
TrialRunner = Callable[[Scenario], TrialMetrics]


@dataclass
class SweepRow:
    """Aggregated metrics for one network size."""

    size: int
    trials: List[TrialMetrics]

    def agg(self, metric: Callable[[TrialMetrics], float]) -> Aggregate:
        return aggregate(metric(t) for t in self.trials)

    @property
    def computations_per_event(self) -> Aggregate:
        return self.agg(lambda t: t.computations_per_event)

    @property
    def floodings_per_event(self) -> Aggregate:
        return self.agg(lambda t: t.floodings_per_event)

    @property
    def convergence_rounds(self) -> Aggregate:
        return self.agg(lambda t: t.convergence_rounds)

    @property
    def spf_hit_rate(self) -> Aggregate:
        return self.agg(lambda t: t.spf_hit_rate)

    @property
    def dijkstra_runs(self) -> int:
        return sum(t.dijkstra_runs for t in self.trials)

    @property
    def metric_totals(self) -> dict:
        """Registry sample deltas summed across the row's trials."""
        return merge_sum(t.metrics for t in self.trials)

    @property
    def all_agreed(self) -> bool:
        return all(t.agreed for t in self.trials)


def sweep(
    sizes: Sequence[int],
    graphs_per_size: int,
    scenario_factory: ScenarioFactory,
    runner: TrialRunner,
    seed: int = 0,
) -> List[SweepRow]:
    """Run ``graphs_per_size`` random-graph trials at each network size.

    Each (size, graph index) pair gets an independent RNG registry derived
    from ``seed``, so trials are reproducible individually and the sweep is
    reproducible as a whole.
    """
    rows: List[SweepRow] = []
    root = RngRegistry(seed)
    for size in sizes:
        trials: List[TrialMetrics] = []
        for g in range(graphs_per_size):
            registry = root.fork(f"size={size}/graph={g}")
            scenario = scenario_factory(size, g, registry)
            trials.append(runner(scenario))
        rows.append(SweepRow(size, trials))
    return rows
