"""Drivers for the paper's three experiments and the baseline comparison.

Timing parameters follow Section 4.2:

* **Experiment 1** (Figure 6) -- bursty events, *computation dominates*:
  "AAL-5 per-hop transmission time for a 53-byte packet is approximately
  11 us, and per-hop signaling time when adding a new member to an MC is
  approximately 20-50 us" (values OCR-reconstructed from the MSU ATM
  testbed description).  We use per-hop = 11 us and Tc = 35 us, in
  microsecond time units.
* **Experiment 2** (Figure 7) -- bursty events, *communication dominates*
  ("a situation that may occur in WANs"): per-hop delay is raised until
  the flooding diameter Tf far exceeds Tc.
* **Experiment 3** (Figure 8) -- "normal" traffic: events well separated
  (mean gap many rounds), same timing as Experiment 1.

All experiments use connected Waxman graphs (average degree ~4), sizes up
to 100 switches, 10 random graphs per size, symmetric MCs, and report
means with 95% confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.harness.experiment import (
    run_brute_force_trial,
    run_dgmc_trial,
    run_mospf_trial,
)
from repro.harness.sweeps import SweepRow, sweep
from repro.metrics.stats import Aggregate
from repro.sim.rng import RngRegistry
from repro.topo.generators import waxman_network
from repro.workloads.membership import bursty_schedule, sparse_schedule
from repro.workloads.scenario import Scenario

#: Default network sizes ("networks containing up to 100 switches").
DEFAULT_SIZES = (20, 40, 60, 80, 100)
#: "10 graphs were generated randomly for each network size".
DEFAULT_GRAPHS_PER_SIZE = 10

# Experiment 1 timing (microseconds): ATM-testbed-like.
EXP1_PER_HOP = 11.0
EXP1_COMPUTE = 35.0
# Experiment 2 timing: WAN regime, Tf >> Tc.
EXP2_PER_HOP = 500.0
EXP2_COMPUTE = 35.0

#: Bursty workload: events clustered within a window of BURST_WINDOW_ROUNDS
#: *Experiment-1 rounds* -- chosen so Experiment 1's measured convergence
#: falls in the paper's 10-15 round band (Figure 6(c)) while events still
#: conflict heavily.  The window is an *absolute* duration (the burst is
#: the application's arrival process; it does not know the network's
#: timing regime), so in Experiment 2 -- where a round is ~30-50x longer --
#: the same burst is far denser relative to a round.  That is what makes
#: E2 cost more computations and floodings per event than E1 while
#: converging in slightly fewer (much longer) rounds, the paper's reported
#: shape.
BURST_EVENTS = 20
BURST_WINDOW_ROUNDS = 10.0
#: Sparse workload: events separated by many rounds.
SPARSE_EVENTS = 20


def _initial_members(n: int, registry: RngRegistry, count: int = 4) -> frozenset:
    rng = registry.stream("initial-members")
    return frozenset(rng.sample(range(n), min(count, n)))


def _make_net(n: int, registry: RngRegistry):
    return waxman_network(n, registry.stream("topology"))


def _bursty_scenario(
    n: int,
    graph_index: int,
    registry: RngRegistry,
    per_hop: float,
    compute: float,
    label: str,
) -> Scenario:
    net = _make_net(n, registry)
    # The window is calibrated against the Experiment-1 (LAN/ATM) round and
    # used verbatim for every timing regime; see BURST_WINDOW_ROUNDS.
    tf_reference = net.flooding_diameter(per_hop_delay=EXP1_PER_HOP)
    schedule = bursty_schedule(
        n,
        registry.stream("events"),
        count=BURST_EVENTS,
        window=BURST_WINDOW_ROUNDS * (tf_reference + EXP1_COMPUTE),
        initial_members=_initial_members(n, registry),
    )
    return Scenario(
        net=net,
        schedule=schedule,
        compute_time=compute,
        per_hop_delay=per_hop,
        label=f"{label}/n={n}/g={graph_index}",
    )


def _sparse_scenario(
    n: int, graph_index: int, registry: RngRegistry
) -> Scenario:
    net = _make_net(n, registry)
    tf = net.flooding_diameter(per_hop_delay=EXP1_PER_HOP)
    round_length = tf + EXP1_COMPUTE
    schedule = sparse_schedule(
        n,
        registry.stream("events"),
        count=SPARSE_EVENTS,
        mean_gap=20.0 * round_length,
        initial_members=_initial_members(n, registry),
    )
    return Scenario(
        net=net,
        schedule=schedule,
        compute_time=EXP1_COMPUTE,
        per_hop_delay=EXP1_PER_HOP,
        label=f"exp3/n={n}/g={graph_index}",
    )


def experiment1(
    sizes: Sequence[int] = DEFAULT_SIZES,
    graphs_per_size: int = DEFAULT_GRAPHS_PER_SIZE,
    seed: int = 1996,
) -> List[SweepRow]:
    """Figure 6: bursty events, computation time dominates."""
    return sweep(
        sizes,
        graphs_per_size,
        lambda n, g, reg: _bursty_scenario(
            n, g, reg, EXP1_PER_HOP, EXP1_COMPUTE, "exp1"
        ),
        run_dgmc_trial,
        seed=seed,
    )


def experiment2(
    sizes: Sequence[int] = DEFAULT_SIZES,
    graphs_per_size: int = DEFAULT_GRAPHS_PER_SIZE,
    seed: int = 1996,
) -> List[SweepRow]:
    """Figure 7: bursty events, communication time dominates (WAN)."""
    return sweep(
        sizes,
        graphs_per_size,
        lambda n, g, reg: _bursty_scenario(
            n, g, reg, EXP2_PER_HOP, EXP2_COMPUTE, "exp2"
        ),
        run_dgmc_trial,
        seed=seed,
    )


def experiment3(
    sizes: Sequence[int] = DEFAULT_SIZES,
    graphs_per_size: int = DEFAULT_GRAPHS_PER_SIZE,
    seed: int = 1996,
) -> List[SweepRow]:
    """Figure 8: normal (sparse) traffic periods."""
    return sweep(
        sizes,
        graphs_per_size,
        _sparse_scenario,
        run_dgmc_trial,
        seed=seed,
    )


@dataclass
class ComparisonRow:
    """Per-size computations-per-event for D-GMC vs the two baselines."""

    size: int
    dgmc: Aggregate
    mospf: Aggregate
    brute_force: Aggregate


def baseline_comparison(
    sizes: Sequence[int] = DEFAULT_SIZES,
    graphs_per_size: int = DEFAULT_GRAPHS_PER_SIZE,
    seed: int = 1996,
    bursty: bool = False,
) -> List[ComparisonRow]:
    """Section 4's comparative claim, quantified.

    Runs the same scenarios under D-GMC, MOSPF (one datagram per sender
    after each event), and the brute-force protocol, and reports topology
    computations per event.  Expected shape: D-GMC ~1 (sparse) / bounded
    (bursty); MOSPF ~ number of on-tree routers; brute-force = n.
    """

    def factory(n: int, g: int, reg: RngRegistry) -> Scenario:
        if bursty:
            return _bursty_scenario(n, g, reg, EXP1_PER_HOP, EXP1_COMPUTE, "cmp")
        return _sparse_scenario(n, g, reg)

    rows: List[ComparisonRow] = []
    dgmc_rows = sweep(sizes, graphs_per_size, factory, run_dgmc_trial, seed=seed)
    mospf_rows = sweep(sizes, graphs_per_size, factory, run_mospf_trial, seed=seed)
    bf_rows = sweep(
        sizes, graphs_per_size, factory, run_brute_force_trial, seed=seed
    )
    for d, m, b in zip(dgmc_rows, mospf_rows, bf_rows):
        rows.append(
            ComparisonRow(
                d.size,
                d.computations_per_event,
                m.computations_per_event,
                b.computations_per_event,
            )
        )
    return rows
