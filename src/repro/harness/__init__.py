"""Experiment harness: runs scenarios and regenerates the paper's figures.

* :mod:`repro.harness.experiment` -- run one scenario under D-GMC or a
  baseline and extract :class:`~repro.metrics.collector.TrialMetrics`,
* :mod:`repro.harness.sweeps` -- repeat over network sizes and random
  graphs, aggregating with 95% confidence intervals,
* :mod:`repro.harness.figures` -- the drivers for Experiments 1-3
  (Figures 6, 7, 8) and the baseline comparison,
* :mod:`repro.harness.report` -- plain-text rendering of figure series.
"""

from repro.harness.experiment import (
    run_brute_force_trial,
    run_dgmc_trial,
    run_mospf_trial,
)
from repro.harness.sweeps import SweepRow, sweep
from repro.harness.figures import (
    baseline_comparison,
    experiment1,
    experiment2,
    experiment3,
)
from repro.harness.report import render_rows

__all__ = [
    "run_dgmc_trial",
    "run_brute_force_trial",
    "run_mospf_trial",
    "sweep",
    "SweepRow",
    "experiment1",
    "experiment2",
    "experiment3",
    "baseline_comparison",
    "render_rows",
]
