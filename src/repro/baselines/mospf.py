"""The MOSPF baseline: data-driven, source-rooted multicast (RFC 1584).

"In MOSPF, the addresses of the hosts listening to a multicast address are
broadcast in group-membership LSAs, and routers maintain complete member
lists for all active multicast addresses.  Upon receiving such a datagram
for a multicast address M, the router consults its local database for the
member list of M and computes a shortest-path tree, rooted at the source of
the datagram [...].  The router then saves this topology information in a
routing cache and forwards the datagram along the appropriate out-going
links.  This forwarding will trigger further topology computations at
other routers."  (Section 2)

The simulation models exactly that: datagrams travel hop-by-hop along the
source-rooted tree; each router with a cold cache entry for (source, group)
pays one topology computation.  Membership LSAs and link changes flush the
affected cache entries, so the next datagram after an event re-triggers a
computation at every on-tree router -- the behavior the paper's comparison
highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.lsr.flooding import FloodingFabric
from repro.lsr.router import bring_up_unicast
from repro.obs import tracer as obs_tracer
from repro.obs.attach import attach_network_metrics, network_spf_cache_stats
from repro.sim.kernel import Simulator
from repro.sim.process import Hold
from repro.topo.graph import Network
from repro.trees.base import MulticastTree
from repro.trees.spt import source_rooted_tree


@dataclass(frozen=True)
class GroupMembershipLsa:
    """Flooded advertisement: ``source`` joins/leaves group ``group_id``."""

    source: int
    group_id: int
    join: bool


@dataclass
class _CacheEntry:
    tree: MulticastTree
    valid: bool = True


class _MospfRouterState:
    """Per-router MOSPF state: member lists and the routing cache."""

    def __init__(self) -> None:
        #: group -> set of member switches.
        self.members: Dict[int, Set[int]] = {}
        #: (source, group) -> cached source-rooted tree.
        self.cache: Dict[Tuple[int, int], _CacheEntry] = {}

    def apply_membership(self, lsa: GroupMembershipLsa) -> None:
        group = self.members.setdefault(lsa.group_id, set())
        if lsa.join:
            group.add(lsa.source)
        else:
            group.discard(lsa.source)
        # Membership changed: every cache entry for this group is stale.
        for key, entry in self.cache.items():
            if key[1] == lsa.group_id:
                entry.valid = False

    def flush_all(self) -> None:
        """Link-state change: all cached trees are stale."""
        for entry in self.cache.values():
            entry.valid = False


class MospfNetwork:
    """A network of MOSPF routers with data-driven tree computation."""

    def __init__(
        self,
        net: Network,
        compute_time: float = 1.0,
        per_hop_delay: Optional[float] = None,
        sim: Optional[Simulator] = None,
    ) -> None:
        self.net = net
        self.compute_time = compute_time
        self.per_hop_delay = per_hop_delay
        self.sim = sim or Simulator()
        self.fabric = FloodingFabric(self.sim, net, per_hop_delay=per_hop_delay)
        self.routers = bring_up_unicast(net, self.fabric)
        self.mospf: Dict[int, _MospfRouterState] = {
            x: _MospfRouterState() for x in net.switches()
        }
        self.total_computations = 0
        self.datagrams_sent = 0
        self.datagrams_delivered = 0
        self.events_injected = 0
        self.metrics = attach_network_metrics(self)
        self.fabric.bind_metrics(self.metrics)
        for x in net.switches():
            self.fabric.register(x, self._deliver)

    # -- membership events -----------------------------------------------------

    def inject_join(self, switch: int, group_id: int, at: float) -> None:
        self.sim.schedule_at(at, lambda: self._fire(switch, group_id, join=True))

    def inject_leave(self, switch: int, group_id: int, at: float) -> None:
        self.sim.schedule_at(at, lambda: self._fire(switch, group_id, join=False))

    def _fire(self, switch: int, group_id: int, join: bool) -> None:
        self.events_injected += 1
        lsa = GroupMembershipLsa(switch, group_id, join)
        self.mospf[switch].apply_membership(lsa)
        self.fabric.flood(switch, lsa, kind="mc")

    def _deliver(self, switch: int, payload) -> None:
        if isinstance(payload, GroupMembershipLsa):
            self.mospf[switch].apply_membership(payload)

    # -- datagram forwarding -------------------------------------------------------

    def send_datagram(self, source: int, group_id: int, at: float) -> None:
        """Schedule one multicast datagram from ``source`` to ``group_id``."""
        self.sim.schedule_at(at, lambda: self._datagram_arrives(source, source, group_id))

    def _hop_delay(self, u: int, v: int) -> float:
        if self.per_hop_delay is not None:
            return self.per_hop_delay
        return self.net.link(u, v).delay

    def _datagram_arrives(self, router: int, source: int, group_id: int) -> None:
        """Datagram processing at one router: compute if cold, then forward."""
        self.sim.spawn(
            self._process_datagram(router, source, group_id),
            name=f"mospf-datagram(r={router}, s={source}, g={group_id})",
        )

    def _process_datagram(self, router: int, source: int, group_id: int):
        state = self.mospf[router]
        if router == source:
            self.datagrams_sent += 1
        key = (source, group_id)
        entry = state.cache.get(key)
        if entry is None or not entry.valid:
            # Cold cache: one topology computation at this router.
            members = frozenset(state.members.get(group_id, ()))
            image = self.routers[router].network_image()
            yield Hold(self.compute_time)
            self.total_computations += 1
            receivers = members - {source}
            tracer = obs_tracer.TRACER
            if not tracer.enabled:
                tree = source_rooted_tree(image, source, receivers)
            else:
                with tracer.span(
                    "compute",
                    cat="arbitration",
                    tid=router,
                    sim_time=self.sim.now,
                    protocol="mospf",
                    connection=group_id,
                    members=len(members),
                ):
                    tree = source_rooted_tree(image, source, receivers)
            entry = _CacheEntry(tree)
            state.cache[key] = entry
        if router in state.members.get(group_id, ()):
            self.datagrams_delivered += 1
        # Forward along the cached tree: downstream = neighbors in the tree
        # that are farther from the source (children in the rooted tree).
        tree = entry.tree
        children = self._children(tree, router, source)
        for child in children:
            delay = self._hop_delay(router, child)
            self.sim.schedule(
                delay, lambda c=child: self._datagram_arrives(c, source, group_id)
            )

    @staticmethod
    def _children(tree: MulticastTree, router: int, source: int) -> list[int]:
        """Downstream neighbors of ``router`` in the tree rooted at ``source``."""
        adj = tree.adjacency()
        if source not in adj:
            return []
        # BFS from the source to orient the tree.
        parent: Dict[int, Optional[int]] = {source: None}
        frontier = [source]
        while frontier:
            node = frontier.pop()
            for nbr in adj.get(node, ()):
                if nbr not in parent:
                    parent[nbr] = node
                    frontier.append(nbr)
        if router not in parent:
            return []
        return sorted(n for n in adj.get(router, ()) if parent.get(n) == router)

    # -- inspection -----------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def mc_floodings(self) -> int:
        return self.fabric.count_for("mc")

    def members_of(self, group_id: int, at_router: int = 0) -> frozenset:
        return frozenset(self.mospf[at_router].members.get(group_id, ()))

    def spf_cache_stats(self):
        """Aggregated SPF cache counters (kept apples-to-apples with
        :meth:`repro.core.protocol.DgmcNetwork.spf_cache_stats`)."""
        return network_spf_cache_stats(self)
