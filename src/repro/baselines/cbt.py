"""The core-based tree (CBT) protocol baseline (Ballardie 1995).

"The CBT multicast protocol is designed to construct and maintain
receiver-only MCs (shared delivery trees) [...] with the restriction that
only one designated switch, the core, can be contacted by senders.  The
topology of a CBT connection is defined by the unicast paths between the
core and the group members."  (Section 5)

Joins are unicast JOIN-REQUEST messages forwarded hop-by-hop toward the
core along unicast routing tables; the first on-tree switch grafts the
path.  Leaves send QUIT messages pruning dangling branches.  There is *no*
flooding and *no* topology computation -- CBT's costs are per-hop control
messages and a tree shape hostage to core placement, which the Section 5
trade-off benchmark quantifies against D-GMC's Steiner trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.lsr.flooding import FloodingFabric
from repro.lsr.router import bring_up_unicast
from repro.sim.kernel import Simulator
from repro.topo.graph import Network
from repro.trees.base import MulticastTree, canonical_edge


@dataclass
class _CbtSwitchState:
    """Per-switch, per-group CBT forwarding state."""

    on_tree: bool = False
    is_member: bool = False
    parent: Optional[int] = None  # next hop toward the core; None at the core
    children: Set[int] = field(default_factory=set)


class CbtNetwork:
    """A network running the CBT receiver-only multicast protocol."""

    def __init__(
        self,
        net: Network,
        per_hop_delay: Optional[float] = None,
        sim: Optional[Simulator] = None,
    ) -> None:
        self.net = net
        self.per_hop_delay = per_hop_delay
        self.sim = sim or Simulator()
        # CBT itself needs no flooding; the fabric exists only so the
        # unicast substrate is identical to the other protocols'.
        self.fabric = FloodingFabric(self.sim, net, per_hop_delay=per_hop_delay)
        self.routers = bring_up_unicast(net, self.fabric)
        #: group -> core switch.
        self.cores: Dict[int, int] = {}
        #: group -> switch -> state.
        self.state: Dict[int, Dict[int, _CbtSwitchState]] = {}
        self.control_messages = 0
        self.events_injected = 0

    # -- group management -------------------------------------------------------

    def create_group(self, group_id: int, core: int) -> None:
        """Declare a group with its (fixed) core switch."""
        if group_id in self.cores:
            raise ValueError(f"group {group_id} already exists")
        if not (0 <= core < self.net.n):
            raise ValueError(f"core {core} out of range")
        self.cores[group_id] = core
        self.state[group_id] = {}
        core_state = self._state(group_id, core)
        core_state.on_tree = True

    def _state(self, group_id: int, switch: int) -> _CbtSwitchState:
        per_group = self.state[group_id]
        if switch not in per_group:
            per_group[switch] = _CbtSwitchState()
        return per_group[switch]

    def _hop_delay(self, u: int, v: int) -> float:
        if self.per_hop_delay is not None:
            return self.per_hop_delay
        return self.net.link(u, v).delay

    # -- joins ----------------------------------------------------------------------

    def inject_join(self, switch: int, group_id: int, at: float) -> None:
        self.sim.schedule_at(at, lambda: self._start_join(switch, group_id))

    def _start_join(self, switch: int, group_id: int) -> None:
        self.events_injected += 1
        state = self._state(group_id, switch)
        state.is_member = True
        if state.on_tree:
            return  # already grafted
        self._forward_join(switch, group_id, previous=None)

    def _forward_join(self, switch: int, group_id: int, previous: Optional[int]) -> None:
        """JOIN-REQUEST processing at ``switch`` (arrived from ``previous``)."""
        state = self._state(group_id, switch)
        if previous is not None:
            state.children.add(previous)
        if state.on_tree:
            return  # graft point reached: the path behind us is now on-tree
        state.on_tree = True
        core = self.cores[group_id]
        next_hop = self.routers[switch].next_hop(core)
        if next_hop is None:
            raise RuntimeError(f"switch {switch} cannot reach core {core}")
        state.parent = next_hop
        self.control_messages += 1
        self.sim.schedule(
            self._hop_delay(switch, next_hop),
            lambda: self._forward_join(next_hop, group_id, previous=switch),
        )

    # -- leaves -----------------------------------------------------------------------

    def inject_leave(self, switch: int, group_id: int, at: float) -> None:
        self.sim.schedule_at(at, lambda: self._start_leave(switch, group_id))

    def _start_leave(self, switch: int, group_id: int) -> None:
        self.events_injected += 1
        state = self._state(group_id, switch)
        state.is_member = False
        self._maybe_prune(switch, group_id)

    def _maybe_prune(self, switch: int, group_id: int) -> None:
        """Send QUIT toward the core while this switch is a useless leaf."""
        state = self._state(group_id, switch)
        core = self.cores[group_id]
        if (
            not state.on_tree
            or state.is_member
            or state.children
            or switch == core
        ):
            return
        parent = state.parent
        state.on_tree = False
        state.parent = None
        if parent is None:
            return
        self.control_messages += 1
        self.sim.schedule(
            self._hop_delay(switch, parent),
            lambda: self._receive_quit(parent, group_id, child=switch),
        )

    def _receive_quit(self, switch: int, group_id: int, child: int) -> None:
        state = self._state(group_id, switch)
        state.children.discard(child)
        self._maybe_prune(switch, group_id)

    # -- inspection ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def tree(self, group_id: int) -> MulticastTree:
        """The current delivery tree (edges between on-tree switches)."""
        edges = set()
        members = set()
        for switch, state in self.state[group_id].items():
            if state.is_member:
                members.add(switch)
            if state.on_tree and state.parent is not None:
                edges.add(canonical_edge(switch, state.parent))
        return MulticastTree.build(edges, members, root=self.cores[group_id])

    def members_of(self, group_id: int) -> frozenset:
        return frozenset(
            sw for sw, st in self.state[group_id].items() if st.is_member
        )
