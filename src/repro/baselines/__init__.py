"""Baseline MC protocols the paper compares against or discusses.

* :mod:`repro.baselines.mospf` -- MOSPF (Moy, RFC 1584): group-membership
  LSAs plus *data-driven* topology computation: each datagram triggers a
  source-rooted SPT computation at every on-tree router with a cold cache.
  Section 4: D-GMC "compares very favorably with the MOSPF protocol, which
  requires a topology computation at every switch involved in the MC."
* :mod:`repro.baselines.brute_force` -- the "brute-force LSR-based MC
  protocol" of Section 2: every membership LSA triggers a recomputation at
  all n switches ("a single event could trigger n redundant computations").
* :mod:`repro.baselines.cbt` -- the core-based tree protocol (Ballardie):
  receiver-only MCs built from unicast join/quit messages toward a core,
  with no flooding at all; included for the Section 5 trade-off study
  (tree cost, traffic concentration, core placement sensitivity).
"""

from repro.baselines.brute_force import BruteForceNetwork
from repro.baselines.mospf import MospfNetwork
from repro.baselines.cbt import CbtNetwork

__all__ = ["MospfNetwork", "BruteForceNetwork", "CbtNetwork"]
