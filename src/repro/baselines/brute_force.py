"""The brute-force event-driven LSR-based MC protocol (Section 2).

"Upon receiving a membership LSA, each switch updates its local database
and invokes a procedure to compute a new topology for each MC affected by
the event.  [...]  The cost of this generality is redundancy in
computation.  In a network with n switches, a single event could trigger n
redundant computations for every existing MC.  Such high overhead renders
this protocol impractical."

The implementation shares D-GMC's substrates (flooding fabric, unicast
image, tree algorithms) so the comparison isolates the protocol logic:
every switch recomputes on every membership LSA it receives or originates,
and no proposals are exchanged (all switches compute deterministically, so
they converge to the same topology without arbitration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.mc import ConnectionSpec, ConnectionType, Role, default_role
from repro.lsr.flooding import FloodingFabric
from repro.lsr.router import bring_up_unicast
from repro.obs import tracer as obs_tracer
from repro.obs.attach import attach_network_metrics, network_spf_cache_stats
from repro.sim.kernel import Simulator
from repro.sim.process import Hold
from repro.sim.resource import Facility
from repro.topo.graph import Network
from repro.trees.base import McTopology


@dataclass(frozen=True)
class MembershipLsa:
    """A flooded group-membership advertisement."""

    source: int
    connection_id: int
    join: bool
    role: Optional[Role]


class _BruteForceSwitchState:
    """Per-switch, per-connection state: member list + installed topology."""

    def __init__(self, spec: ConnectionSpec, n: int) -> None:
        self.spec = spec
        self.members: Dict[int, frozenset] = {}
        self.installed: Optional[McTopology] = None
        self.algorithm = spec.make_algorithm()
        self.last_install_time = 0.0


class BruteForceNetwork:
    """A network running the brute-force event-driven MC protocol."""

    def __init__(
        self,
        net: Network,
        compute_time: float = 1.0,
        per_hop_delay: Optional[float] = None,
        sim: Optional[Simulator] = None,
    ) -> None:
        self.net = net
        self.compute_time = compute_time
        self.sim = sim or Simulator()
        self.fabric = FloodingFabric(self.sim, net, per_hop_delay=per_hop_delay)
        self.routers = bring_up_unicast(net, self.fabric)
        self.connection_registry: Dict[int, ConnectionSpec] = {}
        self.states: Dict[int, Dict[int, _BruteForceSwitchState]] = {
            x: {} for x in net.switches()
        }
        self.cpus: Dict[int, Facility] = {
            x: Facility(self.sim, name=f"cpu-{x}") for x in net.switches()
        }
        self.total_computations = 0
        self.events_injected = 0
        #: Per-computation records (time, switch, connection), mirroring
        #: DgmcNetwork.computation_log for load-distribution analysis.
        self.computation_log: list = []
        self.metrics = attach_network_metrics(self)
        self.fabric.bind_metrics(self.metrics)
        for x in net.switches():
            self.fabric.register(x, self._deliver)

    # -- registry ----------------------------------------------------------

    def register_symmetric(self, connection_id: int) -> ConnectionSpec:
        spec = ConnectionSpec(connection_id, ConnectionType.SYMMETRIC)
        self.connection_registry[connection_id] = spec
        return spec

    def register_receiver_only(self, connection_id: int) -> ConnectionSpec:
        spec = ConnectionSpec(connection_id, ConnectionType.RECEIVER_ONLY)
        self.connection_registry[connection_id] = spec
        return spec

    def _state(self, switch: int, connection_id: int) -> _BruteForceSwitchState:
        per_switch = self.states[switch]
        if connection_id not in per_switch:
            spec = self.connection_registry[connection_id]
            per_switch[connection_id] = _BruteForceSwitchState(spec, self.net.n)
        return per_switch[connection_id]

    # -- events ---------------------------------------------------------------

    def inject_join(
        self, switch: int, connection_id: int, at: float, role: Optional[Role] = None
    ) -> None:
        self.sim.schedule_at(
            at, lambda: self._fire(switch, connection_id, join=True, role=role)
        )

    def inject_leave(self, switch: int, connection_id: int, at: float) -> None:
        self.sim.schedule_at(
            at, lambda: self._fire(switch, connection_id, join=False, role=None)
        )

    def _fire(
        self, switch: int, connection_id: int, join: bool, role: Optional[Role]
    ) -> None:
        self.events_injected += 1
        lsa = MembershipLsa(switch, connection_id, join, role)
        self._apply(switch, lsa)  # the origin updates and recomputes too
        self.fabric.flood(switch, lsa, kind="mc")

    def _deliver(self, switch: int, payload) -> None:
        if isinstance(payload, MembershipLsa):
            self._apply(switch, payload)
        # non-MC LSAs would be handled by the unicast router; the baseline
        # experiments only exercise membership dynamics.

    def _apply(self, switch: int, lsa: MembershipLsa) -> None:
        state = self._state(switch, lsa.connection_id)
        if lsa.join:
            role = lsa.role if lsa.role is not None else default_role(state.spec.ctype)
            roles = state.members.get(lsa.source, frozenset())
            state.members[lsa.source] = roles | role.as_role_set()
        else:
            state.members.pop(lsa.source, None)
        self.sim.spawn(
            self._recompute(switch, state),
            name=f"brute-force-compute(sw={switch}, m={lsa.connection_id})",
        )

    def _recompute(self, switch: int, state: _BruteForceSwitchState):
        """Every membership LSA costs one full topology computation."""
        members = dict(state.members)
        image = self.routers[switch].network_image()
        previous = state.installed
        yield self.cpus[switch].request()
        try:
            yield Hold(self.compute_time)
        finally:
            self.cpus[switch].release()
        self.total_computations += 1
        from repro.core.protocol import ComputationRecord

        self.computation_log.append(
            ComputationRecord(self.sim.now, switch, state.spec.connection_id)
        )
        if not members:
            state.installed = McTopology.empty()
        else:
            tracer = obs_tracer.TRACER
            if not tracer.enabled:
                state.installed = state.algorithm.compute(image, members, previous)
            else:
                with tracer.span(
                    "compute",
                    cat="arbitration",
                    tid=switch,
                    sim_time=self.sim.now,
                    protocol="brute-force",
                    connection=state.spec.connection_id,
                    members=len(members),
                ):
                    state.installed = state.algorithm.compute(
                        image, members, previous
                    )
        state.last_install_time = self.sim.now

    # -- inspection -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def mc_floodings(self) -> int:
        return self.fabric.count_for("mc")

    def spf_cache_stats(self):
        """Aggregated SPF cache counters (kept apples-to-apples with
        :meth:`repro.core.protocol.DgmcNetwork.spf_cache_stats`)."""
        return network_spf_cache_stats(self)

    def last_install_time(self, connection_id: int) -> float:
        times = [
            st.last_install_time
            for per_switch in self.states.values()
            for cid, st in per_switch.items()
            if cid == connection_id
        ]
        return max(times) if times else 0.0

    def agreement(self, connection_id: int) -> bool:
        """All switches agree on members and topology (after quiescence)."""
        snapshots = [
            (sorted(st.members.items()), st.installed)
            for per_switch in self.states.values()
            for cid, st in per_switch.items()
            if cid == connection_id
        ]
        return all(s == snapshots[0] for s in snapshots)
