"""Deployment invariant verification: the DESIGN.md §6 checks as a library.

Downstream users embedding D-GMC in larger simulations can call
:func:`verify_deployment` after quiescence to assert the protocol's
correctness conditions; the test suite uses the same code, so the checks
themselves are exercised continuously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.protocol import DgmcNetwork


class VerificationError(AssertionError):
    """A protocol invariant does not hold."""


@dataclass
class VerificationReport:
    """Outcome of one verification pass."""

    connection_id: int
    checks: List[str] = field(default_factory=list)

    def note(self, check: str) -> None:
        self.checks.append(check)


def verify_deployment(
    dgmc: DgmcNetwork,
    connection_id: int,
    expect_members: Optional[frozenset] = None,
) -> VerificationReport:
    """Verify a quiescent deployment's invariants for one connection.

    Checks (raises :class:`VerificationError` on the first failure):

    1. quiescence -- no queued LSAs, no pending simulation events;
    2. agreement -- identical member lists, C stamps, and installed
       topologies at every live switch;
    3. timestamp sanity -- ``R == E`` and ``R >= C`` at quiescence;
    4. topology validity -- installed trees are acyclic, span the (live,
       reachable) members, and use only up links;
    5. optional membership expectation (``expect_members``).
    """
    report = VerificationReport(connection_id)

    if not dgmc.quiescent():
        raise VerificationError("deployment is not quiescent")
    report.note("quiescent")

    ok, detail = dgmc.agreement(connection_id)
    if not ok:
        raise VerificationError(f"agreement failed: {detail}")
    report.note(f"agreement ({detail})")

    states = {
        x: s
        for x, s in dgmc.states_for(connection_id).items()
        if x not in dgmc.dead_switches
    }
    if not states:
        if expect_members:
            raise VerificationError(
                f"expected members {sorted(expect_members)} but the "
                "connection is destroyed everywhere"
            )
        report.note("connection destroyed everywhere")
        return report

    for x, state in states.items():
        if not state.received.geq(state.expected.snapshot()):
            raise VerificationError(f"switch {x}: R < E at quiescence")
        if not state.expected.geq(state.received.snapshot()):
            raise VerificationError(f"switch {x}: E < R at quiescence")
        if not state.received.geq(state.current_stamp):
            raise VerificationError(f"switch {x}: C exceeds R")
    report.note("timestamps consistent (R == E >= C)")

    reference = states[min(states)]
    if expect_members is not None:
        live_expected = frozenset(expect_members) - dgmc.dead_switches
        if frozenset(reference.members) - dgmc.dead_switches != live_expected:
            raise VerificationError(
                f"member list {sorted(reference.members)} != expected "
                f"{sorted(expect_members)}"
            )
        report.note("membership matches expectation")

    if reference.installed is not None and reference.members:
        up_edges = {link.key for link in dgmc.net.links()}
        from repro.lsr import spf
        from repro.trees.algorithms import dominant_members

        adj = spf.network_adjacency(dgmc.net)
        for key, tree in reference.installed.trees:
            if not tree.is_tree():
                raise VerificationError(f"tree {key} is cyclic or disconnected")
            if not tree.edges <= up_edges:
                raise VerificationError(f"tree {key} uses a down link")
            if key == -1:  # shared tree: must span the dominant member group
                servable = dominant_members(
                    adj, frozenset(reference.members)
                )
                if not tree.spans(servable):
                    raise VerificationError(
                        f"shared tree misses members {sorted(servable)}"
                    )
        report.note("installed topology valid")
    return report
