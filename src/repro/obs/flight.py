"""The failure flight recorder: dump everything the instant something breaks.

A distributed failure is only debuggable if the evidence is captured *at
the moment of the violation* -- by the time a human looks, the retransmit
timers have fired, the hello clocks have moved on, and the interesting
window is gone.  The flight recorder pairs the tracer's bounded ring
buffer (the last N trace events, already being recorded for free) with a
metrics snapshot and caller-supplied replay context, and writes them as
one ``FLIGHT_<reason>_<seq>.json`` artifact.

Integration is via a process-wide hook so violation sites stay decoupled
from recorder lifetime:

* harnesses (``repro chaos``, the stress explorer, the live fabric's
  quiescence barrier) call :func:`dump_on_violation` unconditionally --
  a no-op unless a recorder is installed, and never raising, so the dump
  can never mask the violation it is documenting;
* whoever owns the run (the chaos CLI, a test) installs a
  :class:`FlightRecorder` with :func:`install_recorder` and points it at
  an artifact directory.

The artifact is self-describing: ``reason`` says which invariant broke,
``context`` carries whatever the harness knows about how to replay it
(seed, schedule, settings), ``trace_events`` are Chrome-format dicts
(loadable in Perfetto directly, or mergeable with
:mod:`repro.obs.merge`), and ``tracer_epoch_unix`` anchors their
timestamps to the wall clock for cross-host alignment.
"""

from __future__ import annotations

import json
import os
import re
import time
from typing import Any, Dict, List, Optional

from repro.obs import tracer as obs_tracer
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "FlightRecorder",
    "dump_on_violation",
    "install_recorder",
    "installed_recorder",
    "uninstall_recorder",
]


class FlightRecorder:
    """Write point-in-time failure artifacts into ``directory``.

    The recorder itself holds no event buffer -- it reads the process
    tracer's ring buffer at dump time (the tail ``max_events`` of it),
    which is exactly the "recent past" a flight recorder should hold and
    costs nothing extra while the system is healthy.
    """

    def __init__(self, directory: str = ".", max_events: int = 4096) -> None:
        self.directory = directory
        self.max_events = max_events
        #: Paths of every artifact written, in order.
        self.dumps: List[str] = []
        self._seq = 0

    def dump(
        self,
        reason: str,
        context: Optional[Dict[str, Any]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> str:
        """Write one artifact; returns its path."""
        tracer = obs_tracer.TRACER
        try:
            events = tracer.events()[-self.max_events:]
        except LookupError:  # no ring buffer attached -- dump without events
            events = []
        payload: Dict[str, Any] = {
            "kind": "flight-recorder",
            "version": 1,
            "reason": reason,
            "wall_time_unix": time.time(),
            "tracer_epoch_unix": tracer.epoch_unix,
            "host_pid": tracer.pid,
            "context": context or {},
            "metrics": registry.snapshot() if registry is not None else {},
            "trace_events": [e.to_chrome() for e in events],
        }
        self._seq += 1
        slug = re.sub(r"[^A-Za-z0-9_-]+", "-", reason).strip("-") or "violation"
        path = os.path.join(
            self.directory, f"FLIGHT_{slug}_{self._seq:03d}.json"
        )
        os.makedirs(self.directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=None, sort_keys=True)
            fh.write("\n")
        self.dumps.append(path)
        return path


#: The process-wide recorder violation sites dump through (None = off).
_RECORDER: Optional[FlightRecorder] = None


def install_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Make ``recorder`` the process-wide violation sink."""
    global _RECORDER
    _RECORDER = recorder
    return recorder


def uninstall_recorder() -> None:
    global _RECORDER
    _RECORDER = None


def installed_recorder() -> Optional[FlightRecorder]:
    return _RECORDER


def dump_on_violation(
    reason: str,
    context: Optional[Dict[str, Any]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Optional[str]:
    """Dump through the installed recorder; silent no-op without one.

    Swallows I/O errors deliberately: the caller is in the middle of
    reporting an invariant violation, and a full disk must not turn that
    report into a different exception.
    """
    if _RECORDER is None:
        return None
    try:
        return _RECORDER.dump(reason, context=context, registry=registry)
    except OSError:
        return None
