"""Fuse per-host trace files into one cross-host Chrome trace.

The live runtime is one process today, but its observability contract is
written for the sharded soak on the roadmap: every host (or host shard)
exports its own JSONL trace whose first record is a ``clock_sync``
metadata line carrying the emitting tracer's ``epoch_unix`` -- the wall
time its microsecond axis starts at.  :func:`merge_traces` reads any
number of such files, shifts each file's timestamps by its epoch delta
against the earliest epoch seen, and emits a single Chrome trace dict.

Causality survives the merge for free: flow-event ids are derived from
the trace context plus the frame key (origin, seq, cause, src, dest,
frame seq), which is globally unique without any coordination -- the
``s`` emitted by the sender's file binds to the ``f`` emitted by the
receiver's file no matter which process wrote which.

:func:`export_host_traces` is the writer half for the single-process
fabric: it splits a tracer's ring buffer by ``pid`` lane (one lane per
live host, see ``LiveSwitch._pump_loop``) so the merged output is
byte-equivalent to what N separate processes would have produced.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.tracer import Tracer

__all__ = ["MergeError", "export_host_traces", "merge_traces"]


class MergeError(ValueError):
    """A trace file could not be parsed or lacked required metadata."""


def _clock_sync_line(pid: int, epoch_unix: float) -> Dict[str, Any]:
    return {
        "name": "clock_sync",
        "cat": "__metadata",
        "ph": "M",
        "ts": 0.0,
        "pid": pid,
        "tid": 0,
        "args": {"epoch_unix": epoch_unix},
    }


def export_host_traces(
    tracer: Tracer,
    directory: str,
    prefix: str = "trace",
) -> List[str]:
    """Write one JSONL trace per ``pid`` lane of ``tracer``'s ring buffer.

    Each file starts with a ``clock_sync`` metadata line (all lanes of
    one tracer share its epoch) followed by the lane's events in emission
    order, one Chrome-format JSON object per line.  Returns the paths
    written, ordered by pid.
    """
    lanes: Dict[int, List[Dict[str, Any]]] = {}
    for event in tracer.events():
        lanes.setdefault(event.pid, []).append(event.to_chrome())
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for pid in sorted(lanes):
        path = os.path.join(directory, f"{prefix}_host{pid}.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(_clock_sync_line(pid, tracer.epoch_unix)))
            fh.write("\n")
            for chrome in lanes[pid]:
                fh.write(json.dumps(chrome, sort_keys=True))
                fh.write("\n")
        paths.append(path)
    return paths


def _read_jsonl(path: str) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise MergeError(f"{path}:{lineno}: not JSON ({exc})") from exc
            if not isinstance(record, dict):
                raise MergeError(f"{path}:{lineno}: not a trace object")
            records.append(record)
    return records


def merge_traces(
    paths: Iterable[str],
    out_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Merge per-host JSONL traces onto one wall-clock time axis.

    Each file's ``clock_sync`` metadata anchors its microsecond axis;
    every event timestamp is shifted by the file's epoch delta against
    the earliest epoch across all files, so one host's ``udp_send`` and
    another's ``udp_recv`` land in true wall order.  A file without a
    ``clock_sync`` line is accepted unshifted (delta zero) -- merging
    same-process exports must not require the writer half.

    Returns the Chrome trace dict; also writes it to ``out_path`` when
    given.
    """
    paths = list(paths)
    if not paths:
        raise MergeError("no trace files to merge")
    files: List[Dict[str, Any]] = []
    for path in paths:
        records = _read_jsonl(path)
        epoch: Optional[float] = None
        for record in records:
            if record.get("name") == "clock_sync" and record.get("ph") == "M":
                args = record.get("args") or {}
                if "epoch_unix" in args:
                    epoch = float(args["epoch_unix"])
                    break
        files.append({"path": path, "records": records, "epoch": epoch})
    known = [f["epoch"] for f in files if f["epoch"] is not None]
    base = min(known) if known else 0.0
    merged: List[Dict[str, Any]] = []
    for entry in files:
        epoch = entry["epoch"]
        shift_us = ((epoch - base) * 1e6) if epoch is not None else 0.0
        for record in entry["records"]:
            if record.get("ph") == "M":
                # Metadata is timeless; clock_sync already served its
                # purpose and would be misleading post-shift.
                if record.get("name") == "clock_sync":
                    continue
                merged.append(record)
                continue
            shifted = dict(record)
            shifted["ts"] = float(record.get("ts", 0.0)) + shift_us
            merged.append(shifted)
    # Stable wall order with metadata first: viewers tolerate unsorted
    # input, but deterministic output makes the merge testable.
    merged.sort(key=lambda r: (r.get("ph") != "M", float(r.get("ts", 0.0))))
    trace: Dict[str, Any] = {
        "traceEvents": merged,
        "displayTimeUnit": "ms",
        "metadata": {
            "merged_files": [os.path.basename(f["path"]) for f in files],
            "base_epoch_unix": base,
        },
    }
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, indent=None, sort_keys=True)
            fh.write("\n")
    return trace
