"""Structured event tracing: spans and instants, sim-time and wall-time.

The process-wide :data:`TRACER` is disabled by default; every hot-path
hook is guarded by a single ``TRACER.enabled`` attribute check, so the
instrumented build costs nothing measurable when tracing is off (the
``tracing_overhead`` benchmark in ``benchmarks/regress.py`` gates this).

When enabled, the tracer produces :class:`TraceEvent` records carrying

* ``ts`` / ``dur`` -- **wall** microseconds from a monotonic
  ``perf_counter`` epoch (what Chrome/Perfetto render on the time axis),
* ``sim_ts`` -- the **simulated** time at which the span opened (carried
  in ``args`` on export, since the two clocks are incommensurable),
* ``pid`` / ``tid`` -- logical process/thread ids; by convention ``tid``
  is the switch id for protocol work and 0 for the kernel.

Events flow to pluggable sinks:

* :class:`RingBufferSink` -- bounded in-memory buffer (eviction counted),
* :class:`JsonlSink` -- one Chrome-format JSON object per line, streamed,
* :meth:`Tracer.export_chrome` -- ``{"traceEvents": [...]}`` JSON
  loadable in Perfetto / ``chrome://tracing``.

Independent of sinks, the tracer accumulates **per-category self time**
(span duration minus enclosed spans) into :attr:`Tracer.phase_self`,
which the ``python -m repro profile`` command turns into the
SPF / flooding / arbitration / kernel-overhead breakdown.

The module is stdlib-only and single-thread oriented (the simulator is
single-threaded); it must stay a leaf import for the sim kernel.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter, time as unix_time
from typing import Any, Dict, IO, Iterable, List, Optional, Union

__all__ = [
    "TraceEvent",
    "RingBufferSink",
    "JsonlSink",
    "Tracer",
    "TRACER",
    "get_tracer",
    "use_tracer",
]


@dataclass
class TraceEvent:
    """One trace record (Chrome phases ``X``/``i``/``M``/``s``/``f``)."""

    name: str
    cat: str
    ph: str  # "X" span, "i" instant, "M" metadata, "s"/"f" flow start/finish
    ts: float  # wall microseconds since the tracer epoch
    dur: float = 0.0  # wall microseconds ("X" only)
    pid: int = 0
    tid: int = 0
    sim_ts: Optional[float] = None
    flow_id: Optional[int] = None  # flow-event binding id ("s"/"f" only)
    args: Dict[str, Any] = field(default_factory=dict)

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object for this record."""
        out: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat or "default",
            "ph": self.ph,
            "ts": self.ts,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.ph == "X":
            out["dur"] = self.dur
        elif self.ph == "i":
            out["s"] = "t"  # thread-scoped instant
        elif self.ph in ("s", "f"):
            out["id"] = self.flow_id
            if self.ph == "f":
                out["bp"] = "e"  # bind to the enclosing slice's end
        args = dict(self.args)
        if self.sim_ts is not None:
            args["sim_time"] = self.sim_ts
        if args:
            out["args"] = args
        return out


class RingBufferSink:
    """Keep the newest ``capacity`` events; count what was evicted."""

    def __init__(self, capacity: int = 100_000) -> None:
        self.capacity = capacity
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self.evicted = 0

    def emit(self, event: TraceEvent) -> None:
        if len(self._buffer) == self.capacity:
            self.evicted += 1
        self._buffer.append(event)

    def events(self) -> List[TraceEvent]:
        return list(self._buffer)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink:
    """Stream events as one Chrome-format JSON object per line."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False

    def emit(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.to_chrome(), sort_keys=True))
        self._file.write("\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns:
            self._file.close()


class _Span:
    """Context manager for one span; measures and emits on exit."""

    __slots__ = ("tracer", "name", "cat", "tid", "pid", "sim_ts", "args",
                 "start", "children")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: int,
                 sim_ts: Optional[float], args: Dict[str, Any],
                 pid: Optional[int] = None) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.tid = tid
        self.pid = pid  # None -> the tracer's lane at emit time
        self.sim_ts = sim_ts
        self.args = args
        self.start = 0.0
        self.children = 0.0  # wall seconds spent in enclosed spans

    def __enter__(self) -> "_Span":
        self.start = perf_counter()
        self.tracer._stack.append(self)
        return self

    def __exit__(self, *exc) -> None:
        end = perf_counter()
        tracer = self.tracer
        stack = tracer._stack
        # Tolerate mispaired exits defensively: pop back to this span.
        while stack and stack[-1] is not self:  # pragma: no cover - misuse
            stack.pop()
        if stack:
            stack.pop()
        dur = end - self.start
        if stack:
            stack[-1].children += dur
        cat = self.cat
        tracer.phase_self[cat] = tracer.phase_self.get(cat, 0.0) + (
            dur - self.children
        )
        if tracer._sinks:
            tracer._emit(
                TraceEvent(
                    name=self.name,
                    cat=cat,
                    ph="X",
                    ts=(self.start - tracer._epoch) * 1e6,
                    dur=dur * 1e6,
                    pid=tracer.pid if self.pid is None else self.pid,
                    tid=self.tid,
                    sim_ts=self.sim_ts,
                    args=self.args,
                )
            )


class Tracer:
    """Span/instant recorder with pluggable sinks and phase accounting."""

    def __init__(self, enabled: bool = False, pid: int = 0,
                 process_name: str = "repro") -> None:
        self.enabled = enabled
        self.pid = pid
        self.process_name = process_name
        self._sinks: List[Any] = []
        self._epoch = perf_counter()
        #: Wall-clock (unix) time of the epoch; exported as ``clock_sync``
        #: metadata so per-host traces can be merged on one time axis.
        self.epoch_unix = unix_time()
        self._stack: List[_Span] = []
        #: category -> accumulated span *self* time, wall seconds.
        self.phase_self: Dict[str, float] = {}
        self.events_emitted = 0

    # -- configuration -----------------------------------------------------

    def configure(
        self,
        enabled: Optional[bool] = None,
        sinks: Optional[Iterable[Any]] = None,
    ) -> "Tracer":
        """Change the enabled flag and/or replace the sink list."""
        if sinks is not None:
            self._sinks = list(sinks)
        if enabled is not None:
            self.enabled = enabled
        return self

    def add_sink(self, sink: Any) -> Any:
        self._sinks.append(sink)
        return sink

    def reset(self) -> None:
        """Clear phase totals, the span stack, and the wall epoch.

        Sinks are kept; their contents are the sinks' business.
        """
        self._epoch = perf_counter()
        self.epoch_unix = unix_time()
        self._stack.clear()
        self.phase_self.clear()
        self.events_emitted = 0

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, cat: str = "", tid: int = 0,
             sim_time: Optional[float] = None, pid: Optional[int] = None,
             **args: Any) -> _Span:
        """A context manager timing one synchronous block.

        Only call when :attr:`enabled` is true (hot paths check the flag
        first and skip the call entirely); spans must not cross simulation
        yields -- wrap synchronous work only.  ``pid`` overrides the
        tracer's lane for this span (multi-host traces put each
        :class:`~repro.net.host.LiveSwitch` in its own lane).
        """
        return _Span(self, name, cat, tid, sim_time, args, pid=pid)

    def instant(self, name: str, cat: str = "", tid: int = 0,
                sim_time: Optional[float] = None, pid: Optional[int] = None,
                **args: Any) -> None:
        """Record a zero-duration event."""
        if not self._sinks:
            return
        self._emit(
            TraceEvent(
                name=name,
                cat=cat,
                ph="i",
                ts=(perf_counter() - self._epoch) * 1e6,
                pid=self.pid if pid is None else pid,
                tid=tid,
                sim_ts=sim_time,
                args=args,
            )
        )

    def flow(self, name: str, ph: str, flow_id: int, cat: str = "",
             tid: int = 0, pid: Optional[int] = None,
             sim_time: Optional[float] = None, **args: Any) -> None:
        """Record a flow event (``ph`` is ``"s"`` start or ``"f"`` finish).

        A matched s/f pair with the same ``flow_id`` renders as a causal
        arrow between the enclosing slices of two lanes -- the cross-host
        propagation fan-out.  The id must be unique per arrow; derive it
        from the :class:`~repro.obs.context.TraceContext` plus the wire
        transfer (see ``TraceContext.flow_id``).
        """
        if ph not in ("s", "f"):
            raise ValueError(f"flow phase must be 's' or 'f', got {ph!r}")
        if not self._sinks:
            return
        self._emit(
            TraceEvent(
                name=name,
                cat=cat,
                ph=ph,
                ts=(perf_counter() - self._epoch) * 1e6,
                pid=self.pid if pid is None else pid,
                tid=tid,
                sim_ts=sim_time,
                flow_id=flow_id,
                args=args,
            )
        )

    @contextmanager
    def lane(self, pid: int):
        """Attribute events emitted in this block to process lane ``pid``.

        The live runtime wraps each host's simulator pump with its switch
        id so every span lands in that host's Perfetto lane.
        """
        previous = self.pid
        self.pid = pid
        try:
            yield self
        finally:
            self.pid = previous

    def _emit(self, event: TraceEvent) -> None:
        self.events_emitted += 1
        for sink in self._sinks:
            sink.emit(event)

    # -- inspection / export -----------------------------------------------

    def _ring(self) -> RingBufferSink:
        for sink in self._sinks:
            if isinstance(sink, RingBufferSink):
                return sink
        raise LookupError("no RingBufferSink attached to this tracer")

    def events(self) -> List[TraceEvent]:
        """Events held by the first ring-buffer sink."""
        return self._ring().events()

    def chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace dict for the ring-buffered events."""
        ring = self._ring()
        meta = [
            TraceEvent(
                name="process_name", cat="__metadata", ph="M", ts=0.0,
                pid=self.pid, args={"name": self.process_name},
            )
        ]
        trace = {
            "traceEvents": [e.to_chrome() for e in meta + ring.events()],
            "displayTimeUnit": "ms",
        }
        if ring.evicted:
            trace["metadata"] = {"evicted_events": ring.evicted}
        return trace

    def export_chrome(self, path: str) -> int:
        """Write the ring-buffered events as Chrome trace JSON.

        Returns the number of events written (excluding metadata).
        """
        ring = self._ring()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace(), fh, indent=None, sort_keys=True)
            fh.write("\n")
        return len(ring)

    def phase_breakdown(self) -> Dict[str, float]:
        """Copy of the per-category self-time totals (wall seconds)."""
        return dict(self.phase_self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self.enabled else "off"
        return f"Tracer({state}, sinks={len(self._sinks)}, emitted={self.events_emitted})"


#: The process-wide tracer every instrumentation hook consults.  Hooks
#: read it as ``tracer_module.TRACER`` (attribute access, not a from-
#: import) so :func:`use_tracer` swaps are visible everywhere.
TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER


@contextmanager
def use_tracer(tracer: Tracer):
    """Temporarily install ``tracer`` as the process-wide tracer."""
    global TRACER
    previous = TRACER
    TRACER = tracer
    try:
        yield tracer
    finally:
        TRACER = previous
