"""Convergence SLO tracking: causal chains turned into histograms.

The paper's "lightweight" claim is a claim about convergence windows --
how long a multipoint connection stays un-installed (after a request or
membership change) or blackholed (after a link failure).  This module
measures those windows end to end on the live runtime by following the
causal trace contexts (:mod:`repro.obs.context`) from the moment a cause
is born to the moment every member of the affected connection has
installed a topology covering it:

* ``slo_install_latency_seconds`` -- request/join/leave to all-members-
  installed,
* ``slo_repair_latency_seconds``  -- link failure detected to repaired
  (the blackholed window),
* ``slo_resync_duration_seconds`` -- DBD handshake initiation to the
  terminating reply (crash/partition recovery),
* ``slo_control_frames_<cause>_total`` -- reliable frames put on the
  wire attributable to each cause kind (the control-message overhead the
  *Systematic Performance Evaluation of Multipoint Protocols*
  methodology prices convergence in),
* ``slo_never_converged_total`` / ``slo_zero_member_events_total`` --
  the degenerate outcomes: chains still open at shutdown, and events
  whose predicted member set is empty (nothing to install; converged by
  definition).

All instruments live on the registry the caller provides (the fabric
passes its shared network registry), so they ride the existing
Prometheus dump, snapshot, and delta plumbing unchanged.

Stdlib-only leaf module (the fabric and transport import it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field
from typing import Callable, Dict, FrozenSet, Optional, Set, Tuple

from repro.obs.context import CAUSE_CODES, TraceContext
from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["SLO_BUCKETS", "SloTracker"]

#: Convergence-window bucket bounds, in seconds.  The live runtime's
#: windows span ~1ms (one-hop install at zero loss) to whole seconds
#: (retransmit storms through 10% loss), so the scale is log-ish.
SLO_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


@dataclass
class _Chain:
    """One open convergence chain: a cause waiting for its installs."""

    ctx: TraceContext
    needed: FrozenSet[int]
    started: float
    installed: Set[int] = dc_field(default_factory=set)


class SloTracker:
    """Track convergence chains keyed by causal trace id.

    A chain opens when a cause is born (:meth:`begin`) with the set of
    switches that must install before the cause counts as converged,
    accumulates installs (:meth:`record_install`), and closes into the
    cause-appropriate histogram when the needed set is covered.  The
    needed set is *refreshed* from each installer's member view -- the
    membership a chain must cover can itself change while the chain is
    open (a member leaves mid-convergence), and the installers' views
    are the authority on who still matters.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.registry = registry
        self._clock = clock if clock is not None else time.monotonic
        self._chains: Dict[str, _Chain] = {}
        self._resyncs: Dict[Tuple[int, int], float] = {}
        self.install_latency = registry.histogram(
            "slo_install_latency_seconds",
            "request/membership change to all-members-installed, seconds",
            buckets=SLO_BUCKETS,
        )
        self.repair_latency = registry.histogram(
            "slo_repair_latency_seconds",
            "link failure detected to repaired everywhere (blackholed "
            "window), seconds",
            buckets=SLO_BUCKETS,
        )
        self.resync_duration = registry.histogram(
            "slo_resync_duration_seconds",
            "DBD handshake initiation to terminating reply, seconds",
            buckets=SLO_BUCKETS,
        )
        self.frr_switchover = registry.histogram(
            "slo_frr_switchover_seconds",
            "link failure detected to backup fragment active (the fast-"
            "reroute half of the repair window; slo_repair_latency_seconds "
            "keeps measuring the full convergence half)",
            buckets=SLO_BUCKETS,
        )
        self.frr_activations = registry.counter(
            "frr_activations_total",
            "backup fragments activated by local failure detection",
        )
        self.frr_retired = registry.counter(
            "frr_retired_total",
            "active backup fragments retired by a reconciling install",
        )
        self.never_converged = registry.counter(
            "slo_never_converged_total",
            "convergence chains still open at shutdown",
        )
        self.zero_member_events = registry.counter(
            "slo_zero_member_events_total",
            "events whose predicted member set was empty (trivially "
            "converged)",
        )
        self._control: Dict[str, object] = {}
        for cause in CAUSE_CODES:
            slug = cause.replace("-", "_")
            self._control[cause] = registry.counter(
                f"slo_control_frames_{slug}_total",
                f"reliable frames queued on behalf of {cause} causes",
            )

    # -- chain lifecycle -----------------------------------------------------

    def begin(self, ctx: TraceContext, needed) -> None:
        """Open a chain: ``needed`` switches must install to converge.

        An empty needed set is the degenerate zero-member case (a leave
        emptying the connection): counted, and converged immediately --
        opening a chain would leave it dangling forever.
        """
        needed = frozenset(needed)
        if not needed:
            self.zero_member_events.inc()
            return
        self._chains[ctx.trace_id()] = _Chain(
            ctx=ctx, needed=needed, started=self._clock()
        )

    def record_install(self, ctx: Optional[TraceContext], switch: int,
                       member_set) -> None:
        """One switch installed under ``ctx``; close the chain if covered.

        ``member_set`` is the installer's current member view; the
        chain's needed set is refreshed to it (intersected installs stay
        counted) so members that left mid-chain stop being waited for.
        """
        if ctx is None:
            return
        chain = self._chains.get(ctx.trace_id())
        if chain is None:
            return
        chain.installed.add(switch)
        members = frozenset(member_set)
        if members:
            chain.needed = members
        if chain.needed <= chain.installed:
            self._histogram_for(chain.ctx).observe(
                self._clock() - chain.started
            )
            del self._chains[chain.ctx.trace_id()]

    def record_frr_activation(
        self, ctx: Optional[TraceContext], count: int
    ) -> None:
        """``count`` connections switched over to backup fragments.

        When ``ctx`` names an open link-down chain, the elapsed time
        since the chain opened lands in the switchover histogram -- this
        is the fast-reroute half of the repair window (detection to
        data-plane-restored), while ``slo_repair_latency_seconds`` keeps
        measuring the full convergence half (detection to re-installed
        everywhere).  Activation at a non-detecting endpoint has no
        chain; only the counter moves.
        """
        self.frr_activations.inc(count)
        if ctx is not None:
            chain = self._chains.get(ctx.trace_id())
            if chain is not None:
                self.frr_switchover.observe(self._clock() - chain.started)

    def record_frr_retired(self, count: int) -> None:
        """Count fragments retired by a reconciling install."""
        if count:
            self.frr_retired.inc(count)

    def _histogram_for(self, ctx: TraceContext) -> Histogram:
        if ctx.cause == "link-down":
            return self.repair_latency
        if ctx.cause == "resync":
            return self.resync_duration
        return self.install_latency

    # -- resync handshake ------------------------------------------------------

    def resync_started(self, src: int, peer: int) -> None:
        """A DBD handshake opened from ``src`` toward ``peer``."""
        self._resyncs[(src, peer)] = self._clock()

    def resync_finished(self, src: int, peer: int) -> None:
        """The terminating reply DBD arrived back at ``src`` from ``peer``."""
        started = self._resyncs.pop((src, peer), None)
        if started is not None:
            self.resync_duration.observe(self._clock() - started)

    # -- control overhead ------------------------------------------------------

    def record_control(self, cause: str) -> None:
        """Count one reliable frame queued on behalf of ``cause``."""
        counter = self._control.get(cause)
        if counter is not None:
            counter.inc()

    # -- shutdown --------------------------------------------------------------

    def open_chains(self) -> Dict[str, Tuple[FrozenSet[int], FrozenSet[int]]]:
        """Diagnostic: ``{trace_id: (needed, installed)}`` of open chains."""
        return {
            tid: (chain.needed, frozenset(chain.installed))
            for tid, chain in self._chains.items()
        }

    def finalize(self) -> int:
        """Close the books: open chains count as never-converged.

        Returns how many chains were abandoned.  Open resync handshakes
        are dropped silently (a crashed peer legitimately never replies).
        """
        abandoned = len(self._chains)
        if abandoned:
            self.never_converged.inc(abandoned)
        self._chains.clear()
        self._resyncs.clear()
        return abandoned
