"""Per-phase wall-time profiling of a representative D-GMC run.

``python -m repro profile`` runs a deterministic membership-churn plus
link-churn workload with a fresh (sink-less) tracer enabled, measures the
wall time around the simulation, and decomposes it into the tracer's
per-category **self time** (span duration minus enclosed spans):

* ``spf``             -- full Dijkstra executions,
* ``flooding``        -- flood scheduling in the fabric,
* ``arbitration``     -- topology computation, LSA drains, installs,
* ``kernel-overhead`` -- event dispatch and run-loop bookkeeping.

Because the kernel's outer ``run`` span covers the whole event loop and
every other span nests inside it, the categories partition the loop's
wall time: their sum must cover >= 90% of the measured time (gated by the
CLI's exit status and by ``tests/test_obs.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict

#: Tracer category -> display phase (unknown categories pass through).
PHASE_NAMES = {
    "spf": "spf",
    "flood": "flooding",
    "arbitration": "arbitration",
    "kernel": "kernel-overhead",
}

#: Canonical display order.
PHASE_ORDER = ("spf", "flooding", "arbitration", "kernel-overhead")


@dataclass
class PhaseBreakdown:
    """Wall-time decomposition of one profiled run."""

    #: display phase -> accumulated span self time, wall seconds.
    phases: Dict[str, float]
    #: Wall time measured around the simulation run.
    wall_s: float
    events_dispatched: int = 0
    sim_time: float = 0.0

    @property
    def accounted_s(self) -> float:
        return sum(self.phases.values())

    @property
    def coverage(self) -> float:
        """Fraction of the measured wall time the phases account for."""
        return self.accounted_s / self.wall_s if self.wall_s > 0 else 0.0

    def render(self) -> str:
        lines = ["phase breakdown (wall time):"]
        ordered = [p for p in PHASE_ORDER if p in self.phases]
        ordered += sorted(set(self.phases) - set(PHASE_ORDER))
        for phase in ordered:
            secs = self.phases[phase]
            share = secs / self.wall_s if self.wall_s > 0 else 0.0
            lines.append(f"  {phase:<16} {secs * 1e3:9.2f} ms  {share:6.1%}")
        lines.append(
            f"  {'accounted':<16} {self.accounted_s * 1e3:9.2f} ms  "
            f"{self.coverage:6.1%} of {self.wall_s * 1e3:.2f} ms measured"
        )
        lines.append(
            f"  ({self.events_dispatched} kernel events, "
            f"sim time {self.sim_time:.1f})"
        )
        return "\n".join(lines)


def _profile_workload(quick: bool, seed: int):
    """Build the profiled deployment with its events already injected.

    Conflicting join bursts exercise arbitration (triggered proposals,
    withdrawals), leaves/rejoins keep the churn going, and link flaps
    drive non-MC LSAs plus SPF invalidations -- so every phase shows up.
    """
    import random

    from repro.core import DgmcNetwork, JoinEvent, LeaveEvent, ProtocolConfig
    from repro.core.events import LinkEvent
    from repro.topo.generators import waxman_network

    n = 16 if quick else 48
    joiners = 6 if quick else 16
    rng = random.Random(seed)
    net = waxman_network(n, rng)
    dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
    dgmc.register_symmetric(1)
    members = rng.sample(range(net.n), joiners)
    for sw in members:  # conflicting burst
        dgmc.inject(JoinEvent(sw, 1), at=1.0 + rng.random())
    t = 100.0
    for sw in members[: joiners // 2]:  # staggered leave/rejoin churn
        dgmc.inject(LeaveEvent(sw, 1), at=t)
        t += 25.0
        dgmc.inject(JoinEvent(sw, 1), at=t)
        t += 25.0
    flaps = 2 if quick else 6
    for link in list(net.links())[:flaps]:  # link churn
        dgmc.inject(LinkEvent(link.u, link.u, link.v, up=False), at=t)
        t += 25.0
        dgmc.inject(LinkEvent(link.u, link.u, link.v, up=True), at=t)
        t += 25.0
    return dgmc


def run_profile(quick: bool = False, seed: int = 1996) -> PhaseBreakdown:
    """Run the profile workload under a fresh tracer; return the breakdown.

    The tracer is enabled but has **no sinks**: spans only feed the
    per-category self-time accounting, keeping the measurement itself
    cheap.  The process-wide tracer is restored afterwards.
    """
    from repro.obs.tracer import Tracer, use_tracer

    dgmc = _profile_workload(quick, seed)
    tracer = Tracer(enabled=True)
    with use_tracer(tracer):
        start = perf_counter()
        dgmc.run()
        wall = perf_counter() - start

    phases: Dict[str, float] = {}
    for cat, secs in tracer.phase_breakdown().items():
        name = PHASE_NAMES.get(cat, cat or "other")
        phases[name] = phases.get(name, 0.0) + secs
    return PhaseBreakdown(
        phases=phases,
        wall_s=wall,
        events_dispatched=dgmc.sim.events_dispatched,
        sim_time=dgmc.sim.now,
    )
