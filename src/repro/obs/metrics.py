"""Named counters, gauges, and histograms with a Prometheus-style dump.

A :class:`MetricsRegistry` is a flat namespace of metric instruments.
Hot paths increment :class:`Counter` / observe into :class:`Histogram`
directly (one attribute bump, no locking -- the simulator is
single-threaded); *derived* values are contributed lazily by registered
**collectors**, callables invoked right before every :meth:`snapshot` /
:meth:`to_prometheus` so sampling costs nothing between dumps.

Two registry scopes exist in practice:

* the process-wide default :data:`REGISTRY` (Dijkstra run totals, global
  SPF cache counters -- registered by :mod:`repro.lsr.spf` and
  :mod:`repro.lsr.spfcache` at import), and
* one registry per protocol network (``DgmcNetwork.metrics`` and the
  baselines' equivalents), wired by :mod:`repro.obs.attach`, which the
  harness snapshots and diffs around the measured phase of every trial.

Everything here is stdlib-only; the module must stay a leaf so the sim
kernel and the SPF layer can import it without cycles.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
]

#: Default histogram bucket upper bounds (generic small-count scale).
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Set the absolute total (collector use: mirroring an external
        monotone counter into the registry)."""
        self.value = float(value)

    def samples(self) -> Iterable[Tuple[str, float]]:
        yield self.name, self.value


class Gauge:
    """A value that can go up and down (sampled state, not a total)."""

    __slots__ = ("name", "help", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def samples(self) -> Iterable[Tuple[str, float]]:
        yield self.name, self.value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket is always
    present.  :meth:`observe` is O(#buckets) -- keep bucket lists short
    on hot paths.
    """

    __slots__ = ("name", "help", "buckets", "counts", "inf_count", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self.counts = [0] * len(self.buckets)
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.inf_count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+Inf``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the buckets (0 <= q <= 1).

        Linear interpolation inside the winning bucket, the standard
        Prometheus ``histogram_quantile`` estimate.  Observations above
        the last finite bound clamp to that bound (there is no upper
        edge to interpolate toward); an empty histogram reports 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for i, (bound, n) in enumerate(zip(self.buckets, self.counts)):
            if running + n >= rank and n > 0:
                lower = self.buckets[i - 1] if i > 0 else 0.0
                fraction = min(max((rank - running) / n, 0.0), 1.0)
                return lower + (bound - lower) * fraction
            running += n
        return self.buckets[-1] if self.buckets else 0.0

    def samples(self) -> Iterable[Tuple[str, float]]:
        # Flat (diffable) sample names; the Prometheus dump re-derives
        # the proper bucket label syntax from the instrument itself.
        yield f"{self.name}_count", float(self.count)
        yield f"{self.name}_sum", self.sum


def _format_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


def _escape_help(text: str) -> str:
    """Escape HELP text per the Prometheus exposition format.

    Backslashes and newlines are the only characters the format escapes
    in HELP lines; an unescaped newline would otherwise break the dump
    into a bogus sample line.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class MetricsRegistry:
    """Flat namespace of named instruments with lazy collectors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- instrument access (get-or-create) ---------------------------------

    def _get(self, name: str, cls, **kw):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kw)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help=help, buckets=buckets)
            self._metrics[name] = metric
        elif type(metric) is not Histogram:
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def register_collector(
        self, fn: Callable[["MetricsRegistry"], None]
    ) -> Callable[["MetricsRegistry"], None]:
        """Register ``fn(registry)`` to run before every snapshot/dump."""
        self._collectors.append(fn)
        return fn

    def collect(self) -> None:
        for fn in self._collectors:
            fn(self)

    # -- output ------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{sample_name: value}`` after running the collectors.

        Histograms contribute ``<name>_count`` and ``<name>_sum``
        samples, so the snapshot is closed under :meth:`delta`.
        """
        self.collect()
        out: Dict[str, float] = {}
        for metric in self._metrics.values():
            for sample, value in metric.samples():
                out[sample] = value
        return out

    def delta(self, before: Dict[str, float]) -> Dict[str, float]:
        """Snapshot diffed against ``before``.

        Monotone samples (counters, histogram count/sum) are subtracted;
        gauges report their *current* value (a level, not a total).
        Samples absent from ``before`` diff against zero.
        """
        self.collect()
        out: Dict[str, float] = {}
        for metric in self._metrics.values():
            monotone = metric.kind != "gauge"
            for sample, value in metric.samples():
                out[sample] = value - before.get(sample, 0.0) if monotone else value
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every instrument."""
        self.collect()
        lines: List[str] = []
        for metric in self._metrics.values():
            if metric.help:
                lines.append(
                    f"# HELP {metric.name} {_escape_help(metric.help)}"
                )
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, cum in metric.cumulative():
                    lines.append(
                        f'{metric.name}_bucket{{le="{_format_bound(bound)}"}} {cum}'
                    )
                lines.append(f"{metric.name}_sum {_format_value(metric.sum)}")
                lines.append(f"{metric.name}_count {metric.count}")
            else:
                lines.append(f"{metric.name} {_format_value(metric.value)}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop all instruments and collectors (test isolation)."""
        self._metrics.clear()
        self._collectors.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetricsRegistry({len(self._metrics)} metrics)"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


#: Process-wide default registry (global instrumentation totals).
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


def merge_sum(parts: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Key-wise sum of snapshot/delta dicts (sweep-level aggregation)."""
    total: Dict[str, float] = {}
    for part in parts:
        for key, value in part.items():
            total[key] = total.get(key, 0.0) + value
    return total
