"""Unified instrumentation layer: structured tracing + metrics registry.

Zero-dependency observability spine for the reproduction (see
``docs/observability.md``):

* :mod:`repro.obs.tracer` -- process-wide :data:`~repro.obs.tracer.TRACER`
  emitting span/instant events (sim-time *and* wall-time) to ring-buffer /
  JSONL sinks, exportable as Chrome ``trace_event`` JSON for Perfetto.
* :mod:`repro.obs.metrics` -- :class:`~repro.obs.metrics.MetricsRegistry`
  of counters/gauges/histograms with a Prometheus text dump, snapshot and
  delta APIs, and lazy collectors.
* :mod:`repro.obs.context` -- the compact causal
  :class:`~repro.obs.context.TraceContext` carried inside wire frames so
  flood -> compute -> arbitration -> install is one trace tree across
  hosts.
* :mod:`repro.obs.slo` -- :class:`~repro.obs.slo.SloTracker` turning
  causal chains into convergence histograms (install latency, blackholed
  repair window, resync duration, per-cause control overhead).
* :mod:`repro.obs.flight` -- the failure flight recorder: bounded recent
  history + metrics snapshot dumped as ``FLIGHT_*.json`` the instant an
  invariant breaks.
* :mod:`repro.obs.merge` -- fuse per-host JSONL traces (epoch-aligned
  ``clock_sync`` metadata) into one cross-host Chrome trace.
* :mod:`repro.obs.attach` -- wires a per-network registry onto the
  protocol stacks (SPF cache counters, flood counters, kernel gauges).
* :mod:`repro.obs.profile` -- the per-phase wall-time breakdown behind
  ``python -m repro profile``.

Only the stdlib-only leaves (``metrics``, ``tracer``, ``context``,
``slo``, ``flight``, ``merge``) are imported eagerly, so any module
(including the sim kernel) may import this package without cycles.
``attach`` and ``profile`` reach back into the protocol stack and must
be imported explicitly.
"""

from repro.obs.context import (  # noqa: F401
    CAUSE_CODES,
    CAUSE_NAMES,
    TraceContext,
    TraceContextError,
)
from repro.obs.flight import (  # noqa: F401
    FlightRecorder,
    dump_on_violation,
    install_recorder,
    installed_recorder,
    uninstall_recorder,
)
from repro.obs.merge import (  # noqa: F401
    MergeError,
    export_host_traces,
    merge_traces,
)
from repro.obs.metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from repro.obs.slo import (  # noqa: F401
    SLO_BUCKETS,
    SloTracker,
)
# NOTE: ``TRACER`` itself is deliberately not re-exported -- a from-import
# would bind a stale reference across ``use_tracer`` swaps.  Read it as
# ``repro.obs.tracer.TRACER`` or via :func:`get_tracer`.
from repro.obs.tracer import (  # noqa: F401
    JsonlSink,
    RingBufferSink,
    TraceEvent,
    Tracer,
    get_tracer,
    use_tracer,
)
