"""Unified instrumentation layer: structured tracing + metrics registry.

Zero-dependency observability spine for the reproduction (see
``docs/observability.md``):

* :mod:`repro.obs.tracer` -- process-wide :data:`~repro.obs.tracer.TRACER`
  emitting span/instant events (sim-time *and* wall-time) to ring-buffer /
  JSONL sinks, exportable as Chrome ``trace_event`` JSON for Perfetto.
* :mod:`repro.obs.metrics` -- :class:`~repro.obs.metrics.MetricsRegistry`
  of counters/gauges/histograms with a Prometheus text dump, snapshot and
  delta APIs, and lazy collectors.
* :mod:`repro.obs.attach` -- wires a per-network registry onto the
  protocol stacks (SPF cache counters, flood counters, kernel gauges).
* :mod:`repro.obs.profile` -- the per-phase wall-time breakdown behind
  ``python -m repro profile``.

Only ``metrics`` and ``tracer`` are imported eagerly; both are stdlib-only
leaves, so any module (including the sim kernel) may import them without
cycles.  ``attach`` and ``profile`` reach back into the protocol stack and
must be imported explicitly.
"""

from repro.obs.metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
# NOTE: ``TRACER`` itself is deliberately not re-exported -- a from-import
# would bind a stale reference across ``use_tracer`` swaps.  Read it as
# ``repro.obs.tracer.TRACER`` or via :func:`get_tracer`.
from repro.obs.tracer import (  # noqa: F401
    JsonlSink,
    RingBufferSink,
    TraceEvent,
    Tracer,
    get_tracer,
    use_tracer,
)
