"""Wire a :class:`~repro.obs.metrics.MetricsRegistry` onto a protocol network.

All three protocol stacks (:class:`~repro.core.protocol.DgmcNetwork`,
:class:`~repro.baselines.mospf.MospfNetwork`,
:class:`~repro.baselines.brute_force.BruteForceNetwork`) expose the same
substrate surface -- ``routers`` (unicast routers with per-LSDB SPF cache
stats), ``net`` (the physical :class:`~repro.topo.graph.Network`),
``fabric`` (the flooding fabric), and ``sim`` (the kernel).  This module
duck-types on that surface so the metrics plumbing exists exactly once:

* :func:`attach_network_metrics` builds the per-network registry and
  registers one collector that samples the SPF cache counters, the flood
  counters, and the kernel's dispatch/queue state on every snapshot.
* :func:`network_spf_cache_stats` is the single implementation behind the
  networks' ``spf_cache_stats()`` methods: it reads the registry snapshot
  (not hand-threaded fields) and rehydrates a
  :class:`~repro.lsr.spfcache.CacheStats` for backward-compatible
  arithmetic (the harness diffs stats across trial phases).

Imports of the protocol stack stay inside functions, keeping
``repro.obs`` importable from the lowest layers.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "attach_network_metrics",
    "attach_stress_metrics",
    "network_spf_cache_stats",
]

#: Sample names the network collector maintains (shared with TrialMetrics).
SPF_HITS = "spf_cache_hits_total"
SPF_MISSES = "spf_cache_misses_total"
SPF_INVALIDATIONS = "spf_cache_invalidations_total"
SPF_FULL_RUNS = "spf_cache_full_runs_total"
SPF_ISPF_REPAIRS = "spf_ispf_repairs_total"
SPF_ISPF_FALLBACKS = "spf_ispf_full_fallbacks_total"
SPF_RELAXATIONS = "spf_relaxations_total"
DIJKSTRA_RUNS = "spf_dijkstra_runs_total"
COMPUTATIONS = "computations_total"
FLOOD_OPERATIONS = "flood_operations_total"
LSA_DELIVERIES = "lsa_deliveries_total"
EVENTS_DISPATCHED = "sim_events_dispatched_total"
QUEUE_DEPTH = "sim_queue_depth"
SIM_NOW = "sim_now"

#: Sample names recorded per systematic-exploration run (repro stress).
STRESS_STATES = "stress_states_total"
STRESS_PRUNED = "stress_pruned_total"
STRESS_TRANSITIONS = "stress_transitions_total"
STRESS_COUNTEREXAMPLES = "stress_counterexamples_total"
STRESS_TERMINALS = "stress_terminal_states_total"
STRESS_EXHAUSTIVE = "stress_exhaustive"
STRESS_MAX_DEPTH = "stress_max_depth"


def _combined_cache_stats(network):
    from repro.lsr.spfcache import combined_stats

    return combined_stats(
        [r.lsdb.spf_stats for r in network.routers.values()]
        + [network.net.spf_stats]
    )


def attach_network_metrics(
    network, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Create (or extend) a registry sampling ``network``'s substrates.

    The returned registry is live: every :meth:`~MetricsRegistry.snapshot`
    / :meth:`~MetricsRegistry.to_prometheus` re-samples the network, so
    callers diff snapshots around a phase instead of threading counters by
    hand.
    """
    reg = registry if registry is not None else MetricsRegistry()

    def _collect(reg: MetricsRegistry) -> None:
        from repro.lsr.spf import RUN_COUNTER

        stats = _combined_cache_stats(network)
        reg.counter(SPF_HITS, "SPF cache hits across LSDB images and "
                    "network views").set_total(stats.hits)
        reg.counter(SPF_MISSES, "SPF cache misses").set_total(stats.misses)
        reg.counter(SPF_INVALIDATIONS, "SPF cache image invalidations "
                    "(LSA installs, link state changes)").set_total(
                        stats.invalidations)
        reg.counter(SPF_FULL_RUNS, "full Dijkstra executions on behalf of "
                    "this network's caches").set_total(stats.full_runs)
        reg.counter(SPF_ISPF_REPAIRS, "cache misses answered by incremental "
                    "SPF repair instead of full Dijkstra").set_total(
                        stats.ispf_repairs)
        reg.counter(SPF_ISPF_FALLBACKS, "cache misses that fell back to full "
                    "Dijkstra despite repair history").set_total(
                        stats.ispf_full_fallbacks)
        reg.counter(SPF_RELAXATIONS, "edge relaxations spent by this "
                    "network's caches (full runs and repairs)").set_total(
                        stats.relaxations)
        reg.counter(DIJKSTRA_RUNS, "process-wide full Dijkstra executions "
                    "(cached misses and uncached calls)").set_total(
                        RUN_COUNTER.count)
        reg.counter(FLOOD_OPERATIONS, "flooding operations initiated, all "
                    "kinds").set_total(network.fabric.total_floods)
        reg.counter(LSA_DELIVERIES, "individual LSA deliveries scheduled "
                    "by the fabric").set_total(network.fabric.delivery_count)
        reg.counter(EVENTS_DISPATCHED, "simulation kernel events "
                    "dispatched").set_total(network.sim.events_dispatched)
        reg.gauge(QUEUE_DEPTH, "pending entries in the kernel event "
                  "heap").set(network.sim.queue_depth)
        reg.gauge(SIM_NOW, "current simulated time").set(network.sim.now)
        comps = getattr(network, "total_computations", None)
        if comps is not None:
            reg.counter(COMPUTATIONS, "topology computations performed"
                        ).set_total(comps() if callable(comps) else comps)

    reg.register_collector(_collect)
    return reg


def attach_stress_metrics(
    report, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Record a :class:`~repro.stress.explore.StressReport` in a registry.

    Unlike :func:`attach_network_metrics` this is a point-in-time record
    (the exploration already finished), so the totals are set once rather
    than re-sampled by a collector.  When the caller accumulates several
    scenarios into one registry, counters add up; the ``stress_exhaustive``
    gauge ANDs (drops to 0 as soon as any scenario was not exhausted) and
    ``stress_max_depth`` keeps the maximum.
    """
    reg = registry if registry is not None else MetricsRegistry()
    states = reg.counter(
        STRESS_STATES, "canonical states explored by repro stress"
    )
    pruned = reg.counter(
        STRESS_PRUNED, "already-visited canonical states pruned"
    )
    transitions = reg.counter(
        STRESS_TRANSITIONS, "state transitions executed (replays included)"
    )
    counterexamples = reg.counter(
        STRESS_COUNTEREXAMPLES, "invariant-violating schedules found"
    )
    terminals = reg.counter(
        STRESS_TERMINALS, "terminal (all events fired, quiescent) states"
    )
    snap = reg.snapshot()
    states.set_total(snap.get(STRESS_STATES, 0) + report.states_explored)
    pruned.set_total(snap.get(STRESS_PRUNED, 0) + report.pruned)
    transitions.set_total(snap.get(STRESS_TRANSITIONS, 0) + report.transitions)
    counterexamples.set_total(
        snap.get(STRESS_COUNTEREXAMPLES, 0) + len(report.counterexamples)
    )
    terminals.set_total(snap.get(STRESS_TERMINALS, 0) + report.terminal_states)
    reg.gauge(
        STRESS_EXHAUSTIVE,
        "1 if every recorded exploration exhausted its state space",
    ).set(
        1.0
        if report.exhaustive and snap.get(STRESS_EXHAUSTIVE, 1.0)
        else 0.0
    )
    reg.gauge(STRESS_MAX_DEPTH, "deepest schedule explored").set(
        max(snap.get(STRESS_MAX_DEPTH, 0), report.max_depth_seen)
    )
    return reg


def network_spf_cache_stats(network):
    """``spf_cache_stats()`` for any protocol network, via its registry.

    Returns a :class:`~repro.lsr.spfcache.CacheStats` rebuilt from the
    registry snapshot so existing callers keep their diff arithmetic.
    """
    from repro.lsr.spfcache import CacheStats

    snap = network.metrics.snapshot()
    return CacheStats(
        hits=int(snap.get(SPF_HITS, 0)),
        misses=int(snap.get(SPF_MISSES, 0)),
        invalidations=int(snap.get(SPF_INVALIDATIONS, 0)),
        full_runs=int(snap.get(SPF_FULL_RUNS, 0)),
        ispf_repairs=int(snap.get(SPF_ISPF_REPAIRS, 0)),
        ispf_full_fallbacks=int(snap.get(SPF_ISPF_FALLBACKS, 0)),
        relaxations=int(snap.get(SPF_RELAXATIONS, 0)),
    )
