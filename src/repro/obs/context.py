"""Causal trace context: the compact ID that follows a cause across hosts.

Every *cause* the live runtime reacts to -- a connection request
(join/leave), a link event, a neighbor resync -- mints exactly one
:class:`TraceContext` at the host where it is born.  The context rides
on every LSA and resync snapshot that the cause provokes (stamped into
the version-2 frame bodies by :mod:`repro.net.frames`), is re-attached
on decode with its hop counter bumped, and is adopted into the
connection state by :class:`~repro.core.switch.DgmcSwitch`, so the
flood -> compute -> arbitration -> install chain on every host carries
the same ``trace_id``.  That is what lets

* the tracer draw one connected causal tree across host lanes
  (flow events keyed on the context, see
  :meth:`~repro.obs.tracer.Tracer.flow`),
* the SLO tracker (:mod:`repro.obs.slo`) measure request-to-installed
  and failure-to-repair windows end to end, and
* the flight recorder name the cause a violation belongs to.

The wire form is a fixed 12-byte struct (origin switch, connection id,
mint sequence, cause code, hop counter) so the context never dominates
frame size; the discrete-event backend never mints contexts, keeping the
pure-simulation traces byte-identical to PR 2.

Stdlib-only leaf module: :mod:`repro.core` imports it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict

__all__ = [
    "CAUSE_CODES",
    "CAUSE_NAMES",
    "TraceContext",
    "TraceContextError",
]

#: Cause kinds a context can be minted for, with their u8 wire codes.
CAUSE_CODES: Dict[str, int] = {
    "request": 1,  # connection creation (first join)
    "join": 2,
    "leave": 3,
    "link-down": 4,  # includes hello/dead-interval detected failures
    "link-up": 5,
    "resync": 6,  # DBD exchange after crash/partition heal
}

CAUSE_NAMES: Dict[int, str] = {code: name for name, code in CAUSE_CODES.items()}

# origin u16 | connection i32 (-1 = no connection) | seq u32 | cause u8 | hop u8
_WIRE = struct.Struct("!HiIBB")


class TraceContextError(ValueError):
    """A context failed wire-level validation."""


@dataclass(frozen=True)
class TraceContext:
    """Causal identity of one protocol cause, propagated hop by hop.

    ``origin``/``seq``/``cause`` identify the cause globally (each host
    mints ``seq`` from a private counter); ``connection_id`` is ``-1``
    for causes not tied to a connection (raw link events); ``hop``
    counts wire traversals and is the only field that changes in
    flight -- equality and :meth:`trace_id` deliberately ignore it.
    """

    origin: int
    connection_id: int
    cause: str
    seq: int
    hop: int = field(default=0, compare=False)

    WIRE_SIZE = _WIRE.size

    def __post_init__(self) -> None:
        if self.cause not in CAUSE_CODES:
            raise TraceContextError(f"unknown trace cause {self.cause!r}")

    def trace_id(self) -> str:
        """Stable human-readable id, shared by every hop of the chain."""
        return f"o{self.origin}.{self.seq}.{self.cause}"

    def flow_id(self, src: int, dest: int, seq: int) -> int:
        """Chrome flow-event id for one wire transfer of this cause.

        Flow ids must be unique per arrow, so the frame's (src, dest,
        seq) triple is folded in; the Chrome format wants a plain int.
        """
        return hash((self.origin, self.seq, self.cause, src, dest, seq)) & 0x7FFFFFFF

    def next_hop(self) -> "TraceContext":
        """The context one wire traversal later (hop capped at 255)."""
        return TraceContext(
            self.origin,
            self.connection_id,
            self.cause,
            self.seq,
            min(self.hop + 1, 255),
        )

    def to_args(self) -> Dict[str, object]:
        """Span/instant ``args`` describing this context."""
        return {
            "trace_id": self.trace_id(),
            "cause": self.cause,
            "origin": self.origin,
            "hop": self.hop,
        }

    # -- wire form ---------------------------------------------------------

    def to_wire(self) -> bytes:
        return _WIRE.pack(
            self.origin,
            self.connection_id,
            self.seq,
            CAUSE_CODES[self.cause],
            self.hop,
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "TraceContext":
        if len(data) != _WIRE.size:
            raise TraceContextError(
                f"trace context needs {_WIRE.size} bytes, got {len(data)}"
            )
        origin, connection_id, seq, code, hop = _WIRE.unpack(data)
        cause = CAUSE_NAMES.get(code)
        if cause is None:
            raise TraceContextError(f"unknown trace cause code {code}")
        return cls(origin, connection_id, cause, seq, hop)
