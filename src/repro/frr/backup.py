"""Precomputed backup fragments and fast reroute for installed topologies.

D-GMC repairs a multicast topology only after the full
flood -> compute -> arbitrate -> install cycle converges, so a tree-edge
failure opens a blackhole window in which on-tree traffic is silently
dropped.  This module closes that window with link-protection bypass
detours in the style of the Abujassar & Ghanbari recovery schema
(PAPERS.md): at install time, every switch precomputes -- for each edge
of the installed :class:`~repro.trees.base.McTopology` -- a loop-free
node path that reconnects the two subtrees the edge's failure would
sever, using the next-hop DAGs the mDT-style
:func:`repro.lsr.spf.next_hop_dag` extraction derives from the SPF runs
already cached in :class:`~repro.lsr.spfcache.SpfCache`.

The detour is a *tunnel*: interior detour switches need no multicast
state -- the data plane rides the precomputed node path hop by hop and
resumes normal tree forwarding at the far endpoint of the failed edge.
Activation is purely local (the detecting switch flips the fragment on
in O(1), before any LSA floods); the normal D-GMC repair cycle later
reconciles -- when the re-proposed tree installs, the active backup is
retired and fragments are recomputed against the new topology.  None of
this state enters :meth:`~repro.core.state.McState.canonical` or the
wire-level tree encoding, so agreement and byte-identity invariants are
untouched by construction: a run that activated FRR converges to the
same installed trees as one that never did.

Bridge edges (whose removal disconnects the underlying graph) have no
detour and get no fragment -- their failure blackholes until the repair
cycle converges, exactly as before.

The detour search is deliberately *local* (it never calls
``spf.dijkstra_uncached``), so ``spf.RUN_COUNTER`` / ``RELAX_COUNTER``
and the cache counters the benchmark gates pin stay bit-identical when
FRR is off, and FRR-on runs only add its own deterministic work.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.lsr import spf

__all__ = [
    "BackupFragment",
    "BackupPlan",
    "compute_backup_plan",
    "detour_delay",
    "detour_is_live",
]


@dataclass(frozen=True)
class BackupFragment:
    """One precomputed detour protecting one tree edge.

    ``edge`` is the protected tree edge in canonical (sorted) form;
    ``path`` is the loop-free detour node path from ``edge[0]`` to
    ``edge[1]`` that avoids the edge itself.  Links are undirected, so a
    switch detecting the failure at the ``edge[1]`` end rides the
    reversed path.  ``cost`` is the summed link weight of the detour in
    the image it was computed against (diagnostic only; the data plane
    re-prices hops against the live network at forwarding time).
    """

    edge: Tuple[int, int]
    path: Tuple[int, ...]
    cost: float

    @property
    def span(self) -> int:
        """Detour length in hops (the TTL the tunnel consumes)."""
        return len(self.path) - 1

    def path_from(self, endpoint: int) -> Tuple[int, ...]:
        """The detour node path oriented to start at ``endpoint``."""
        if endpoint == self.path[0]:
            return self.path
        if endpoint == self.path[-1]:
            return tuple(reversed(self.path))
        raise ValueError(
            f"{endpoint} is not an endpoint of fragment {self.edge}"
        )


@dataclass(frozen=True)
class BackupPlan:
    """Every fragment protecting one installed topology.

    ``uncovered`` lists the tree edges no loop-free detour exists for
    (bridges of the network image) -- their failures blackhole until the
    D-GMC repair cycle converges, and the soak gates account them
    separately.
    """

    fragments: Tuple[BackupFragment, ...]
    uncovered: Tuple[Tuple[int, int], ...] = ()

    def fragment_for(self, u: int, v: int) -> Optional[BackupFragment]:
        edge = (u, v) if u <= v else (v, u)
        for fragment in self.fragments:
            if fragment.edge == edge:
                return fragment
        return None

    def covers(self, u: int, v: int) -> bool:
        return self.fragment_for(u, v) is not None


def _masked_shortest_path(
    image: Mapping[int, Mapping[int, float]],
    source: int,
    target: int,
    banned: Tuple[int, int],
) -> Optional[List[int]]:
    """Shortest ``source -> target`` node path avoiding the ``banned``
    edge.  A self-contained Dijkstra (lowest-parent-id tie-break, like
    :func:`repro.lsr.spf.dijkstra`) that deliberately bypasses the SPF
    run/relaxation counters: FRR work must not perturb the deterministic
    counter baselines the benchmark gates pin.

    When the image carries a compiled flat-array core (see
    :mod:`repro.lsr.csr`), the masked solve runs there -- a cloned
    weight array with the banned slots dead -- byte-identical (the walk
    below records canonical lowest-id parents, which is exactly how the
    CSR core reconstructs paths) and equally counter-free."""
    csr_getter = getattr(image, "csr_graph", None)
    if csr_getter is not None:
        graph = csr_getter()
        if graph is not None and graph.backend == "scipy":
            return graph.masked_path(source, target, banned)
    bu, bv = banned
    dist: Dict[int, float] = {}
    parent: Dict[int, Optional[int]] = {}
    heap: List[Tuple[float, int, int, Optional[int]]] = [(0.0, -1, source, None)]
    while heap:
        d, _, node, via = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        parent[node] = via
        if node == target:
            break
        for nbr, w in image.get(node, {}).items():
            if (node == bu and nbr == bv) or (node == bv and nbr == bu):
                continue
            if nbr not in dist:
                heapq.heappush(heap, (d + w, node, nbr, node))
    if target not in dist:
        return None
    path = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])  # type: ignore[arg-type]
    path.reverse()
    return path


def _tail_path(
    image: Mapping[int, Mapping[int, float]], source: int, target: int
) -> Optional[List[int]]:
    """Unmasked local shortest path (same tie-break, counter-free)."""
    return _masked_shortest_path(image, source, target, (-1, -1))


def _detour(
    image: Mapping[int, Mapping[int, float]], u: int, v: int
) -> Optional[BackupFragment]:
    """The loop-free detour ``u ~> v`` avoiding edge ``(u, v)``.

    DAG-first: when ``u`` has a loop-free alternate first hop toward
    ``v`` in its next-hop DAG (any DAG entry other than ``v`` itself),
    the detour is that hop followed by its shortest path to ``v`` -- the
    LFA downstream criterion guarantees this tail cannot revisit ``u``,
    hence cannot use the protected edge.  Only when no alternate exists
    does the masked Dijkstra fallback search the full graph minus the
    edge (None for bridges).
    """
    path: Optional[List[int]] = None
    alternates = [n for n in spf.next_hop_dag(image, u).get(v, ()) if n != v]
    if alternates:
        tail = _tail_path(image, alternates[0], v)
        if tail is not None and u not in tail:
            path = [u] + tail
    if path is None:
        path = _masked_shortest_path(image, u, v, (u, v))
    if path is None:
        return None
    cost = 0.0
    for a, b in zip(path, path[1:]):
        cost += image[a][b]
    return BackupFragment(edge=(u, v), path=tuple(path), cost=cost)


def compute_backup_plan(topology, image) -> BackupPlan:
    """Precompute one fragment per edge of an installed topology.

    ``image`` is the computing switch's network image (a plain adjacency
    mapping or an :class:`~repro.lsr.spfcache.SpfCache`); every switch
    computes on its own image at install time, and because installs are
    arbitrated to identical topologies over identical images, every
    switch derives the same plan -- the two endpoints of a failed edge
    activate mirror-image fragments without coordinating.
    """
    fragments: List[BackupFragment] = []
    uncovered: List[Tuple[int, int]] = []
    for u, v in sorted(topology.all_edges()):
        fragment = _detour(image, u, v)
        if fragment is None:
            uncovered.append((u, v))
        else:
            fragments.append(fragment)
    return BackupPlan(fragments=tuple(fragments), uncovered=tuple(uncovered))


def detour_delay(fragment: BackupFragment, endpoint: int, hop_cost) -> float:
    """Total data-plane delay of riding the detour from ``endpoint``.

    Summed left-to-right over the oriented path with ``hop_cost(a, b)``
    per link, matching the addition order the batched engine's compiled
    cost chains fold in -- both engines must stamp bit-identical
    delivery timestamps.
    """
    delay = 0.0
    path = fragment.path_from(endpoint)
    for a, b in zip(path, path[1:]):
        delay += hop_cost(a, b)
    return delay


def detour_is_live(fragment: BackupFragment, net) -> bool:
    """True when every link of the detour is currently up on ``net``.

    A second failure landing on the detour itself is not re-protected
    (no nested FRR); the packet then drops exactly as without FRR.
    """
    for a, b in zip(fragment.path, fragment.path[1:]):
        if not net.has_link(a, b) or not net.link(a, b).up:
            return False
    return True
