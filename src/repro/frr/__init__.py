"""Fast reroute: precomputed backup fragments for installed topologies.

See :mod:`repro.frr.backup` for the computation and docs/fast-reroute.md
for the activation / reconciliation lifecycle.
"""

from repro.frr.backup import (
    BackupFragment,
    BackupPlan,
    compute_backup_plan,
    detour_delay,
    detour_is_live,
)

__all__ = [
    "BackupFragment",
    "BackupPlan",
    "activate_for_edge",
    "compute_backup_plan",
    "detour_delay",
    "detour_is_live",
]


def activate_for_edge(states, u: int, v: int):
    """Activate every covering fragment for failed edge ``(u, v)``.

    ``states`` maps connection id to :class:`~repro.core.state.McState`;
    a fragment activates when the edge is on the connection's installed
    topology and the precomputed plan covers it.  Returns the connection
    ids whose data plane switched over (idempotent: re-detection of an
    already-activated edge returns nothing).
    """
    activated = []
    for connection_id in sorted(states):
        state = states[connection_id]
        if state.installed is None or state.backup_plan is None:
            continue
        edge = (u, v) if u <= v else (v, u)
        if edge not in state.installed.all_edges():
            continue
        fragment = state.backup_plan.fragment_for(u, v)
        if fragment is not None and state.activate_backup(fragment):
            activated.append(connection_id)
    return activated
