"""Hop-by-hop multicast forwarding over installed MC topologies.

Every forwarding decision consults the *local* switch's state -- its
installed topology, its member list, its unicast routing table -- exactly
as the protocol installs them ("Update routing entries for incident links
in m").  During reconvergence neighboring switches can hold different
topologies; packets then see drops or duplicates, which the
:class:`DeliveryReport` quantifies (the data-plane cost of control-plane
churn).

Loop safety: per-packet duplicate suppression at each switch plus a hop
TTL bound every packet's work even under pathological disagreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.mc import ConnectionType
from repro.core.protocol import DgmcNetwork
from repro.dataplane.packet import DeliveryRecord, McPacket
from repro.frr import detour_delay, detour_is_live
from repro.lsr import spf
from repro.trees.algorithms import RECEIVER
from repro.trees.base import SHARED


@dataclass
class DeliveryReport:
    """Aggregate statistics over a set of delivery records."""

    records: List[DeliveryRecord] = field(default_factory=list)

    def add(self, record: DeliveryRecord) -> None:
        self.records.append(record)

    @property
    def packets(self) -> int:
        return len(self.records)

    @property
    def complete_deliveries(self) -> int:
        return sum(1 for r in self.records if r.complete and not r.undeliverable)

    @property
    def mean_delivery_ratio(self) -> float:
        if not self.records:
            return 1.0
        return sum(r.delivery_ratio for r in self.records) / len(self.records)

    @property
    def total_hops(self) -> int:
        return sum(r.hops for r in self.records)

    @property
    def total_duplicates(self) -> int:
        return sum(r.duplicates for r in self.records)

    @property
    def total_ttl_drops(self) -> int:
        return sum(r.ttl_drops for r in self.records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeliveryReport(packets={self.packets}, "
            f"complete={self.complete_deliveries}, "
            f"ratio={self.mean_delivery_ratio:.3f})"
        )


class ForwardingEngine:
    """Forwards multicast packets through a running D-GMC deployment."""

    def __init__(
        self,
        dgmc: DgmcNetwork,
        hop_delay: Optional[float] = None,
        ttl: Optional[int] = None,
    ) -> None:
        self.dgmc = dgmc
        #: Data-packet per-hop delay; defaults to the physical link delay.
        self.hop_delay = hop_delay
        #: Hop limit per packet; defaults to 4n (generous for any tree walk,
        #: but bounds unicast ping-pong under inconsistent routing tables).
        self.ttl = ttl
        self.report = DeliveryReport()
        self._seen: Dict[int, Set[int]] = {}
        #: (switch, connection) -> (installed topology, tree_key -> incident
        #: edges).  Valid while the installed object is unchanged; installs
        #: replace the McTopology wholesale, so identity is the generation.
        self._edge_cache: Dict[Tuple[int, int], Tuple[Any, Dict[int, List[tuple]]]] = {}
        #: (source, connection) -> (member set, network image, contact).
        #: Valid while the members and the source's LSDB image both stand.
        self._contact_cache: Dict[
            Tuple[int, int], Tuple[FrozenSet[int], Any, Optional[int]]
        ] = {}

    # -- public API -----------------------------------------------------------

    def send(self, packet: McPacket, at: float) -> DeliveryRecord:
        """Schedule a packet injection; returns its (live) delivery record."""
        record = DeliveryRecord(packet)
        self.report.add(record)
        self.dgmc.sim.schedule_at(at, lambda: self._inject(packet, record))
        return record

    # -- injection ---------------------------------------------------------------

    def _inject(self, packet: McPacket, record: DeliveryRecord) -> None:
        packet.sent_at = self.dgmc.sim.now
        source_switch = self.dgmc.switches.get(packet.source)
        state = source_switch.states.get(packet.connection_id) if source_switch else None
        if state is None or state.installed is None:
            record.undeliverable = True
            return
        record.intended = self._intended_receivers(state)
        self._seen[packet.packet_id] = set()
        ttl = self.ttl if self.ttl is not None else 4 * self.dgmc.net.n
        if self._on_tree(packet.source, packet):
            self._tree_arrive(packet.source, None, packet, record, ttl)
        else:
            # Receiver-only two-stage delivery: unicast toward the nearest
            # member (the contact node), then spread over the tree.
            contact = self._nearest_member(packet.source, state)
            if contact is None:
                record.undeliverable = True
                return
            self._unicast_arrive(packet.source, contact, packet, record, ttl)

    def _intended_receivers(self, state) -> frozenset:
        if state.spec.ctype is ConnectionType.ASYMMETRIC:
            return frozenset(
                x for x, roles in state.members.items() if RECEIVER in roles
            )
        return frozenset(state.members)

    def _nearest_member(self, source: int, state) -> Optional[int]:
        members = state.member_set
        if not members:
            return None
        image = self.dgmc.routers[source].network_image()
        key = (source, state.spec.connection_id)
        cached = self._contact_cache.get(key)
        if cached is not None and cached[0] == members and cached[1] is image:
            return cached[2]
        dist, _ = spf.dijkstra(image, source)
        reachable = [(dist[m], m) for m in sorted(members) if m in dist]
        contact = min(reachable)[1] if reachable else None
        self._contact_cache[key] = (members, image, contact)
        return contact

    # -- per-hop mechanics ----------------------------------------------------------

    def _local_tree_edges(self, switch: int, packet: McPacket) -> List[tuple]:
        """Tree edges incident to ``switch`` in *its own* installed view.

        Memoized per (switch, connection) keyed on installed-topology
        identity: installs replace the McTopology object wholesale, so a
        stale cache entry is detected by ``is`` without content hashing.
        """
        state = self.dgmc.switches[switch].states.get(packet.connection_id)
        if state is None or state.installed is None:
            return []
        key = (switch, packet.connection_id)
        cached = self._edge_cache.get(key)
        if cached is None or cached[0] is not state.installed:
            incident: Dict[int, List[tuple]] = {
                tree_key: [e for e in sorted(tree.edges) if switch in e]
                for tree_key, tree in state.installed.trees
            }
            cached = (state.installed, incident)
            self._edge_cache[key] = cached
        if state.spec.ctype is ConnectionType.ASYMMETRIC:
            return cached[1].get(packet.source, [])
        return cached[1].get(SHARED, [])

    def _on_tree(self, switch: int, packet: McPacket) -> bool:
        state = self.dgmc.switches[switch].states.get(packet.connection_id)
        if state is None:
            return False
        if switch in state.members:
            return True
        return bool(self._local_tree_edges(switch, packet))

    def _hop_cost(self, u: int, v: int) -> float:
        if self.hop_delay is not None:
            return self.hop_delay
        return self.dgmc.net.link(u, v).delay

    def _deliver_local(self, switch: int, packet: McPacket, record: DeliveryRecord) -> None:
        state = self.dgmc.switches[switch].states.get(packet.connection_id)
        if state is None:
            return
        roles = state.members.get(switch)
        if roles is None:
            return
        if state.spec.ctype is ConnectionType.ASYMMETRIC and RECEIVER not in roles:
            return
        record.delivered.setdefault(switch, self.dgmc.sim.now)

    def _tree_arrive(
        self,
        switch: int,
        came_from: Optional[int],
        packet: McPacket,
        record: DeliveryRecord,
        ttl: int,
    ) -> None:
        seen = self._seen[packet.packet_id]
        if switch in seen:
            record.duplicates += 1
            return
        seen.add(switch)
        self._deliver_local(switch, packet, record)
        targets = self._forward_targets(switch, came_from, packet)
        detours = self._detour_targets(switch, came_from, packet)
        if ttl <= 0:
            if targets or detours:
                record.ttl_drops += 1  # the hop limit suppressed real fan-out
            return
        for neighbor in targets:
            record.hops += 1
            self.dgmc.sim.schedule(
                self._hop_cost(switch, neighbor),
                lambda n=neighbor, s=switch: self._tree_arrive(
                    n, s, packet, record, ttl - 1
                ),
            )
        for fragment in detours:
            # Tunnel semantics: the packet rides the whole precomputed
            # detour as one scheduled resumption at the far endpoint of
            # the failed edge -- interior detour switches hold no tree
            # state and neither dedup nor deliver.  Delay and hops are
            # the summed per-link costs so timestamps match a
            # hypothetical hop-by-hop ride (and the batched engine's
            # compiled splice) exactly.
            span = fragment.span
            if ttl < span:
                record.ttl_drops += 1
                continue
            far = fragment.edge[0] if fragment.edge[1] == switch else fragment.edge[1]
            record.hops += span
            self.dgmc.sim.schedule(
                detour_delay(fragment, switch, self._hop_cost),
                lambda f=far, s=switch, t=ttl - span: self._tree_arrive(
                    f, s, packet, record, t
                ),
            )

    def _forward_targets(
        self, switch: int, came_from: Optional[int], packet: McPacket
    ) -> List[int]:
        """Live tree neighbors the packet would fan out to from ``switch``."""
        targets: List[int] = []
        for edge in self._local_tree_edges(switch, packet):
            neighbor = edge[0] if edge[1] == switch else edge[1]
            if neighbor == came_from:
                continue
            if not self.dgmc.net.has_link(switch, neighbor):
                continue
            if not self.dgmc.net.link(switch, neighbor).up:
                continue  # data-plane drop on a dead link
            targets.append(neighbor)
        return targets

    def _detour_targets(
        self, switch: int, came_from: Optional[int], packet: McPacket
    ) -> List[Any]:
        """Activated backup fragments covering dead incident tree edges.

        A fragment is ridden only while its own detour links are all up
        (a second failure on the detour is not re-protected: no nested
        FRR, the packet drops exactly as without FRR).
        """
        state = self.dgmc.switches[switch].states.get(packet.connection_id)
        if state is None or not state.active_backup:
            return []
        fragments: List[Any] = []
        for edge in self._local_tree_edges(switch, packet):
            neighbor = edge[0] if edge[1] == switch else edge[1]
            if neighbor == came_from:
                continue
            if self.dgmc.net.has_link(switch, neighbor) and self.dgmc.net.link(
                switch, neighbor
            ).up:
                continue  # primary edge alive: stay on the tree
            key = (switch, neighbor) if switch <= neighbor else (neighbor, switch)
            fragment = state.active_backup.get(key)
            if fragment is not None and detour_is_live(fragment, self.dgmc.net):
                fragments.append(fragment)
        return fragments

    def _unicast_arrive(
        self,
        switch: int,
        contact: int,
        packet: McPacket,
        record: DeliveryRecord,
        ttl: int,
    ) -> None:
        """Stage 1 of receiver-only delivery: ride unicast toward the contact."""
        if self._on_tree(switch, packet):
            self._tree_arrive(switch, None, packet, record, ttl)
            return
        next_hop = self.dgmc.routers[switch].next_hop(contact)
        if next_hop is None or not self.dgmc.net.link(switch, next_hop).up:
            return  # unroutable right now: dropped
        if ttl <= 0:
            record.ttl_drops += 1  # the hop limit suppressed a live forward
            return
        record.hops += 1
        self.dgmc.sim.schedule(
            self._hop_cost(switch, next_hop),
            lambda n=next_hop: self._unicast_arrive(
                n, contact, packet, record, ttl - 1
            ),
        )
