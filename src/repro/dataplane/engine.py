"""Batched data-plane forwarding over compiled flat-array state.

The paper's traffic-side claim (Section 2) is that D-GMC's precomputed
per-connection topologies make forwarding cheap: unlike MOSPF, no
shortest-path computation ever runs on the data path.  The reference
:class:`~repro.dataplane.forwarding.ForwardingEngine` demonstrates the
*semantics* of that data plane but walks dicts and schedules one simulator
event per hop per packet -- far too slow to drive traffic at volume.

:class:`BatchForwardingEngine` is the volume path.  It compiles each
switch's installed :class:`~repro.trees.base.McTopology` into CSR
next-hop arrays -- one row per (switch, tree key), holding only *live*
out-edges with their hop costs -- plus per-switch member/deliver bitmaps.
Because packets of the same flow (connection, source) injected into the
same control-plane snapshot are processed identically by the reference
engine, the engine replays the reference semantics **once** per flow into
a :class:`_FlowTemplate` (delivery latencies, hop count, duplicate and
TTL-drop counts) and then stamps whole batches against the template in
O(1) per packet.

Invalidation (the seam the future CSR graph core plugs into):

* **install generation** -- every topology install appends to
  ``DgmcNetwork.install_log``; :meth:`BatchForwardingEngine.refresh`
  scans the new suffix and drops compiled state and templates for
  exactly the touched connections.
* **physical generation** -- ``Network.version`` advances on every link
  add or up/down flip.  When :meth:`~repro.topo.graph.Network.
  up_delta_since` can name the single changed link, only connections
  whose compiled state *depends* on it (a tree edge, an active detour
  link, or any unicast-stage template) are dropped -- counted by
  ``dataplane_partial_invalidations_total`` -- so one failure does not
  recompile every unrelated group; a wider gap falls back to dropping
  everything.
* **fast-reroute epoch** -- backup fragment activation/retirement
  mutates :class:`~repro.core.state.McState` without an install record
  or a version bump; under ``enable_frr`` the engine snapshots each
  connection's summed ``frr_epoch`` at compile time and re-checks it on
  refresh (scoped drop on change).  With FRR off this scan never runs.

Active backup fragments compile as *splices*: a dead tree edge covered
by an activated fragment becomes one logical CSR entry to the far
endpoint whose cost is the detour's left-to-right link-delay sum and
whose hop span is the detour length, so stamped timestamps, hop counts,
and TTL behavior match the reference engine's tunnel semantics bit for
bit.

Equivalence contract: dispatching at a quiescent point (no in-flight
LSAs, proposals, or membership churn) produces records identical to the
reference engine, field for field -- the Hypothesis property test in
``tests/test_dataplane.py`` enforces this.  Dispatching mid-transient is
permitted but sees membership as of the last install; callers that
mutate ``McState`` out-of-band (without an install record) must call
:meth:`invalidate` themselves.
"""

from __future__ import annotations

import heapq
from array import array
from itertools import accumulate
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.mc import ConnectionType
from repro.core.protocol import DgmcNetwork
from repro.dataplane.forwarding import DeliveryReport
from repro.dataplane.packet import DeliveryRecord, McPacket
from repro.frr import detour_delay, detour_is_live
from repro.lsr import spf
from repro.obs import tracer as tracer_module
from repro.trees.algorithms import RECEIVER
from repro.trees.base import SHARED, McTopology

#: CSR row bundle per tree key: (indptr, neighbor ids, per-hop costs,
#: per-entry hop spans).  Spans are 1 for ordinary tree edges and the
#: detour length for spliced backup fragments.
_CsrRows = Dict[int, Tuple[array, array, array, array]]

_TREE, _UNICAST = 0, 1


def _fold_time(at: float, chain: Tuple[float, ...]) -> float:
    """Arrival time for a hop-cost chain, in reference addition order."""
    t = at
    for cost in chain:
        t += cost
    return t


class _CompiledTopology:
    """CSR fan-out arrays for one unique installed topology object."""

    __slots__ = ("rows",)

    def __init__(self, rows: _CsrRows) -> None:
        self.rows = rows


class _FlowTemplate:
    """Precomputed delivery outcome for one (connection, source) flow.

    ``deliveries`` holds per-receiver *hop-cost chains* rather than
    latency sums: the reference engine computes each arrival time by
    sequential addition along the scheduled path (``((t0+d1)+d2)+...``),
    so stamping folds the chain from the injection time in the same
    association order and reproduces the reference timestamps bit for
    bit at any dispatch time.
    """

    __slots__ = (
        "undeliverable", "intended", "deliveries", "hops", "duplicates", "ttl_drops",
    )

    def __init__(
        self,
        undeliverable: bool,
        intended: FrozenSet[int],
        deliveries: Tuple[Tuple[int, Tuple[float, ...]], ...],
        hops: int,
        duplicates: int,
        ttl_drops: int,
    ) -> None:
        self.undeliverable = undeliverable
        self.intended = intended
        self.deliveries = deliveries
        self.hops = hops
        self.duplicates = duplicates
        self.ttl_drops = ttl_drops


class _CompiledConnection:
    """All compiled forwarding state for one connection.

    Per-switch fields index 0..n-1 and describe *that switch's own* view
    (during reconvergence the views differ; the compiler groups switches
    by state / installed-topology identity so converged deployments --
    where every switch shares one view -- compile each view exactly once).
    """

    __slots__ = (
        "connection_id", "n", "asymmetric",
        "topo_of", "topologies", "member_bit", "deliver_bit",
        "members_of", "intended_of",
        "dep_links", "uses_unicast", "frr_epoch",
    )

    def __init__(self, connection_id: int, n: int) -> None:
        self.connection_id = connection_id
        self.n = n
        self.asymmetric = False
        #: Canonical links this compiled state depends on: every tree
        #: edge (live or dead) plus every link of a spliced detour.  The
        #: scoped-invalidation path keeps the connection compiled when a
        #: single link change misses this set entirely.
        self.dep_links: set = set()
        #: True once any template rode the unicast (receiver-only
        #: contact) stage -- those depend on arbitrary routing-table
        #: state, so any link change invalidates them.
        self.uses_unicast = False
        #: Summed ``McState.frr_epoch`` across the distinct holder
        #: states at compile time (FRR change detector).
        self.frr_epoch = 0
        #: Per switch: index into ``topologies`` (-1: no state or no install).
        self.topo_of: List[int] = [-1] * n
        self.topologies: List[_CompiledTopology] = []
        #: Per switch: 1 when the switch is a member in its own view.
        self.member_bit = bytearray(n)
        #: Per switch: 1 when a local delivery happens there (member with a
        #: receiver-eligible role).
        self.deliver_bit = bytearray(n)
        #: Per switch: its own member set / intended-receiver set (None: no
        #: state); shared frozensets across switches with identical views.
        self.members_of: List[Optional[FrozenSet[int]]] = [None] * n
        self.intended_of: List[Optional[FrozenSet[int]]] = [None] * n


class BatchForwardingEngine:
    """Dispatches traffic batches against compiled forwarding state."""

    def __init__(
        self,
        dgmc: DgmcNetwork,
        hop_delay: Optional[float] = None,
        ttl: Optional[int] = None,
    ) -> None:
        self.dgmc = dgmc
        #: Data-packet per-hop delay; defaults to the physical link delay
        #: (must match the reference engine's setting for equivalence).
        self.hop_delay = hop_delay
        #: Hop limit per packet; defaults to 4n like the reference engine.
        self.ttl = ttl
        self.report = DeliveryReport()
        self._compiled: Dict[int, _CompiledConnection] = {}
        self._templates: Dict[int, Dict[int, _FlowTemplate]] = {}
        self._net_version = dgmc.net.version
        self._log_pos = len(dgmc.install_log)
        metrics = dgmc.metrics
        self._batches = metrics.counter(
            "dataplane_batches_total", "Batches dispatched by the batched engine")
        self._packets = metrics.counter(
            "dataplane_packets_total", "Packets dispatched by the batched engine")
        self._compiles = metrics.counter(
            "dataplane_compiled_connections_total",
            "Connections compiled into CSR forwarding arrays")
        self._template_builds = metrics.counter(
            "dataplane_template_builds_total",
            "Flow templates built by replaying reference semantics")
        self._template_hits = metrics.counter(
            "dataplane_template_hits_total",
            "Packets served from an existing flow template")
        self._invalidations = metrics.counter(
            "dataplane_invalidations_total",
            "Compiled connections dropped by install/link-generation changes")
        self._partial_invalidations = metrics.counter(
            "dataplane_partial_invalidations_total",
            "Refreshes resolved by scoped (per-connection) invalidation "
            "instead of dropping all compiled state")
        self._ttl_drop_counter = metrics.counter(
            "dataplane_ttl_drops_total",
            "Forwarding steps suppressed by the hop limit")

    # -- public API -----------------------------------------------------------

    def send(self, packet: McPacket, at: float) -> DeliveryRecord:
        """Dispatch a single packet (convenience over :meth:`dispatch`)."""
        return self.dispatch([packet], at)[0]

    def dispatch(
        self, packets: Iterable[McPacket], at: float
    ) -> List[DeliveryRecord]:
        """Dispatch one batch injected at time ``at``; returns its records.

        Unlike the reference engine this does not touch the simulator:
        delivery times are stamped from the flow template (``at`` plus
        the precomputed per-receiver latency).
        """
        batch = list(packets)
        self.refresh()
        tracer = tracer_module.TRACER
        if tracer.enabled:
            with tracer.span(
                "batch_dispatch", cat="dataplane", sim_time=at, packets=len(batch)
            ):
                records = self._dispatch(batch, at)
        else:
            records = self._dispatch(batch, at)
        self._batches.inc()
        self._packets.inc(len(batch))
        return records

    def refresh(self) -> None:
        """Drop compiled state invalidated since the last dispatch.

        A ``Network.version`` change (link added / up / down) that
        :meth:`~repro.topo.graph.Network.up_delta_since` can pin to a
        single link drops only the connections depending on it (tree
        edge, spliced detour link, or any unicast-stage template);
        wider gaps drop everything.  New ``install_log`` entries drop
        exactly the touched connections.  Under ``enable_frr``, a
        changed per-connection ``frr_epoch`` sum (activation or
        retirement without an install record or version bump) also
        drops that connection only.
        """
        net_version = self.dgmc.net.version
        if net_version != self._net_version:
            delta = self.dgmc.net.up_delta_since(self._net_version)
            if delta is None:
                self._invalidations.inc(len(self._compiled))
                self._compiled.clear()
                self._templates.clear()
                self._net_version = net_version
                self._log_pos = len(self.dgmc.install_log)
                return
            if delta:
                u, v = delta[0][0], delta[0][1]
                edge = (u, v) if u <= v else (v, u)
                for m in [
                    m for m, c in self._compiled.items()
                    if c.uses_unicast or edge in c.dep_links
                ]:
                    self.invalidate(m)
                self._partial_invalidations.inc()
            self._net_version = net_version
        log = self.dgmc.install_log
        if len(log) > self._log_pos:
            for m in {record.connection_id for record in log[self._log_pos:]}:
                self.invalidate(m)
            self._log_pos = len(log)
        if self._compiled and getattr(self.dgmc.config, "enable_frr", False):
            stale = [
                m for m, c in self._compiled.items()
                if self._frr_epoch_sum(m) != c.frr_epoch
            ]
            for m in stale:
                self.invalidate(m)
            if stale:
                self._partial_invalidations.inc()

    def _frr_epoch_sum(self, connection_id: int) -> int:
        """Summed ``frr_epoch`` over the distinct holder states."""
        total = 0
        seen: set = set()
        for switch in self.dgmc.switches.values():
            state = switch.states.get(connection_id)
            if state is not None and id(state) not in seen:
                seen.add(id(state))
                total += state.frr_epoch
        return total

    def invalidate(self, connection_id: Optional[int] = None) -> None:
        """Drop compiled state for one connection (or all, when ``None``).

        Callers that mutate :class:`~repro.core.state.McState` without an
        install record (no ``install_log`` entry) must call this before
        the next dispatch, or the engine keeps forwarding on the old view.
        """
        if connection_id is None:
            self._invalidations.inc(len(self._compiled))
            self._compiled.clear()
            self._templates.clear()
            return
        dropped = self._compiled.pop(connection_id, None) is not None
        dropped = self._templates.pop(connection_id, None) is not None or dropped
        if dropped:
            self._invalidations.inc()

    # -- compilation -----------------------------------------------------------

    def _template(self, connection_id: int, source: int) -> _FlowTemplate:
        per_flow = self._templates.setdefault(connection_id, {})
        template = per_flow.get(source)
        if template is not None:
            self._template_hits.inc()
            return template
        compiled = self._compiled.get(connection_id)
        if compiled is None:
            compiled = self._compile(connection_id)
            self._compiled[connection_id] = compiled
            self._compiles.inc()
        template = self._replay(compiled, source)
        per_flow[source] = template
        self._template_builds.inc()
        return template

    def _compile(self, connection_id: int) -> _CompiledConnection:
        n = self.dgmc.net.n
        compiled = _CompiledConnection(connection_id, n)
        # Group holders by state identity: a converged deployment (or one
        # seeded by ConvergedGroups) shares one state object everywhere,
        # so each distinct view is analyzed exactly once.
        states: Dict[int, object] = {}
        holders: Dict[int, List[int]] = {}
        for x, switch in self.dgmc.switches.items():
            state = switch.states.get(connection_id)
            if state is not None:
                key = id(state)
                row = holders.get(key)
                if row is None:
                    states[key] = state
                    holders[key] = [x]
                else:
                    row.append(x)
        topo_index: Dict[tuple, int] = {}
        for key, switches in holders.items():
            state = states[key]
            compiled.frr_epoch += state.frr_epoch
            asymmetric = state.spec.ctype is ConnectionType.ASYMMETRIC
            compiled.asymmetric = asymmetric
            members = state.member_set
            if asymmetric:
                intended = frozenset(
                    m for m, roles in state.members.items() if RECEIVER in roles
                )
                delivering = intended
            else:
                intended = members
                delivering = members
            topo = -1
            if state.installed is not None:
                # Two views sharing one installed object can still hold
                # different active fragments (activation is per state),
                # so the dedup key covers the splice content too.
                topo_key = (
                    id(state.installed),
                    tuple(
                        (edge, fragment.path)
                        for edge, fragment in sorted(state.active_backup.items())
                    ),
                )
                topo = topo_index.get(topo_key, -1)
                if topo < 0:
                    topo = len(compiled.topologies)
                    compiled.topologies.append(
                        self._compile_topology(
                            state.installed, n,
                            state.active_backup, compiled.dep_links,
                        )
                    )
                    topo_index[topo_key] = topo
            if len(holders) == 1 and len(switches) == n:
                # Fully converged: one shared view everywhere (the common
                # case after quiescence and the ConvergedGroups fast path).
                compiled.members_of = [members] * n
                compiled.intended_of = [intended] * n
                compiled.topo_of = [topo] * n
                for m in members:
                    compiled.member_bit[m] = 1
                for m in delivering:
                    compiled.deliver_bit[m] = 1
                break
            for x in switches:
                compiled.members_of[x] = members
                compiled.intended_of[x] = intended
                if x in members:
                    compiled.member_bit[x] = 1
                    if x in delivering:
                        compiled.deliver_bit[x] = 1
                compiled.topo_of[x] = topo
        return compiled

    def _compile_topology(
        self,
        topology: McTopology,
        n: int,
        active_backup: Dict[Tuple[int, int], object],
        dep_links: set,
    ) -> _CompiledTopology:
        """CSR rows per tree key, dead links excluded at compile time.

        Neighbor order within a row reproduces the reference engine's
        traversal order (other endpoints of the sorted incident edges,
        then detour splices in the same edge order), so replays fan out
        in the identical sequence.

        A dead tree edge covered by an *activated* backup fragment whose
        detour is fully live compiles into one logical entry to the far
        endpoint: cost is the detour's link delays summed left to right
        from this endpoint (matching :func:`repro.frr.detour_delay`'s
        addition order, so folded timestamps stay bit-exact against the
        reference engine) and span is the detour hop length.
        """
        net = self.dgmc.net
        hop_delay = self.hop_delay
        # Edge costs come from the shared flat-array core of the current
        # up-link view when one is engaged (repro.lsr.csr): one weight
        # array, O(log deg) slot lookups, no per-edge Link objects.  The
        # view's weights *are* the link delays, so costs are
        # byte-identical to the attribute path below.
        graph = None
        if hop_delay is None:
            view = net.spf_view()
            csr_getter = getattr(view, "csr_graph", None)
            if csr_getter is not None:
                graph = csr_getter()

        def hop_cost(a: int, b: int) -> float:
            if hop_delay is not None:
                return hop_delay
            if graph is not None:
                w = graph.weight_of(a, b)
                if w is not None:
                    return w
            return net.link(a, b).delay

        rows: _CsrRows = {}
        for tree_key, tree in topology.trees:
            per_node: Dict[int, List[Tuple[int, float, int]]] = {}
            dead: List[Tuple[int, int]] = []
            for u, v in sorted(tree.edges):
                dep_links.add((u, v) if u <= v else (v, u))
                if not net.has_link(u, v) or not net.link(u, v).up:
                    dead.append((u, v))
                    continue  # data-plane drop on a dead link
                cost = hop_cost(u, v)
                per_node.setdefault(u, []).append((v, cost, 1))
                per_node.setdefault(v, []).append((u, cost, 1))
            if active_backup:
                for u, v in dead:
                    key = (u, v) if u <= v else (v, u)
                    fragment = active_backup.get(key)
                    if fragment is None or not detour_is_live(fragment, net):
                        continue
                    for a, b in zip(fragment.path, fragment.path[1:]):
                        dep_links.add((a, b) if a <= b else (b, a))
                    span = fragment.span
                    per_node.setdefault(u, []).append(
                        (v, detour_delay(fragment, u, hop_cost), span)
                    )
                    per_node.setdefault(v, []).append(
                        (u, detour_delay(fragment, v, hop_cost), span)
                    )
            counts = [0] * n
            for x, out in per_node.items():
                counts[x] = len(out)
            indptr = array("l", accumulate(counts, initial=0))
            neighbors = array("l")
            costs = array("d")
            spans = array("l")
            for x in sorted(per_node):
                for nbr, cost, span in per_node[x]:
                    neighbors.append(nbr)
                    costs.append(cost)
                    spans.append(span)
            rows[tree_key] = (indptr, neighbors, costs, spans)
        return _CompiledTopology(rows)

    # -- template replay ---------------------------------------------------------

    def _nearest_member(
        self, source: int, members: FrozenSet[int]
    ) -> Optional[int]:
        """The receiver-only contact node, exactly as the reference picks it."""
        if not members:
            return None
        image = self.dgmc.routers[source].network_image()
        dist, _ = spf.dijkstra(image, source)
        reachable = [(dist[m], m) for m in sorted(members) if m in dist]
        return min(reachable)[1] if reachable else None

    def _replay_fast(
        self,
        compiled: _CompiledConnection,
        source: int,
        tree_key: int,
        initial_ttl: int,
        intended: FrozenSet[int],
    ) -> Optional[_FlowTemplate]:
        """Tree-stage replay as an iterative DFS, skipping the event heap.

        Valid exactly when no switch is reached twice: each switch then
        has a unique arrival path, so the outcome (deliveries, chains,
        hops, TTL drops) is the same for every event ordering and
        ``duplicates`` is zero.  Any second reach -- detected by marking
        switches when their arrival is pushed -- returns ``None`` so the
        exact event-ordered walk decides which copy arrives first.
        """
        topo_of = compiled.topo_of
        topologies = compiled.topologies
        deliver_bit = compiled.deliver_bit
        delivered: Dict[int, Tuple[float, ...]] = {}
        hops = ttl_drops = 0
        seen = {source}
        stack: List[Tuple[int, int, int, Tuple[float, ...]]] = [
            (source, -1, initial_ttl, ())
        ]
        pop = stack.pop
        while stack:
            x, came_from, ttl, chain = pop()
            if deliver_bit[x]:
                delivered[x] = chain
            index = topo_of[x]
            if index < 0:
                continue
            r = topologies[index].rows.get(tree_key)
            if r is None:
                continue
            indptr, neighbors, costs, spans = r
            targets = [
                i for i in range(indptr[x], indptr[x + 1])
                if neighbors[i] != came_from
            ]
            if ttl <= 0:
                if targets:
                    ttl_drops += 1  # the hop limit suppressed real fan-out
                continue
            for i in targets:
                span = spans[i]
                if span > ttl:
                    ttl_drops += 1  # detour longer than the remaining ttl
                    continue
                nbr = neighbors[i]
                if nbr in seen:
                    return None  # revisit: ordering matters, use the heap
                seen.add(nbr)
                hops += span
                stack.append((nbr, x, ttl - span, chain + (costs[i],)))
        return _FlowTemplate(
            False, intended, tuple(delivered.items()), hops, 0, ttl_drops
        )

    def _replay(self, compiled: _CompiledConnection, source: int) -> _FlowTemplate:
        """Replay the reference engine's per-packet walk over the arrays.

        Exactness argument: reference packets share no mutable state (the
        duplicate-suppression set is per packet, records are per packet),
        and the simulator orders events by ``(time, priority, seq)`` with
        every data event at priority 0 -- so a packet's own events pop in
        the same relative order from a local ``(time, seq)`` heap as from
        the global queue, and the walk below is delivery-for-delivery
        identical to the reference at any fixed control-plane snapshot.

        An on-tree source first tries :meth:`_replay_fast` -- an iterative
        DFS valid whenever no switch is reached twice (every arrival order
        then yields the same outcome); any revisit falls back to the
        exact event-ordered walk, which is the one that counts duplicates.
        """
        n = compiled.n
        if compiled.members_of[source] is None or compiled.topo_of[source] < 0:
            return _FlowTemplate(True, frozenset(), (), 0, 0, 0)
        intended = compiled.intended_of[source] or frozenset()
        tree_key = source if compiled.asymmetric else SHARED
        initial_ttl = self.ttl if self.ttl is not None else 4 * n

        topo_of = compiled.topo_of
        topologies = compiled.topologies
        member_bit = compiled.member_bit
        deliver_bit = compiled.deliver_bit

        def row(x: int) -> Optional[Tuple[array, array, array]]:
            index = topo_of[x]
            return None if index < 0 else topologies[index].rows.get(tree_key)

        def on_tree(x: int) -> bool:
            if member_bit[x]:
                return True
            r = row(x)
            return r is not None and r[0][x + 1] > r[0][x]

        seen: set = set()
        delivered: Dict[int, Tuple[float, ...]] = {}
        hops = duplicates = ttl_drops = 0
        heap: List[tuple] = []
        seq = 0

        def push(
            t: float, kind: int, node: int, extra, ttl: int,
            chain: Tuple[float, ...],
        ) -> None:
            nonlocal seq
            heapq.heappush(heap, (t, seq, kind, node, extra, ttl, chain))
            seq += 1

        def tree_arrive(
            t: float, x: int, came_from: Optional[int], ttl: int,
            chain: Tuple[float, ...],
        ) -> None:
            nonlocal hops, duplicates, ttl_drops
            if x in seen:
                duplicates += 1
                return
            seen.add(x)
            if deliver_bit[x] and x not in delivered:
                delivered[x] = chain
            r = row(x)
            if r is None:
                return
            indptr, neighbors, costs, spans = r
            targets = [
                i for i in range(indptr[x], indptr[x + 1])
                if neighbors[i] != came_from
            ]
            if ttl <= 0:
                if targets:
                    ttl_drops += 1  # the hop limit suppressed real fan-out
                return
            for i in targets:
                span = spans[i]
                if span > ttl:
                    ttl_drops += 1  # detour longer than the remaining ttl
                    continue
                hops += span
                push(t + costs[i], _TREE, neighbors[i], x, ttl - span,
                     chain + (costs[i],))

        if on_tree(source):
            fast = self._replay_fast(compiled, source, tree_key, initial_ttl, intended)
            if fast is not None:
                return fast
            push(0.0, _TREE, source, None, initial_ttl, ())
        else:
            compiled.uses_unicast = True
            contact = self._nearest_member(source, compiled.members_of[source])
            if contact is None:
                return _FlowTemplate(True, intended, (), 0, 0, 0)
            push(0.0, _UNICAST, source, contact, initial_ttl, ())

        while heap:
            t, _, kind, node, extra, ttl, chain = heapq.heappop(heap)
            if kind == _TREE:
                tree_arrive(t, node, extra, ttl, chain)
                continue
            # Unicast stage of receiver-only delivery, toward the contact.
            if on_tree(node):
                tree_arrive(t, node, None, ttl, chain)
                continue
            next_hop = self.dgmc.routers[node].next_hop(extra)
            if next_hop is None or not self.dgmc.net.link(node, next_hop).up:
                continue  # unroutable right now: dropped
            if ttl <= 0:
                ttl_drops += 1
                continue
            hops += 1
            cost = (
                self.hop_delay
                if self.hop_delay is not None
                else self.dgmc.net.link(node, next_hop).delay
            )
            push(t + cost, _UNICAST, next_hop, extra, ttl - 1, chain + (cost,))

        return _FlowTemplate(
            False, intended, tuple(delivered.items()), hops, duplicates, ttl_drops
        )

    # -- batch stamping -----------------------------------------------------------

    def _dispatch(self, batch: List[McPacket], at: float) -> List[DeliveryRecord]:
        records: List[DeliveryRecord] = []
        add = self.report.records.append
        # Same flow + same injection time => identical outcome; resolve the
        # template and stamp the delivered map once per flow per batch.
        # Same-flow records share the delivered mapping (treat it as
        # read-only); each reference-engine record owns its dict, but the
        # contents -- what equivalence is defined over -- are identical.
        stamped: Dict[Tuple[int, int], Tuple[_FlowTemplate, Dict[int, float]]] = {}
        ttl_drops = 0
        for packet in batch:
            flow = (packet.connection_id, packet.source)
            cached = stamped.get(flow)
            if cached is None:
                template = self._template(packet.connection_id, packet.source)
                delivered = {
                    x: _fold_time(at, chain) for x, chain in template.deliveries
                }
                stamped[flow] = (template, delivered)
            else:
                template, delivered = cached
                self._template_hits.inc()
            ttl_drops += template.ttl_drops
            packet.sent_at = at
            record = DeliveryRecord(
                packet,
                delivered=delivered,
                intended=template.intended,
                hops=template.hops,
                duplicates=template.duplicates,
                ttl_drops=template.ttl_drops,
                undeliverable=template.undeliverable,
            )
            add(record)
            records.append(record)
        if ttl_drops:
            self._ttl_drop_counter.inc(ttl_drops)
        return records
