"""Multicast packet and delivery bookkeeping."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_packet_ids = itertools.count(1)


@dataclass
class McPacket:
    """One multicast packet injected at a source switch."""

    source: int
    connection_id: int
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Time the packet was injected (set by the engine).
    sent_at: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"McPacket(#{self.packet_id}, src={self.source}, "
            f"G={self.connection_id})"
        )


@dataclass
class DeliveryRecord:
    """What happened to one packet."""

    packet: McPacket
    #: receiver switch -> delivery time (first copy only).
    delivered: Dict[int, float] = field(default_factory=dict)
    #: Member switches the packet was intended for at send time.
    intended: frozenset = frozenset()
    #: Total hop transmissions spent (tree + unicast stages).
    hops: int = 0
    #: Duplicate deliveries suppressed (same switch reached twice).
    duplicates: int = 0
    #: Forwarding steps suppressed because the hop limit ran out (loop
    #: guard for transiently inconsistent trees; see ForwardingEngine.ttl).
    ttl_drops: int = 0
    #: True when the engine found no usable topology at the source.
    undeliverable: bool = False

    @property
    def delivery_ratio(self) -> float:
        """Fraction of intended receivers that got a copy."""
        if not self.intended:
            return 1.0
        return len(self.delivered.keys() & self.intended) / len(self.intended)

    @property
    def complete(self) -> bool:
        return self.delivery_ratio == 1.0

    def latency(self, receiver: int) -> Optional[float]:
        """Send-to-deliver latency at one receiver, or None if missed."""
        t = self.delivered.get(receiver)
        return None if t is None else t - self.packet.sent_at

    def max_latency(self) -> Optional[float]:
        """Worst delivery latency among reached receivers."""
        times = [self.latency(r) for r in self.delivered]
        times = [t for t in times if t is not None]
        return max(times) if times else None
