"""Multicast data plane: forwarding packets over installed MC topologies.

The paper defines an MC as "a virtual topology [...] which allows the
participants to communicate with one another"; this package makes that
communication concrete.  Packets are forwarded hop-by-hop, and every
switch forwards according to *its own* installed topology ("routing
entries for incident links"), so the data plane observes exactly what the
control plane provides -- including transient disagreement windows while
D-GMC reconverges after events.

Delivery semantics per MC type (Section 1):

* **symmetric** -- any member injects; the packet spreads over the shared
  tree from its ingress.
* **receiver-only** -- two-stage delivery: "the packet is delivered to any
  node on the MC [the contact node]; this contact node forwards the
  packet to the other MC members".  Non-member senders unicast toward the
  nearest on-tree switch first.
* **asymmetric** -- a sender forwards along its own source-rooted tree.
"""

from repro.dataplane.packet import DeliveryRecord, McPacket
from repro.dataplane.forwarding import DeliveryReport, ForwardingEngine
from repro.dataplane.engine import BatchForwardingEngine

__all__ = [
    "McPacket",
    "DeliveryRecord",
    "ForwardingEngine",
    "BatchForwardingEngine",
    "DeliveryReport",
]
