"""Facilities: CSIM-style server resources with FIFO queueing.

A :class:`Facility` models a server (e.g. a switch CPU performing topology
computations).  Processes acquire it with ``yield facility.request()`` and
must release it when done.  Utilization statistics are collected so
experiments can report switch load.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.sim.kernel import SimulationError
from repro.sim.process import Command, Process, ProcessState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Request(Command):
    """Yieldable command that acquires one server of a facility."""

    __slots__ = ("facility",)

    def __init__(self, facility: "Facility") -> None:
        self.facility = facility

    def apply(self, proc: Process) -> None:
        self.facility._acquire(proc)


class Facility:
    """A multi-server resource with a FIFO wait queue.

    ``capacity`` servers may be held simultaneously.  Holders call
    :meth:`release` exactly once; double-release raises.
    """

    def __init__(self, sim: "Simulator", name: str = "", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("facility capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Process] = deque()
        # Utilization accounting.
        self._busy_integral = 0.0
        self._last_change = sim.now
        #: Total completed service grants (diagnostic).
        self.completions = 0

    def request(self) -> Request:
        """Return the yieldable acquire command for this facility."""
        return Request(self)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_integral += self._in_use * (now - self._last_change)
        self._last_change = now

    def _acquire(self, proc: Process) -> None:
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            self.sim.schedule(0.0, proc._step_none)
        else:
            proc.state = ProcessState.WAITING
            self._waiters.append(proc)

    def release(self) -> None:
        """Release one server; hands it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle facility {self.name!r}")
        self.completions += 1
        while self._waiters:
            proc = self._waiters.popleft()
            if proc.state is ProcessState.WAITING:
                # Hand over the server without dropping occupancy.
                self.sim.schedule(0.0, proc._step_none)
                return
        self._account()
        self._in_use -= 1

    @property
    def busy(self) -> bool:
        return self._in_use >= self.capacity

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def utilization(self) -> float:
        """Time-averaged fraction of capacity in use since creation."""
        self._account()
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.capacity)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Facility({self.name!r}, in_use={self._in_use}/{self.capacity}, "
            f"queued={len(self._waiters)})"
        )
