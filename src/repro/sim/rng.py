"""Named, independently seeded random streams.

Experiments draw randomness for distinct purposes (topology generation,
event timing, member selection, ...).  Giving each purpose its own stream,
derived deterministically from a root seed, keeps results reproducible and
makes variance-reduction comparisons fair: changing how many numbers one
purpose consumes does not perturb the others.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a 64-bit stream seed from a root seed and a purpose label."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of per-purpose :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, label: str) -> random.Random:
        """Return the stream for ``label``, creating it on first use."""
        if label not in self._streams:
            self._streams[label] = random.Random(derive_seed(self.root_seed, label))
        return self._streams[label]

    def fork(self, label: str) -> "RngRegistry":
        """A child registry whose root seed is derived from this one."""
        return RngRegistry(derive_seed(self.root_seed, f"fork:{label}"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(root_seed={self.root_seed}, streams={sorted(self._streams)})"
