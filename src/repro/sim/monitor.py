"""Statistics collection: CSIM-style tables and meters.

* :class:`Table` records individual observations (e.g. convergence times)
  and reports count/mean/variance/min/max and 95% confidence intervals.
* :class:`Meter` counts occurrences over simulated time (e.g. floodings)
  and reports rates.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

# Two-sided 97.5% Student-t quantiles for small sample sizes; the fallback
# 1.96 is the normal quantile used for n > 30.
_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_quantile_975(dof: int) -> float:
    """Two-sided 95% Student-t critical value for ``dof`` degrees of freedom."""
    if dof <= 0:
        return float("inf")
    return _T_975.get(dof, 1.96)


class Table:
    """Streaming collection of scalar observations (Welford's algorithm)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def record(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def confidence_halfwidth(self, level: float = 0.95) -> float:
        """Half-width of the confidence interval around the mean.

        Only the paper's 95% level is supported; other levels raise.
        """
        if abs(level - 0.95) > 1e-9:
            raise ValueError("only the 95% level is supported")
        if self.count < 2:
            return 0.0
        return t_quantile_975(self.count - 1) * self.stdev / math.sqrt(self.count)

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """(low, high) bounds of the confidence interval around the mean."""
        hw = self.confidence_halfwidth(level)
        return self.mean - hw, self.mean + hw

    def merge(self, other: "Table") -> None:
        """Fold another table's observations into this one (Chan's method)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self.count:
            return f"Table({self.name!r}, empty)"
        return (
            f"Table({self.name!r}, n={self.count}, mean={self.mean:.4g}, "
            f"sd={self.stdev:.4g})"
        )


class Meter:
    """Counts discrete occurrences against simulated time."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.count = 0
        self.start_time = sim.now

    def tick(self, n: int = 1) -> None:
        """Record ``n`` occurrences at the current simulated time."""
        self.count += n

    def rate(self) -> float:
        """Occurrences per unit simulated time since creation/reset."""
        elapsed = self.sim.now - self.start_time
        if elapsed <= 0:
            return 0.0
        return self.count / elapsed

    def reset(self) -> None:
        self.count = 0
        self.start_time = self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Meter({self.name!r}, count={self.count})"
