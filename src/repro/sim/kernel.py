"""The simulation event loop and clock.

The kernel is a classic calendar-queue discrete-event simulator: a binary
heap of ``(time, priority, sequence, action)`` entries.  The ``sequence``
counter breaks ties deterministically, which makes every run with the same
seed bit-for-bit reproducible (DESIGN.md invariant 7).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.obs import tracer as obs_tracer


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


@dataclass(order=True)
class _ScheduledEvent:
    """A single entry in the event heap.

    Ordering is by ``(time, priority, seq)``; ``action`` and ``cancelled``
    are excluded from comparisons.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the kernel skips it when popped."""
        self.cancelled = True


class SimEvent:
    """A condition that processes can wait on and that can be fired once.

    Comparable to a CSIM *event*: zero or more processes block on it via
    :class:`~repro.sim.process.WaitEvent`; :meth:`fire` wakes them all and
    records an optional payload value.  A fired event stays fired (waiting
    on it afterwards returns immediately), unless :meth:`reset` is called.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        """Fire the event, waking every waiter at the current time."""
        if self.fired:
            return
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            self._sim.schedule(0.0, lambda w=wake: w(value))

    def reset(self) -> None:
        """Return the event to the un-fired state (waiters are unaffected)."""
        self.fired = False
        self.value = None

    def add_waiter(self, wake: Callable[[Any], None]) -> None:
        """Register a wake callback; invoked immediately if already fired."""
        if self.fired:
            self._sim.schedule(0.0, lambda: wake(self.value))
        else:
            self._waiters.append(wake)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else f"{len(self._waiters)} waiting"
        return f"SimEvent({self.name!r}, {state})"


class Simulator:
    """Discrete-event simulation kernel with a process scheduler.

    The public surface:

    * :attr:`now` -- current simulated time,
    * :meth:`schedule` -- run a callback after a delay,
    * :meth:`spawn` -- start a generator-based process,
    * :meth:`run` -- drive the event loop,
    * :meth:`event` -- create a :class:`SimEvent` bound to this kernel.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._processes: list[Any] = []
        self._running = False
        #: Number of events dispatched so far (diagnostic).
        self.events_dispatched = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def queue_depth(self) -> int:
        """Pending entries in the event heap (cancelled entries included)."""
        return len(self._heap)

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = 0,
    ) -> _ScheduledEvent:
        """Schedule ``action`` to run ``delay`` time units from now.

        Returns the heap entry, whose :meth:`~_ScheduledEvent.cancel` method
        can be used to retract the event before it fires.  ``priority``
        breaks same-time ties (lower runs first).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        entry = _ScheduledEvent(self._now + delay, priority, next(self._seq), action)
        heapq.heappush(self._heap, entry)
        return entry

    def schedule_at(
        self, time: float, action: Callable[[], None], priority: int = 0
    ) -> _ScheduledEvent:
        """Schedule ``action`` at an absolute simulated time."""
        return self.schedule(time - self._now, action, priority)

    def spawn(self, generator: Iterator[Any], name: Optional[str] = None) -> Any:
        """Start a new process from a generator; it runs at the current time.

        Returns the :class:`~repro.sim.process.Process` wrapper.
        """
        from repro.sim.process import Process  # local import to avoid a cycle

        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        self.schedule(0.0, proc._step_none)
        return proc

    def event(self, name: str = "") -> SimEvent:
        """Create a new :class:`SimEvent` bound to this simulator."""
        return SimEvent(self, name)

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Dispatch a single event.  Returns ``False`` when nothing is left.

        When the process-wide tracer is enabled, each dispatch runs inside
        a ``dispatch`` span (category ``kernel``) carrying the simulated
        time and queue depth; the disabled path costs one attribute check.
        """
        tracer = obs_tracer.TRACER
        if not tracer.enabled:
            return self._step()
        with tracer.span(
            "dispatch", cat="kernel", sim_time=self._now, queue_depth=len(self._heap)
        ):
            return self._step()

    def _step(self) -> bool:
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            if entry.time < self._now - 1e-12:
                raise SimulationError("event heap corrupted: time went backwards")
            self._now = max(self._now, entry.time)
            self.events_dispatched += 1
            entry.action()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the heap drains, ``until`` is reached, or ``max_events``.

        Returns the simulated time at which the loop stopped.  When stopping
        on ``until``, the clock is advanced to exactly ``until`` (events at
        later times stay queued).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        tracer = obs_tracer.TRACER
        try:
            if not tracer.enabled:
                return self._run_loop(until, max_events)
            # The outer span makes the whole loop (heap peeks included)
            # attributable in the per-phase profile; dispatch spans nest
            # inside it, so kernel self-time is genuine loop overhead.
            with tracer.span("run", cat="kernel", sim_time=self._now):
                return self._run_loop(until, max_events)
        finally:
            self._running = False

    def _run_loop(
        self, until: Optional[float], max_events: Optional[int]
    ) -> float:
        dispatched = 0
        while True:
            nxt = self.peek()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self._now = until
                break
            if max_events is not None and dispatched >= max_events:
                break
            self.step()
            dispatched += 1
        return self._now

    def run_instant(self, eps: float = 1e-9) -> int:
        """Dispatch every event scheduled at the *current* instant.

        Deterministic branch-point hook for the systematic explorer
        (:mod:`repro.stress`): after an externally chosen action (an LSA
        delivery, an injected event), the zero-delay cascade it triggers
        -- process wake-ups, mailbox drains, flood bookkeeping -- runs to
        completion while strictly-future events (topology-computation
        completions) stay queued as further branch points.  Returns the
        number of events dispatched.
        """
        dispatched = 0
        anchor = self._now
        while True:
            nxt = self.peek()
            if nxt is None or nxt > anchor + eps:
                break
            self.step()
            dispatched += 1
        return dispatched

    def advance_to_next(self, eps: float = 1e-9) -> Optional[float]:
        """Advance to the next scheduled instant and drain it entirely.

        The explorer's ``advance`` transition: jump the clock to the
        earliest pending event (deterministically -- ties broken by the
        heap's ``(time, priority, seq)`` order), dispatch it, then drain
        the zero-delay cascade at that instant via :meth:`run_instant`.
        Returns the new simulated time, or ``None`` when nothing is
        pending.
        """
        if self.peek() is None:
            return None
        self.step()
        self.run_instant(eps)
        return self._now

    def run_until_quiescent(
        self, idle_check: Callable[[], bool], max_time: float = float("inf")
    ) -> float:
        """Run until the heap drains *and* ``idle_check()`` holds, or ``max_time``.

        Useful for protocols where quiescence involves external state (e.g.
        all mailboxes empty) in addition to an empty event heap.
        """
        while True:
            nxt = self.peek()
            if nxt is None:
                if idle_check():
                    break
                raise SimulationError(
                    "event heap drained but idle_check() is false: deadlock"
                )
            if nxt > max_time:
                self._now = max_time
                break
            self.step()
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self._now:.6g}, pending={len(self._heap)})"
