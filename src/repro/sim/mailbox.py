"""Inter-process mailboxes (CSIM-style message queues).

A :class:`Mailbox` is an unbounded FIFO of messages.  Processes receive
with ``yield Receive(box)``; senders never block.  The D-GMC switch model
uses one mailbox per (switch, purpose): arriving LSAs are deposited by the
flooding layer, and the switch's ``ReceiveLSA()`` entity drains them.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional, TYPE_CHECKING

from repro.sim.kernel import SimulationError
from repro.sim.process import Process, ProcessState, Receive

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class MailboxClosed(SimulationError):
    """Raised when sending to a closed mailbox."""


class Mailbox:
    """Unbounded FIFO message queue with blocking receivers.

    Multiple processes may block in :class:`~repro.sim.process.Receive` on
    the same mailbox; messages are handed out in receiver-arrival order.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._queue: deque[Any] = deque()
        self._receivers: deque[tuple[Process, Any]] = deque()
        self._closed = False
        #: Total messages ever sent (diagnostic).
        self.sent_count = 0
        #: Total messages ever delivered to a receiver (diagnostic).
        self.delivered_count = 0

    # -- sender side -------------------------------------------------------

    def send(self, message: Any) -> None:
        """Deposit a message; wakes the oldest blocked receiver, if any."""
        if self._closed:
            raise MailboxClosed(f"mailbox {self.name!r} is closed")
        self.sent_count += 1
        while self._receivers:
            proc, timeout_entry = self._receivers.popleft()
            if proc.state is not ProcessState.WAITING:
                continue  # receiver timed out or was interrupted
            if timeout_entry is not None:
                timeout_entry.cancel()
            self.delivered_count += 1
            self.sim.schedule(0.0, lambda p=proc, m=message: p._step(m))
            return
        self._queue.append(message)

    def close(self) -> None:
        """Refuse further sends (already-queued messages remain receivable)."""
        self._closed = True

    # -- receiver side -----------------------------------------------------

    def _register_receiver(self, proc: Process, timeout: Optional[float]) -> None:
        """Called by :class:`Receive.apply`; hand over a queued message or park."""
        if self._queue:
            message = self._queue.popleft()
            self.delivered_count += 1
            self.sim.schedule(0.0, lambda: proc._step(message))
            return
        timeout_entry = None
        if timeout is not None:
            timeout_entry = self.sim.schedule(
                timeout, lambda: self._timeout_receiver(proc)
            )
        self._receivers.append((proc, timeout_entry))

    def _timeout_receiver(self, proc: Process) -> None:
        if proc.state is ProcessState.WAITING:
            proc._step(Receive.TIMED_OUT)

    def try_receive(self) -> tuple[bool, Any]:
        """Non-blocking receive: ``(True, message)`` or ``(False, None)``."""
        if self._queue:
            self.delivered_count += 1
            return True, self._queue.popleft()
        return False, None

    def peek_all(self) -> list[Any]:
        """Snapshot of queued messages without consuming them."""
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        """A mailbox object is always truthy, even when empty."""
        return True

    @property
    def empty(self) -> bool:
        return not self._queue

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Mailbox({self.name!r}, queued={len(self._queue)}, "
            f"receivers={len(self._receivers)})"
        )
