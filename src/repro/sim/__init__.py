"""Process-oriented discrete-event simulation kernel.

This package is a from-scratch Python replacement for the CSIM simulation
package used by the paper (Schwetman, "CSIM: A C-based, process-oriented
simulation language").  It provides the same modelling vocabulary:

* :class:`~repro.sim.kernel.Simulator` -- the event loop and simulated clock,
* :class:`~repro.sim.process.Process` -- generator-based coroutine processes,
* :class:`~repro.sim.mailbox.Mailbox` -- inter-process message queues,
* :class:`~repro.sim.resource.Facility` -- server resources with queueing,
* :class:`~repro.sim.monitor.Table` / :class:`~repro.sim.monitor.Meter` --
  statistics collection,
* :class:`~repro.sim.rng.RngRegistry` -- named, independently seeded random
  streams for reproducible experiments.

Processes are plain Python generators that ``yield`` command objects
(:class:`~repro.sim.process.Hold`, :class:`~repro.sim.process.Receive`,
:class:`~repro.sim.process.WaitEvent`, ...) back to the kernel::

    sim = Simulator()
    box = Mailbox(sim, "requests")

    def server():
        while True:
            msg = yield Receive(box)
            yield Hold(1.5)        # service time
            print(sim.now, msg)

    sim.spawn(server(), name="server")
    box.send("hello")
    sim.run(until=10.0)
"""

from repro.sim.kernel import Simulator, SimulationError, SimEvent
from repro.sim.process import (
    Hold,
    Passivate,
    Process,
    ProcessState,
    Receive,
    WaitEvent,
)
from repro.sim.mailbox import Mailbox, MailboxClosed
from repro.sim.resource import Facility, Request
from repro.sim.monitor import Meter, Table
from repro.sim.rng import RngRegistry

__all__ = [
    "Simulator",
    "SimulationError",
    "SimEvent",
    "Process",
    "ProcessState",
    "Hold",
    "Receive",
    "WaitEvent",
    "Passivate",
    "Mailbox",
    "MailboxClosed",
    "Facility",
    "Request",
    "Table",
    "Meter",
    "RngRegistry",
]
