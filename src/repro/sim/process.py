"""Generator-based simulation processes and their yieldable commands.

A process body is a plain generator.  Each ``yield`` hands a *command*
object to the kernel; the kernel resumes the generator (possibly sending a
value back) when the command completes:

* ``yield Hold(dt)`` -- advance simulated time by ``dt``,
* ``msg = yield Receive(mailbox)`` -- block until a message is available,
* ``val = yield WaitEvent(ev)`` -- block until ``ev`` fires,
* ``yield Passivate()`` -- sleep until another process calls
  :meth:`Process.activate`.

Yielding another generator runs it as a subroutine (call stack semantics),
so protocol code can be decomposed into helper generators.
"""

from __future__ import annotations

import enum
from typing import Any, Iterator, Optional, TYPE_CHECKING

from repro.sim.kernel import SimEvent, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.sim.mailbox import Mailbox


class ProcessState(enum.Enum):
    """Lifecycle states of a simulation process."""

    READY = "ready"
    RUNNING = "running"
    HOLDING = "holding"
    WAITING = "waiting"
    PASSIVE = "passive"
    TERMINATED = "terminated"


class Command:
    """Base class for objects a process may yield to the kernel."""

    def apply(self, proc: "Process") -> None:
        raise NotImplementedError


class Hold(Command):
    """Suspend the process for ``delay`` simulated time units."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"Hold delay must be >= 0, got {delay}")
        self.delay = delay

    def apply(self, proc: "Process") -> None:
        proc.state = ProcessState.HOLDING
        proc._pending = proc.sim.schedule(self.delay, proc._step_none)


class Receive(Command):
    """Block until a message arrives in ``mailbox``; resumes with the message.

    An optional ``timeout`` resumes the process with ``Receive.TIMED_OUT``
    if nothing arrives in time.
    """

    TIMED_OUT = object()

    __slots__ = ("mailbox", "timeout")

    def __init__(self, mailbox: "Mailbox", timeout: Optional[float] = None) -> None:
        self.mailbox = mailbox
        self.timeout = timeout

    def apply(self, proc: "Process") -> None:
        proc.state = ProcessState.WAITING
        self.mailbox._register_receiver(proc, self.timeout)


class WaitEvent(Command):
    """Block until a :class:`~repro.sim.kernel.SimEvent` fires."""

    __slots__ = ("event",)

    def __init__(self, event: SimEvent) -> None:
        self.event = event

    def apply(self, proc: "Process") -> None:
        proc.state = ProcessState.WAITING
        self.event.add_waiter(proc._step)


class Passivate(Command):
    """Sleep until another process calls :meth:`Process.activate`."""

    def apply(self, proc: "Process") -> None:
        proc.state = ProcessState.PASSIVE


class Process:
    """Kernel-side wrapper that drives a generator as a simulation process."""

    _counter = 0

    def __init__(
        self, sim: "Simulator", generator: Iterator[Any], name: Optional[str] = None
    ) -> None:
        Process._counter += 1
        self.sim = sim
        self.name = name or f"process-{Process._counter}"
        self.state = ProcessState.READY
        self._stack: list[Iterator[Any]] = [generator]
        self._pending = None  # scheduled kernel event, for cancellation
        self._result: Any = None
        #: Event fired (with the return value) when the process terminates.
        self.done = sim.event(f"{self.name}.done")

    # -- kernel-facing stepping ------------------------------------------

    def _step_none(self) -> None:
        self._step(None)

    def _step(self, value: Any) -> None:
        """Resume the generator, feeding ``value`` into the pending yield."""
        self._advance("send", value)

    def _advance(self, mode: str, value: Any) -> None:
        """Drive the generator stack with a send or a throw.

        Exceptions raised by a subroutine propagate into its caller
        generator, mirroring ordinary Python call semantics.
        """
        if self.state is ProcessState.TERMINATED:
            return
        self._pending = None
        self.state = ProcessState.RUNNING
        while True:
            gen = self._stack[-1]
            try:
                if mode == "send":
                    yielded = gen.send(value)
                else:
                    yielded = gen.throw(value)
            except StopIteration as stop:
                self._stack.pop()
                if not self._stack:
                    self._terminate(stop.value)
                    return
                mode, value = "send", stop.value  # return value to the caller
                continue
            except BaseException as exc:
                self._stack.pop()
                if not self._stack:
                    self._terminate(None)
                    raise
                mode, value = "throw", exc  # propagate into the caller
                continue
            mode = "send"
            if isinstance(yielded, Command):
                yielded.apply(self)
                return
            if hasattr(yielded, "send") and hasattr(yielded, "throw"):
                # Subroutine call: push the generator and run it first.
                self._stack.append(yielded)
                value = None
                continue
            raise SimulationError(
                f"{self.name} yielded unsupported object {yielded!r}; "
                "yield a Command or a generator"
            )

    def _terminate(self, result: Any) -> None:
        self.state = ProcessState.TERMINATED
        self._result = result
        self.done.fire(result)

    # -- public control ----------------------------------------------------

    @property
    def result(self) -> Any:
        """Return value of the process body (valid once terminated)."""
        return self._result

    @property
    def terminated(self) -> bool:
        return self.state is ProcessState.TERMINATED

    def activate(self, value: Any = None) -> None:
        """Wake a passivated process (no-op otherwise is an error)."""
        if self.state is not ProcessState.PASSIVE:
            raise SimulationError(
                f"activate() on {self.name} in state {self.state.value}"
            )
        self.state = ProcessState.READY
        self.sim.schedule(0.0, lambda: self._step(value))

    def interrupt(self, exc: Optional[BaseException] = None) -> None:
        """Cancel whatever the process waits on and throw into it.

        The process may catch the exception and continue (including
        yielding further commands), or let it propagate and terminate.
        """
        if self.state is ProcessState.TERMINATED:
            return
        if self._pending is not None:
            self._pending.cancel()
        self._advance("throw", exc or SimulationError(f"{self.name} interrupted"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Process({self.name!r}, {self.state.value})"
