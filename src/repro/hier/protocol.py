"""The two-level hierarchical D-GMC deployment.

One shared simulator drives one D-GMC instance per area plus one backbone
instance among border switches.  Membership events flood only within
their area; the area leader (smallest border switch) joins the area MC as
a proxy member and the backbone MC as the area's representative while the
area has real members.  See the package docstring for the design
rationale -- the paper names this extension but does not specify it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.core.events import JoinEvent, LeaveEvent, NodeEvent
from repro.core.protocol import DgmcNetwork, ProtocolConfig
from repro.hier.partition import AreaPlan
from repro.sim.kernel import Simulator
from repro.trees.base import SHARED


@dataclass
class _HierConnection:
    """Orchestration state for one hierarchical MC."""

    connection_id: int
    #: area id -> set of global switch ids with real members.
    members_by_area: Dict[int, Set[int]] = field(default_factory=dict)
    #: areas whose leader currently participates (proxy + backbone joined).
    active_areas: Set[int] = field(default_factory=set)
    #: area id -> the *acting* leader (may differ from the plan's default
    #: after a leader failure; see group-leader election below).
    acting_leader: Dict[int, int] = field(default_factory=dict)


class HierDgmcNetwork:
    """Hierarchical (two-level) D-GMC over an :class:`AreaPlan`.

    Only symmetric MCs are supported at the hierarchy level (the area and
    backbone instances run the ordinary protocol, which is generic; the
    leader-proxy stitching below assumes every member both sends and
    receives, the common conferencing case).
    """

    def __init__(
        self,
        plan: AreaPlan,
        config: Optional[ProtocolConfig] = None,
        sim: Optional[Simulator] = None,
    ) -> None:
        self.plan = plan
        self.config = config or ProtocolConfig()
        self.sim = sim or Simulator()
        self.area_protocols: Dict[int, DgmcNetwork] = {
            a: DgmcNetwork(view.net, self.config, sim=self.sim)
            for a, view in plan.areas.items()
        }
        self.backbone_protocol = DgmcNetwork(plan.backbone, self.config, sim=self.sim)
        self.connections: Dict[int, _HierConnection] = {}
        #: Border switches that have failed (group-leader election input).
        self.dead_borders: Set[int] = set()

    # -- registration ------------------------------------------------------------

    def register_symmetric(self, connection_id: int, **kw) -> None:
        if connection_id in self.connections:
            raise ValueError(f"connection {connection_id} already registered")
        for proto in self.area_protocols.values():
            proto.register_symmetric(connection_id, **kw)
        self.backbone_protocol.register_symmetric(connection_id, **kw)
        self.connections[connection_id] = _HierConnection(connection_id)

    # -- membership orchestration ----------------------------------------------------

    def inject_join(self, switch: int, connection_id: int, at: float) -> None:
        self.sim.schedule_at(at, lambda: self._fire_join(switch, connection_id))

    def inject_leave(self, switch: int, connection_id: int, at: float) -> None:
        self.sim.schedule_at(at, lambda: self._fire_leave(switch, connection_id))

    def _fire_join(self, switch: int, connection_id: int) -> None:
        conn = self.connections[connection_id]
        area_id = self.plan.area_of(switch)
        view = self.plan.area(area_id)
        proto = self.area_protocols[area_id]
        members = conn.members_by_area.setdefault(area_id, set())
        if switch in members:
            return  # idempotent join
        members.add(switch)
        if switch == conn.acting_leader.get(area_id):
            # The leader is already an area-MC member as the proxy; only
            # its real-membership flag changes.
            pass
        else:
            proto._fire_join(JoinEvent(view.to_local[switch], connection_id))
        self._reconcile_leader(conn, area_id)

    def _fire_leave(self, switch: int, connection_id: int) -> None:
        conn = self.connections[connection_id]
        area_id = self.plan.area_of(switch)
        view = self.plan.area(area_id)
        proto = self.area_protocols[area_id]
        members = conn.members_by_area.setdefault(area_id, set())
        if switch not in members:
            return
        members.remove(switch)
        if switch == conn.acting_leader.get(area_id):
            # The leader's area-MC membership is owned by the proxy logic;
            # _reconcile_leader removes it when the area truly empties.
            pass
        else:
            proto._fire_leave(LeaveEvent(view.to_local[switch], connection_id))
        self._reconcile_leader(conn, area_id)

    def _elect_leader(self, area_id: int) -> Optional[int]:
        """Group-leader election under link-state routing.

        Every border switch learns the live border set from the (area)
        link-state image, so all agree on the deterministic choice: the
        smallest *live* border switch.  Returns None when the whole border
        set is dead (the area is unrepresentable on the backbone).
        """
        live = [
            b for b in self.plan.area(area_id).borders
            if b not in self.dead_borders
        ]
        return live[0] if live else None

    def _reconcile_leader(self, conn: _HierConnection, area_id: int) -> None:
        """Keep the area leader's proxy/backbone membership consistent.

        The leader participates iff the area has at least one *real*
        member that is not the leader itself (a lone leader-member still
        needs backbone presence when other areas are active -- covered
        because membership is counted before proxying).
        """
        view = self.plan.area(area_id)
        proto = self.area_protocols[area_id]
        has_members = bool(conn.members_by_area.get(area_id))
        active = area_id in conn.active_areas
        if has_members and not active:
            leader = self._elect_leader(area_id)
            if leader is None:
                return  # no live border: the area cannot join the backbone
            conn.active_areas.add(area_id)
            conn.acting_leader[area_id] = leader
            if leader not in conn.members_by_area[area_id]:
                # proxy join inside the area (leader grafts itself)
                proto._fire_join(
                    JoinEvent(view.to_local[leader], conn.connection_id)
                )
            self.backbone_protocol._fire_join(
                JoinEvent(
                    self.plan.backbone_to_local[leader], conn.connection_id
                )
            )
        elif not has_members and active:
            leader = conn.acting_leader.get(area_id)
            conn.active_areas.discard(area_id)
            conn.acting_leader.pop(area_id, None)
            if leader is None or leader in self.dead_borders:
                return  # nothing to withdraw (dead leaders are ghosts)
            proto._fire_leave(
                LeaveEvent(view.to_local[leader], conn.connection_id)
            )
            self.backbone_protocol._fire_leave(
                LeaveEvent(
                    self.plan.backbone_to_local[leader], conn.connection_id
                )
            )

    # -- border failure and leader failover -------------------------------------

    def inject_border_failure(self, switch: int, at: float) -> None:
        """Schedule the failure of a border switch (with leader failover)."""
        area_id = self.plan.area_of(switch)
        if switch not in self.plan.area(area_id).borders:
            raise ValueError(f"switch {switch} is not a border switch")
        self.sim.schedule_at(at, lambda: self._fire_border_failure(switch))

    def _fire_border_failure(self, switch: int) -> None:
        if switch in self.dead_borders:
            return
        self.dead_borders.add(switch)
        area_id = self.plan.area_of(switch)
        view = self.plan.area(area_id)
        # The nodal event fires at both levels the switch participates in.
        self.area_protocols[area_id]._fire_node(
            NodeEvent(view.to_local[switch], up=False)
        )
        self.backbone_protocol._fire_node(
            NodeEvent(self.plan.backbone_to_local[switch], up=False)
        )
        # Failover: every connection whose acting leader died re-elects.
        for conn in self.connections.values():
            if conn.acting_leader.get(area_id) != switch:
                continue
            # Drop dead real-membership (its hosts are unreachable anyway).
            conn.members_by_area.get(area_id, set()).discard(switch)
            new_leader = self._elect_leader(area_id)
            if new_leader is None or not conn.members_by_area.get(area_id):
                conn.active_areas.discard(area_id)
                conn.acting_leader.pop(area_id, None)
                continue
            conn.acting_leader[area_id] = new_leader
            if new_leader not in conn.members_by_area[area_id]:
                self.area_protocols[area_id]._fire_join(
                    JoinEvent(view.to_local[new_leader], conn.connection_id)
                )
            self.backbone_protocol._fire_join(
                JoinEvent(
                    self.plan.backbone_to_local[new_leader], conn.connection_id
                )
            )

    # -- running --------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    # -- inspection --------------------------------------------------------------------

    def agreement(self, connection_id: int) -> Tuple[bool, str]:
        """Agreement within every area and on the backbone."""
        for a, proto in sorted(self.area_protocols.items()):
            ok, detail = proto.agreement(connection_id)
            if not ok:
                return False, f"area {a}: {detail}"
        ok, detail = self.backbone_protocol.agreement(connection_id)
        if not ok:
            return False, f"backbone: {detail}"
        return True, f"{len(self.area_protocols)} areas + backbone agree"

    def global_edges(self, connection_id: int) -> Set[Tuple[int, int]]:
        """The MC's physical edge set: area trees + expanded backbone tree."""
        edges: Set[Tuple[int, int]] = set()
        for a, proto in self.area_protocols.items():
            view = self.plan.area(a)
            states = proto.states_for(connection_id)
            if not states:
                continue
            state = states[min(states)]
            if state.installed is None:
                continue
            tree = state.installed.tree_map().get(SHARED)
            if tree is None:
                continue
            for u, v in tree.edges:
                gu, gv = view.to_global[u], view.to_global[v]
                edges.add((min(gu, gv), max(gu, gv)))
        bb_states = self.backbone_protocol.states_for(connection_id)
        if bb_states:
            state = bb_states[min(bb_states)]
            if state.installed is not None:
                tree = state.installed.tree_map().get(SHARED)
                if tree is not None:
                    for u, v in tree.edges:
                        edges.update(self.plan.expand_backbone_edge(u, v))
        return edges

    def global_members(self, connection_id: int) -> Set[int]:
        conn = self.connections[connection_id]
        return set().union(*conn.members_by_area.values()) if conn.members_by_area else set()

    def spans_members(self, connection_id: int) -> bool:
        """Do the stitched edges connect every member (via leaders)?"""
        members = self.global_members(connection_id)
        if len(members) <= 1:
            return True
        adj: Dict[int, Set[int]] = {}
        for u, v in self.global_edges(connection_id):
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        start = min(members)
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nbr in adj.get(node, ()):
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return members <= seen

    # -- cost accounting ---------------------------------------------------------------

    def total_computations(self) -> int:
        return self.backbone_protocol.total_computations() + sum(
            p.total_computations() for p in self.area_protocols.values()
        )

    def total_lsa_deliveries(self) -> int:
        """Individual LSA deliveries -- the hierarchy's scoping win."""
        return self.backbone_protocol.fabric.delivery_count + sum(
            p.fabric.delivery_count for p in self.area_protocols.values()
        )

    def total_floodings(self) -> int:
        return self.backbone_protocol.fabric.total_floods + sum(
            p.fabric.total_floods for p in self.area_protocols.values()
        )
