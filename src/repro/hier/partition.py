"""Area partitioning and the two-level network views.

:class:`AreaPlan` digests a flat :class:`~repro.topo.graph.Network` plus a
switch-to-area assignment into everything the hierarchical protocol
needs: per-area subnetworks (with local switch ids), border switch sets,
and the backbone network of border switches (physical inter-area links
plus virtual intra-area border-to-border links whose delay is the
intra-area shortest-path delay -- the PNNI-style abstraction of an area).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.lsr import spf
from repro.topo.graph import Network


class PartitionError(ValueError):
    """Raised when an area assignment is unusable."""


@dataclass
class AreaView:
    """One area's subnetwork and its id mappings."""

    area_id: int
    #: Area-local Network (switch ids 0..m-1).
    net: Network
    #: global switch id -> local id
    to_local: Dict[int, int]
    #: local id -> global switch id
    to_global: Dict[int, int]
    #: global ids of this area's border switches (sorted).
    borders: List[int]

    @property
    def leader(self) -> int:
        """The deterministic area leader: smallest border switch id."""
        return self.borders[0]


class AreaPlan:
    """The complete two-level decomposition of a flat network."""

    def __init__(self, net: Network, assignment: Mapping[int, int]) -> None:
        if set(assignment) != set(net.switches()):
            raise PartitionError("assignment must cover every switch exactly")
        self.net = net
        self.assignment = dict(assignment)
        self.area_ids = sorted(set(assignment.values()))
        if len(self.area_ids) < 2:
            raise PartitionError("a hierarchy needs at least two areas")
        self._inter_area_links = [
            link
            for link in net.links(include_down=True)
            if assignment[link.u] != assignment[link.v]
        ]
        if not self._inter_area_links:
            raise PartitionError("areas are mutually unreachable")
        self.areas: Dict[int, AreaView] = {
            a: self._build_area(a) for a in self.area_ids
        }
        for view in self.areas.values():
            if not view.borders:
                raise PartitionError(f"area {view.area_id} has no border switch")
        (
            self.backbone,
            self.backbone_to_local,
            self.backbone_to_global,
            self._virtual_paths,
        ) = self._build_backbone()

    # -- areas ------------------------------------------------------------------

    def _build_area(self, area_id: int) -> AreaView:
        members = sorted(x for x, a in self.assignment.items() if a == area_id)
        to_local = {g: i for i, g in enumerate(members)}
        to_global = {i: g for g, i in to_local.items()}
        sub = Network(len(members), name=f"area-{area_id}")
        for link in self.net.links(include_down=True):
            if (
                self.assignment[link.u] == area_id
                and self.assignment[link.v] == area_id
            ):
                new = sub.add_link(
                    to_local[link.u],
                    to_local[link.v],
                    delay=link.delay,
                    capacity=link.capacity,
                )
                new.up = link.up
        if not sub.is_connected():
            raise PartitionError(f"area {area_id} is not internally connected")
        borders = sorted(
            x
            for x in members
            if any(
                self.assignment[nbr] != area_id
                for nbr in self.net.neighbors(x, include_down=True)
            )
        )
        return AreaView(area_id, sub, to_local, to_global, borders)

    def area_of(self, switch: int) -> int:
        return self.assignment[switch]

    def area(self, area_id: int) -> AreaView:
        return self.areas[area_id]

    # -- backbone -------------------------------------------------------------------

    def _build_backbone(self):
        borders = sorted(
            b for view in self.areas.values() for b in view.borders
        )
        to_local = {g: i for i, g in enumerate(borders)}
        to_global = {i: g for g, i in to_local.items()}
        bb = Network(len(borders), name="backbone")
        virtual_paths: Dict[Tuple[int, int], List[int]] = {}
        # Physical inter-area links.
        for link in self._inter_area_links:
            bb.add_link(
                to_local[link.u], to_local[link.v], delay=link.delay
            ).up = link.up
        # Virtual intra-area border-to-border links (area abstraction).
        for view in self.areas.values():
            # Memoizing view: the border-pair distance and path queries
            # below reuse one SSSP solve per border switch.
            adj = view.net.spf_view()
            for i, a in enumerate(view.borders):
                dist, _ = spf.dijkstra(adj, view.to_local[a])
                for b in view.borders[i + 1 :]:
                    lb = view.to_local[b]
                    if lb not in dist:
                        continue
                    if bb.has_link(to_local[a], to_local[b]):
                        continue
                    bb.add_link(to_local[a], to_local[b], delay=max(dist[lb], 1e-9))
                    path = spf.shortest_path(adj, view.to_local[a], lb)
                    virtual_paths[(min(a, b), max(a, b))] = [
                        view.to_global[x] for x in path
                    ]
        if not bb.is_connected():
            raise PartitionError("backbone is not connected")
        return bb, to_local, to_global, virtual_paths

    def expand_backbone_edge(self, u_local: int, v_local: int) -> List[Tuple[int, int]]:
        """Physical (global-id) edges realizing one backbone edge."""
        gu = self.backbone_to_global[u_local]
        gv = self.backbone_to_global[v_local]
        key = (min(gu, gv), max(gu, gv))
        if key in self._virtual_paths:
            path = self._virtual_paths[key]
            return [
                (min(path[i], path[i + 1]), max(path[i], path[i + 1]))
                for i in range(len(path) - 1)
            ]
        return [key]  # a physical inter-area link

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AreaPlan(areas={len(self.area_ids)}, "
            f"borders={self.backbone.n}, n={self.net.n})"
        )


def bfs_partition(net: Network, areas: int, rng) -> Dict[int, int]:
    """Grow ``areas`` balanced, connected areas by parallel BFS.

    Seeds are random distinct switches; frontiers expand one switch at a
    time in round-robin, so areas end up contiguous and roughly equal.
    """
    if areas < 2 or areas > net.n:
        raise PartitionError("need 2 <= areas <= n")
    seeds = rng.sample(range(net.n), areas)
    assignment: Dict[int, int] = {}
    frontiers: List[deque] = []
    for a, seed in enumerate(seeds):
        assignment[seed] = a
        frontiers.append(deque([seed]))
    remaining = net.n - areas
    while remaining > 0:
        progressed = False
        for a in range(areas):
            frontier = frontiers[a]
            while frontier:
                x = frontier[0]
                unclaimed = [
                    y for y in net.neighbors(x) if y not in assignment
                ]
                if not unclaimed:
                    frontier.popleft()
                    continue
                y = unclaimed[0]
                assignment[y] = a
                frontier.append(y)
                remaining -= 1
                progressed = True
                break
        if not progressed:
            # isolated leftovers (shouldn't happen on connected nets)
            for x in net.switches():
                if x not in assignment:
                    assignment[x] = 0
                    remaining -= 1
    return assignment
