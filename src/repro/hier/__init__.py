"""Hierarchical D-GMC: the paper's named future-work extension.

Section 2: "LSR itself is generally intended for use in a set of networks
under one administrative authority [...] Scalability can be addressed by
introducing a routing hierarchy into large networks.  The combination of
an LSR protocol and routing hierarchy is under consideration for the ATM
PNNI standard.  In this paper, we present the 'basic' D-GMC protocol; its
extension to hierarchical networks is part of our ongoing work."

The paper gives no design for the extension, so this package supplies a
natural two-level one (documented here, marked as our construction):

* the network is partitioned into **areas**; links are intra-area or
  inter-area, and switches with inter-area links are **border switches**;
* each area runs a private D-GMC instance -- membership LSAs flood only
  inside the area (the scalability win);
* a **backbone** D-GMC instance runs among border switches over the
  inter-area links plus virtual intra-area border-to-border links
  (PNNI-style area abstraction);
* per MC and area, the smallest border switch acts as the **area leader**:
  while its area has members it joins both the area MC (as a proxy
  member, grafting the intra-area tree to itself) and the backbone MC
  (stitching the areas together).

An MC's global topology is then the union of the per-area trees and the
backbone tree with virtual links expanded to intra-area paths;
:meth:`~repro.hier.protocol.HierDgmcNetwork.global_edges` materializes it
and the tests verify it spans every member.
"""

from repro.hier.partition import AreaPlan, bfs_partition
from repro.hier.protocol import HierDgmcNetwork

__all__ = ["AreaPlan", "bfs_partition", "HierDgmcNetwork"]
