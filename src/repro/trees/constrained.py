"""Delay-constrained shared trees: the QoS side of D-GMC.

Section 2 argues MOSPF's data-driven model fails "if quality of service
(QoS) negotiation is needed prior to data transmission" -- an event-driven
protocol like D-GMC can build QoS-constrained topologies *before* data
flows.  This module supplies the constrained computation: a
delay-bounded variant of the Takahashi–Matsuyama heuristic (CSPH-style):
grow the tree member by member, always grafting along the cheapest path
whose accumulated anchor-to-member delay respects the bound, falling back
to the direct shortest path when the cheap graft would violate it.

The result guarantees ``anchor-to-member delay <= bound`` for every member
whenever the bound is feasible at all (the shortest-path delay itself is
the feasibility limit).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.lsr import spf
from repro.trees.base import MulticastTree, TreeError, canonical_edge


class DelayBoundViolation(TreeError):
    """The bound is infeasible: below some member's shortest-path delay."""


def tree_delays(
    tree: MulticastTree,
    adj: Mapping[int, Mapping[int, float]],
    anchor: int,
) -> Dict[int, float]:
    """Accumulated delay from ``anchor`` to every tree node, along the tree."""
    delays = {anchor: 0.0}
    tree_adj = tree.adjacency()
    stack = [anchor]
    while stack:
        node = stack.pop()
        for nbr in tree_adj.get(node, ()):
            if nbr not in delays:
                delays[nbr] = delays[node] + adj[node][nbr]
                stack.append(nbr)
    return delays


def delay_bounded_tree(
    adj: Mapping[int, Mapping[int, float]],
    terminals: Iterable[int],
    bound: float,
    anchor: Optional[int] = None,
) -> MulticastTree:
    """Shared tree with every anchor-to-terminal delay within ``bound``.

    ``anchor`` defaults to ``min(terminals)`` (deterministic across
    switches).  Raises :class:`DelayBoundViolation` when the bound is
    below some terminal's shortest-path delay (no tree can satisfy it).
    """
    terms = frozenset(terminals)
    if not terms:
        return MulticastTree.empty()
    if anchor is None:
        anchor = min(terms)
    if len(terms) == 1 and anchor in terms:
        return MulticastTree.empty(terms)

    anchor_dist, anchor_parent = spf.dijkstra(adj, anchor)
    for t in terms:
        if t not in anchor_dist:
            raise TreeError(f"terminal {t} unreachable from anchor {anchor}")
        if anchor_dist[t] > bound + 1e-12:
            raise DelayBoundViolation(
                f"terminal {t} needs delay {anchor_dist[t]:.4g} > bound {bound:.4g}"
            )

    tree = _greedy_bounded(adj, terms, bound, anchor, anchor_dist)
    if tree is None:
        # Greedy could not honor the bound; the pruned anchor SPT always
        # can (every on-SPT delay equals the shortest-path delay, which
        # the up-front check verified against the bound).
        from repro.trees.spt import prune_to_receivers, source_rooted_tree

        spt = source_rooted_tree(adj, anchor, terms - {anchor})
        pruned = prune_to_receivers(spt, terms)
        tree = MulticastTree(pruned.edges, terms, root=None)
    delays = tree_delays(tree, adj, anchor)
    for t in terms:
        if delays.get(t, float("inf")) > bound + 1e-9:
            raise DelayBoundViolation(
                f"internal error: member {t} ended at delay {delays[t]:.4g}"
            )
    return tree


def _greedy_bounded(
    adj: Mapping[int, Mapping[int, float]],
    terms: frozenset,
    bound: float,
    anchor: int,
    anchor_dist: Dict[int, float],
) -> Optional[MulticastTree]:
    """Greedy cheapest-feasible grafts; None when any graft is infeasible."""
    edges: set = set()
    in_tree = {anchor}
    node_delay: Dict[int, float] = {anchor: 0.0}
    # Nearest-to-anchor first keeps early delays small.
    remaining = sorted(terms - {anchor}, key=lambda t: (anchor_dist[t], t))

    for t in remaining:
        if t in in_tree:
            continue
        # Cheapest feasible attachment: from every tree node v, the path
        # v -> t costs dist_t[v] and yields delay node_delay[v] + dist_t[v].
        dist_t, parent_t = spf.dijkstra(adj, t)
        best = None
        for v in sorted(in_tree):
            if v not in dist_t:
                continue
            total_delay = node_delay[v] + dist_t[v]
            if total_delay <= bound + 1e-12:
                key = (dist_t[v], total_delay, v)
                if best is None or key < best[0]:
                    best = (key, v)
        if best is None:
            return None
        v = best[1]
        path = list(reversed(_path_from_parents(parent_t, v)))  # v .. t
        # The chosen v minimizes dist_t over *feasible* tree nodes, but an
        # interior path node can still be an in-tree node that was
        # infeasible as a graft point (its own tree delay too large);
        # splicing through it would create a cycle.  Rare -- give up and
        # let the caller fall back to the always-feasible pruned SPT.
        if any(node in in_tree for node in path[1:]):
            return None
        for i in range(len(path) - 1):
            a, b = path[i], path[i + 1]
            edges.add(canonical_edge(a, b))
            node_delay[b] = node_delay[a] + adj[a][b]
            in_tree.add(b)
        in_tree.add(t)
    return MulticastTree.build(edges, terms)


def _path_from_parents(parent: Dict[int, Optional[int]], target: int) -> list:
    """Node path root..target from a Dijkstra parent map."""
    path = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])  # type: ignore[arg-type]
    path.reverse()
    return path


def max_member_delay(
    tree: MulticastTree,
    adj: Mapping[int, Mapping[int, float]],
    anchor: int,
) -> float:
    """Worst anchor-to-member delay along the tree (QoS admission check)."""
    delays = tree_delays(tree, adj, anchor)
    return max((delays.get(m, float("inf")) for m in tree.members), default=0.0)
