"""Steiner tree heuristics for symmetric and receiver-only MCs.

"The problem of determining an optimal symmetric MC topology is the
well-known minimum Steiner tree problem" (Section 1, citing Winter's
survey).  Two classic polynomial heuristics are provided:

* :func:`kmb_steiner_tree` -- the Kou–Markowsky–Berman (1981) heuristic:
  MST of the terminals' metric closure, expanded to real paths, re-MST'd
  and pruned.  Worst-case cost ratio 2(1 - 1/|terminals|) vs optimal.
* :func:`pruned_spt_steiner_tree` -- cheaper: the shortest-path tree from a
  deterministic anchor terminal, pruned to the terminals.  This is the
  "from scratch" computation used by default in the simulation study,
  because its cost (one Dijkstra) matches the Tc regime the paper models.
* :func:`takahashi_matsuyama_tree` -- the Takahashi–Matsuyama (1980)
  shortest-path heuristic: grow the tree terminal by terminal, always
  grafting the terminal currently cheapest to reach.  Same 2(1 - 1/k)
  worst-case bound as KMB, usually better trees than pruned-SPT, and the
  *static batch analogue* of the Imase–Waxman GREEDY joins the dynamic
  algorithm performs one event at a time.

All are deterministic: ties break toward smaller node ids, so every
switch computing on the same network image produces the identical tree.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.lsr import spf
from repro.trees.base import MulticastTree, TreeError, canonical_edge
from repro.trees.spt import prune_to_receivers, source_rooted_tree


def _metric_closure(
    adj: Mapping[int, Mapping[int, float]], terminals: Tuple[int, ...]
) -> tuple[Dict[Tuple[int, int], float], Dict[int, Dict[int, list[int]]]]:
    """Pairwise distances and paths among terminals.

    Returns ``(dist, paths)`` where ``dist[(a, b)]`` (a < b) is the
    shortest-path distance and ``paths[a][b]`` the node path from each
    source terminal ``a``.
    """
    dist: Dict[Tuple[int, int], float] = {}
    paths: Dict[int, Dict[int, list[int]]] = {}
    for a in terminals:
        d, parent = spf.dijkstra(adj, a)
        paths[a] = {}
        for b in terminals:
            if b == a:
                continue
            if b not in d:
                raise TreeError(f"terminal {b} unreachable from {a}")
            pair = (a, b) if a < b else (b, a)
            dist[pair] = d[b]
            node, path = b, [b]
            while parent[node] is not None:
                node = parent[node]  # type: ignore[assignment]
                path.append(node)
            path.reverse()
            paths[a][b] = path
    return dist, paths


def _mst_prim(nodes: list, weight) -> list:
    """Prim's MST over an abstract complete graph; returns edge list.

    ``weight(u, v)`` must be defined for every node pair.  Deterministic:
    ties break toward smaller (weight, node) pairs.
    """
    if len(nodes) <= 1:
        return []
    import heapq

    start = min(nodes)
    in_tree = {start}
    heap = [(weight(start, v), start, v) for v in nodes if v != start]
    heapq.heapify(heap)
    edges = []
    while heap and len(in_tree) < len(nodes):
        w, u, v = heapq.heappop(heap)
        if v in in_tree:
            continue
        in_tree.add(v)
        edges.append((u, v))
        for x in nodes:
            if x not in in_tree:
                heapq.heappush(heap, (weight(v, x), v, x))
    if len(in_tree) < len(nodes):
        raise TreeError("MST inputs are disconnected")
    return edges


def kmb_steiner_tree(
    adj: Mapping[int, Mapping[int, float]], terminals: Iterable[int]
) -> MulticastTree:
    """Kou–Markowsky–Berman Steiner heuristic.

    1. MST of the metric closure over ``terminals``.
    2. Replace each closure edge by its underlying shortest path.
    3. MST of the resulting subgraph.
    4. Prune non-terminal leaves.
    """
    terms = tuple(sorted(set(terminals)))
    if len(terms) == 0:
        return MulticastTree.empty()
    if len(terms) == 1:
        return MulticastTree.empty(terms)
    closure_dist, closure_paths = _metric_closure(adj, terms)

    def closure_weight(a: int, b: int) -> float:
        return closure_dist[(a, b) if a < b else (b, a)]

    closure_mst = _mst_prim(list(terms), closure_weight)

    # Union of the shortest paths realizing the closure MST edges.
    sub_adj: Dict[int, Dict[int, float]] = {}
    for a, b in closure_mst:
        path = closure_paths[a][b] if b in closure_paths.get(a, {}) else closure_paths[b][a]
        for i in range(len(path) - 1):
            u, v = path[i], path[i + 1]
            w = adj[u][v]
            sub_adj.setdefault(u, {})[v] = w
            sub_adj.setdefault(v, {})[u] = w

    # MST of the subgraph (ordinary sparse Prim via the closure helper on
    # actual edges: emulate by running Prim restricted to sub_adj).
    import heapq

    nodes = sorted(sub_adj)
    start = nodes[0]
    in_tree = {start}
    heap = [(w, start, v) for v, w in sub_adj[start].items()]
    heapq.heapify(heap)
    edges = set()
    while heap and len(in_tree) < len(nodes):
        w, u, v = heapq.heappop(heap)
        if v in in_tree:
            continue
        in_tree.add(v)
        edges.add(canonical_edge(u, v))
        for x, wx in sub_adj[v].items():
            if x not in in_tree:
                heapq.heappush(heap, (wx, v, x))

    tree = MulticastTree.build(edges, terms)
    # Prune non-terminal leaves (reuse the receiver-prune with no root).
    return prune_to_receivers(tree, terms).with_members(terms)


def takahashi_matsuyama_tree(
    adj: Mapping[int, Mapping[int, float]], terminals: Iterable[int]
) -> MulticastTree:
    """Takahashi–Matsuyama shortest-path Steiner heuristic.

    Start from the smallest terminal; repeatedly run a multi-source
    Dijkstra from the current tree and graft the cheapest-to-reach
    remaining terminal along its shortest path.
    """
    import heapq

    terms = frozenset(terminals)
    if not terms:
        return MulticastTree.empty()
    if len(terms) == 1:
        return MulticastTree.empty(terms)
    remaining = set(terms)
    anchor = min(remaining)
    remaining.discard(anchor)
    tree_nodes = {anchor}
    edges: set = set()
    while remaining:
        # Multi-source Dijkstra seeded at every current tree node.
        dist: Dict[int, float] = {}
        parent: Dict[int, int | None] = {}
        heap = [(0.0, node, None) for node in sorted(tree_nodes)]
        heapq.heapify(heap)
        target = None
        while heap:
            d, node, via = heapq.heappop(heap)
            if node in dist:
                continue
            dist[node] = d
            parent[node] = via
            if node in remaining:
                target = node
                break
            for nbr, w in adj.get(node, {}).items():
                if nbr not in dist:
                    heapq.heappush(heap, (d + w, nbr, node))
        if target is None:
            raise TreeError(
                f"terminals unreachable from the tree: {sorted(remaining)}"
            )
        node = target
        while parent[node] is not None:
            edges.add(canonical_edge(node, parent[node]))  # type: ignore[arg-type]
            tree_nodes.add(node)
            node = parent[node]  # type: ignore[assignment]
        tree_nodes.add(target)
        remaining.discard(target)
    return MulticastTree.build(edges, terms)


def pruned_spt_steiner_tree(
    adj: Mapping[int, Mapping[int, float]],
    terminals: Iterable[int],
) -> MulticastTree:
    """Steiner approximation: SPT from the smallest-id terminal, pruned.

    One Dijkstra; the anchor is ``min(terminals)`` so all switches agree.
    """
    terms = frozenset(terminals)
    if not terms:
        return MulticastTree.empty()
    anchor = min(terms)
    tree = source_rooted_tree(adj, anchor, terms - {anchor})
    pruned = prune_to_receivers(tree, terms)
    return MulticastTree(pruned.edges, terms, root=None)
