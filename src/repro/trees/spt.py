"""Source-rooted shortest-path trees (the MOSPF / asymmetric-MC topology).

MOSPF "computes a shortest-path tree, rooted at the source of the datagram,
that reaches all hosts listening to M".  :func:`source_rooted_tree` builds
exactly that: the Dijkstra tree from the source, pruned so every leaf is a
receiver.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.lsr import spf
from repro.trees.base import MulticastTree, TreeError, canonical_edge


def source_rooted_tree(
    adj: Mapping[int, Mapping[int, float]],
    source: int,
    receivers: Iterable[int],
) -> MulticastTree:
    """Shortest-path tree from ``source`` pruned to ``receivers``.

    Raises :class:`TreeError` when some receiver is unreachable.
    """
    receivers = frozenset(receivers)
    dist, parent = spf.dijkstra(adj, source)
    missing = receivers - dist.keys()
    if missing:
        raise TreeError(f"receivers unreachable from {source}: {sorted(missing)}")
    edges = set()
    for r in receivers:
        node = r
        while parent[node] is not None:
            edge = canonical_edge(node, parent[node])  # type: ignore[arg-type]
            if edge in edges:
                break  # the rest of the path to the root is already present
            edges.add(edge)
            node = parent[node]  # type: ignore[assignment]
    members = receivers | {source}
    return MulticastTree.build(edges, members, root=source)


def prune_to_receivers(tree: MulticastTree, receivers: Iterable[int]) -> MulticastTree:
    """Repeatedly strip non-receiver leaves (the root is never stripped).

    Used when receivers leave: the remaining tree stays a valid
    source-rooted tree for the smaller receiver set.
    """
    receivers = frozenset(receivers)
    keep = receivers | ({tree.root} if tree.root is not None else frozenset())
    edges = set(tree.edges)
    changed = True
    while changed:
        changed = False
        degree: dict[int, int] = {}
        for u, v in edges:
            degree[u] = degree.get(u, 0) + 1
            degree[v] = degree.get(v, 0) + 1
        for node, deg in list(degree.items()):
            if deg == 1 and node not in keep:
                edges = {e for e in edges if node not in e}
                changed = True
    members = receivers | ({tree.root} if tree.root is not None else frozenset())
    return MulticastTree.build(edges, members, root=tree.root)
