"""Multicast tree (MC topology) computation algorithms.

The D-GMC protocol is "independent of the particular algorithm used to
compute the MC topology; algorithms for both Steiner trees and
source-rooted trees can be accommodated" (Section 1).  This package
provides the algorithm families the paper references:

* :mod:`repro.trees.spt` -- source-rooted shortest-path trees (MOSPF-style),
* :mod:`repro.trees.steiner` -- Steiner heuristics (KMB and pruned-SPT) for
  symmetric / receiver-only MCs,
* :mod:`repro.trees.dynamic` -- incremental greedy updates (Imase–Waxman
  dynamic Steiner, the paper's Section 3.5 "incremental update"),
* :mod:`repro.trees.cbt` -- core selection and core-based trees,
* :mod:`repro.trees.algorithms` -- the pluggable
  :class:`~repro.trees.algorithms.TopologyAlgorithm` interface D-GMC uses.
"""

from repro.trees.base import McTopology, MulticastTree, TreeError
from repro.trees.spt import prune_to_receivers, source_rooted_tree
from repro.trees.steiner import (
    kmb_steiner_tree,
    pruned_spt_steiner_tree,
    takahashi_matsuyama_tree,
)
from repro.trees.dynamic import GreedyDynamicSteiner, graft_path, prune_member
from repro.trees.cbt import core_based_tree, select_core
from repro.trees.algorithms import (
    SharedTreeAlgorithm,
    SourceTreesAlgorithm,
    TopologyAlgorithm,
    make_algorithm,
)

__all__ = [
    "MulticastTree",
    "McTopology",
    "TreeError",
    "source_rooted_tree",
    "prune_to_receivers",
    "kmb_steiner_tree",
    "pruned_spt_steiner_tree",
    "takahashi_matsuyama_tree",
    "GreedyDynamicSteiner",
    "graft_path",
    "prune_member",
    "select_core",
    "core_based_tree",
    "TopologyAlgorithm",
    "SharedTreeAlgorithm",
    "SourceTreesAlgorithm",
    "make_algorithm",
]
