"""Incremental (dynamic) Steiner tree maintenance.

Section 3.5: "Whenever possible, an implementation should invoke an
incremental update algorithm, which adds a tree branch to reach a new
member or removes a branch from a leaving member.  Brand-new MC topologies
are computed only when the network configuration changes adversely and/or
the present topology deviates significantly from an optimal one."

:func:`graft_path` / :func:`prune_member` implement the Imase–Waxman GREEDY
operations (Dynamic Steiner Tree Problem, SIAM J. Discrete Math 1991);
:class:`GreedyDynamicSteiner` wraps them with a from-scratch rebuild policy
based on a cost-degradation threshold.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Mapping, Optional

from repro.trees.base import (
    MulticastTree,
    TreeError,
    canonical_edge,
    edge_weights,
)
from repro.trees.steiner import kmb_steiner_tree, pruned_spt_steiner_tree


def graft_path(
    adj: Mapping[int, Mapping[int, float]],
    tree: MulticastTree,
    new_member: int,
) -> MulticastTree:
    """Greedy join: connect ``new_member`` by its cheapest path to the tree.

    A multi-source Dijkstra from every current tree node finds the cheapest
    attachment path; its edges are grafted.  If the tree is empty the new
    member forms a trivial tree.
    """
    members = tree.members | {new_member}
    tree_nodes = tree.nodes()
    if not tree_nodes or tree_nodes == {new_member}:
        return MulticastTree(tree.edges, frozenset(members), tree.root)
    if new_member in tree_nodes:
        return MulticastTree(tree.edges, frozenset(members), tree.root)
    # Multi-source Dijkstra seeded at all tree nodes (deterministic ties).
    dist: dict[int, float] = {}
    parent: dict[int, Optional[int]] = {}
    heap = [(0.0, node, None) for node in sorted(tree_nodes)]
    heapq.heapify(heap)
    while heap:
        d, node, via = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        parent[node] = via
        if node == new_member:
            break
        for nbr, w in adj.get(node, {}).items():
            if nbr not in dist:
                heapq.heappush(heap, (d + w, nbr, node))
    if new_member not in dist:
        raise TreeError(f"member {new_member} unreachable from the tree")
    edges = set(tree.edges)
    node = new_member
    while parent[node] is not None:
        edges.add(canonical_edge(node, parent[node]))  # type: ignore[arg-type]
        node = parent[node]  # type: ignore[assignment]
    return MulticastTree(frozenset(edges), frozenset(members), tree.root)


def prune_member(tree: MulticastTree, leaving: int) -> MulticastTree:
    """Greedy leave: drop the member; strip now-useless leaf chains.

    The leaving switch stays on the tree if it still relays traffic
    (degree > 1); otherwise its dangling branch is removed leaf by leaf.
    """
    members = tree.members - {leaving}
    edges = set(tree.edges)
    keep = set(members)
    if tree.root is not None:
        keep.add(tree.root)
    node = leaving
    while node not in keep:
        incident = [e for e in edges if node in e]
        if len(incident) != 1:
            break  # still a relay (or already isolated)
        edge = incident[0]
        edges.remove(edge)
        node = edge[0] if edge[1] == node else edge[1]
    return MulticastTree(frozenset(edges), frozenset(members), tree.root)


class GreedyDynamicSteiner:
    """Stateless policy object for incremental-vs-rebuild decisions.

    ``rebuild_threshold`` r: when the maintained tree's cost exceeds
    ``r x`` the cost of a fresh heuristic tree, a from-scratch computation
    is performed instead of the incremental result.  ``r = inf`` disables
    rebuilds (pure GREEDY); ``r = 1`` rebuilds on any degradation.
    """

    def __init__(
        self,
        rebuild_threshold: float = 1.5,
        scratch: str = "pruned-spt",
    ) -> None:
        if rebuild_threshold < 1.0:
            raise ValueError("rebuild_threshold must be >= 1")
        if scratch not in ("pruned-spt", "kmb"):
            raise ValueError(f"unknown scratch algorithm {scratch!r}")
        self.rebuild_threshold = rebuild_threshold
        self.scratch = scratch
        #: Counters for the ablation study.
        self.incremental_updates = 0
        self.rebuilds = 0

    def _from_scratch(
        self, adj: Mapping[int, Mapping[int, float]], members: Iterable[int]
    ) -> MulticastTree:
        self.rebuilds += 1
        if self.scratch == "kmb":
            return kmb_steiner_tree(adj, members)
        return pruned_spt_steiner_tree(adj, members)

    def update(
        self,
        adj: Mapping[int, Mapping[int, float]],
        previous: Optional[MulticastTree],
        members: frozenset[int],
    ) -> MulticastTree:
        """New tree for ``members`` given the previously installed tree.

        Joins/leaves relative to ``previous.members`` are applied
        incrementally; anything else (no previous tree, network change that
        broke the tree, threshold exceeded) triggers a from-scratch build.
        """
        if not members:
            return MulticastTree.empty()
        if previous is None or not previous.members:
            return self._from_scratch(adj, members)
        weights = edge_weights(adj)
        if any(e not in weights for e in previous.edges):
            # A tree link went down: incremental repair is not safe.
            return self._from_scratch(adj, members)
        tree = previous
        try:
            for gone in sorted(previous.members - members):
                tree = prune_member(tree, gone)
            for new in sorted(members - previous.members):
                tree = graft_path(adj, tree, new)
        except TreeError:
            return self._from_scratch(adj, members)
        self.incremental_updates += 1
        if self.rebuild_threshold != float("inf") and len(members) >= 2:
            fresh = (
                kmb_steiner_tree(adj, members)
                if self.scratch == "kmb"
                else pruned_spt_steiner_tree(adj, members)
            )
            if tree.cost(weights) > self.rebuild_threshold * fresh.cost(weights):
                self.rebuilds += 1
                self.incremental_updates -= 1
                return fresh
        return MulticastTree(tree.edges, members, tree.root)
