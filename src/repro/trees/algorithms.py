"""The pluggable topology-computation interface used by the D-GMC protocol.

D-GMC is "independent of the particular algorithm used to compute the MC
topology".  A :class:`TopologyAlgorithm` maps (network image, member list
with roles, previously installed topology) to a new
:class:`~repro.trees.base.McTopology`:

* :class:`SharedTreeAlgorithm` -- one shared tree over the relevant member
  set (symmetric and receiver-only MCs; Steiner heuristics, optionally
  with incremental updates, or a core-based tree),
* :class:`SourceTreesAlgorithm` -- one source-rooted shortest-path tree per
  sender (asymmetric MCs, MOSPF-style).

Determinism is required: all switches computing on the same image and
member list must produce equal topologies (value equality of
:class:`McTopology`), which every implementation here guarantees.
"""

from __future__ import annotations

import abc
from typing import Mapping, Optional

from repro.trees.base import McTopology, MulticastTree
from repro.trees.cbt import core_based_tree, select_core
from repro.trees.dynamic import GreedyDynamicSteiner
from repro.trees.spt import source_rooted_tree
from repro.trees.steiner import (
    kmb_steiner_tree,
    pruned_spt_steiner_tree,
    takahashi_matsuyama_tree,
)

#: Membership roles.  A symmetric member holds both.
SENDER = "sender"
RECEIVER = "receiver"

#: switch id -> set of roles
MemberRoles = Mapping[int, frozenset]


class TopologyAlgorithm(abc.ABC):
    """Strategy interface for MC topology computation."""

    @abc.abstractmethod
    def compute(
        self,
        adj: Mapping[int, Mapping[int, float]],
        members: MemberRoles,
        previous: Optional[McTopology],
    ) -> McTopology:
        """Return the new MC topology.

        ``adj`` is the switch's network image, ``members`` the member list
        with roles, ``previous`` the currently installed topology (enables
        incremental updates) or ``None``.
        """


def reachable_members(
    adj: Mapping[int, Mapping[int, float]],
    members: frozenset,
    anchor: Optional[int] = None,
) -> frozenset:
    """Members in the same component as ``anchor`` (default: smallest member).

    Network partitions are beyond the paper's protocol ("the ability of
    the protocol to survive [...] network partitioning remains for further
    study"), but topology computation must not fail when the local image
    is partitioned: each partition deterministically serves the members it
    can reach, anchored at the smallest member id present.
    """
    if not members:
        return members
    if anchor is None:
        anchor = min(members)
    seen = {anchor}
    stack = [anchor]
    while stack:
        node = stack.pop()
        for nbr in adj.get(node, ()):
            if nbr not in seen:
                seen.add(nbr)
                stack.append(nbr)
    return frozenset(m for m in members if m in seen)


def dominant_members(
    adj: Mapping[int, Mapping[int, float]], members: frozenset
) -> frozenset:
    """The largest member group that is mutually connected.

    Shared trees use this instead of anchoring at ``min(members)``: when a
    switch dies (a "nodal event") its ghost membership lingers, and an
    anchor that happens to be the ghost would strand every live member.
    Components are compared by member count, ties broken by smallest
    member id, so all switches pick the same group.
    """
    remaining = set(members)
    best: frozenset = frozenset()
    while remaining:
        anchor = min(remaining)
        component = reachable_members(adj, frozenset(remaining), anchor=anchor)
        component = component | {anchor}
        if len(component) > len(best):
            best = frozenset(component)
        remaining -= component
    return frozenset(m for m in best if m in members)


def receivers_of(members: MemberRoles) -> frozenset:
    return frozenset(x for x, roles in members.items() if RECEIVER in roles)


def senders_of(members: MemberRoles) -> frozenset:
    return frozenset(x for x, roles in members.items() if SENDER in roles)


class SharedTreeAlgorithm(TopologyAlgorithm):
    """One shared tree spanning every member switch.

    ``method`` selects the heuristic: ``"greedy-incremental"`` (default;
    Section 3.5's incremental update with rebuild policy), ``"pruned-spt"``,
    ``"kmb"``, ``"tm"`` (Takahashi–Matsuyama), ``"cbt"`` (core-based tree
    over the member set), or ``"delay-bounded"`` (QoS: every
    anchor-to-member delay within ``delay_bound``; see
    :mod:`repro.trees.constrained`).
    """

    def __init__(
        self,
        method: str = "greedy-incremental",
        rebuild_threshold: float = 1.5,
        core_strategy: str = "member-median",
        delay_bound: Optional[float] = None,
    ) -> None:
        valid = (
            "greedy-incremental",
            "pruned-spt",
            "kmb",
            "tm",
            "cbt",
            "delay-bounded",
        )
        if method not in valid:
            raise ValueError(f"method must be one of {valid}, got {method!r}")
        if method == "delay-bounded" and delay_bound is None:
            raise ValueError("delay-bounded method requires delay_bound")
        self.method = method
        self.core_strategy = core_strategy
        self.delay_bound = delay_bound
        self._dynamic = GreedyDynamicSteiner(rebuild_threshold=rebuild_threshold)

    def compute(
        self,
        adj: Mapping[int, Mapping[int, float]],
        members: MemberRoles,
        previous: Optional[McTopology],
    ) -> McTopology:
        member_set = dominant_members(adj, frozenset(members))
        if not member_set:
            return McTopology.empty()
        if self.method == "kmb":
            tree = kmb_steiner_tree(adj, member_set)
        elif self.method == "tm":
            tree = takahashi_matsuyama_tree(adj, member_set)
        elif self.method == "pruned-spt":
            tree = pruned_spt_steiner_tree(adj, member_set)
        elif self.method == "delay-bounded":
            from repro.trees.constrained import delay_bounded_tree

            tree = delay_bounded_tree(adj, member_set, self.delay_bound)
        elif self.method == "cbt":
            core = select_core(adj, member_set, strategy=self.core_strategy)
            tree = core_based_tree(adj, member_set, core)
        else:  # greedy-incremental
            prev_tree = previous.shared_tree if previous is not None else None
            tree = self._dynamic.update(adj, prev_tree, member_set)
        return McTopology.shared(tree)


class SourceTreesAlgorithm(TopologyAlgorithm):
    """One source-rooted shortest-path tree per sender (asymmetric MCs)."""

    def compute(
        self,
        adj: Mapping[int, Mapping[int, float]],
        members: MemberRoles,
        previous: Optional[McTopology],
    ) -> McTopology:
        receivers = receivers_of(members)
        senders = senders_of(members)
        if not senders or not receivers:
            return McTopology.empty()
        trees: dict[int, MulticastTree] = {}
        for s in sorted(senders):
            # Partition degradation: each sender serves the receivers it
            # can currently reach (see reachable_members).
            reachable = reachable_members(adj, receivers - {s}, anchor=s) - {s}
            trees[s] = source_rooted_tree(adj, s, reachable)
        return McTopology.per_source(trees)


def make_algorithm(connection_type: str, **kwargs) -> TopologyAlgorithm:
    """Factory keyed by MC type name.

    ``"symmetric"`` and ``"receiver-only"`` yield a
    :class:`SharedTreeAlgorithm`; ``"asymmetric"`` yields a
    :class:`SourceTreesAlgorithm`.  Keyword arguments are forwarded.
    """
    if connection_type in ("symmetric", "receiver-only"):
        return SharedTreeAlgorithm(**kwargs)
    if connection_type == "asymmetric":
        if kwargs:
            raise ValueError("SourceTreesAlgorithm takes no options")
        return SourceTreesAlgorithm()
    raise ValueError(f"unknown connection type {connection_type!r}")
