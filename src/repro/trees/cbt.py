"""Core selection and core-based trees (the CBT baseline's topology).

"The topology of a CBT connection is defined by the unicast paths between
the core and the group members" (Section 5).  :func:`select_core` picks the
core; :func:`core_based_tree` unions the unicast shortest paths from every
member to it.

The paper criticizes CBT's core-selection problem ("a good choice depends
on the locations of connection members"); both a member-aware *median*
strategy and the naive fixed-core strategy are provided so the benchmark
suite can quantify that sensitivity.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.lsr import spf
from repro.trees.base import MulticastTree, TreeError, canonical_edge


def select_core(
    adj: Mapping[int, Mapping[int, float]],
    members: Iterable[int],
    strategy: str = "member-median",
) -> int:
    """Choose the core switch for a receiver-only MC.

    Strategies:

    * ``member-median``: the switch minimizing the sum of shortest-path
      distances to all members (1-median restricted to reachable switches).
    * ``member-center``: the switch minimizing its maximum distance to any
      member (minimizes worst-case latency through the core).
    * ``first-member``: the smallest member id (a naive fixed choice, for
      the sensitivity study).
    """
    members = sorted(set(members))
    if not members:
        raise TreeError("cannot select a core for an empty member set")
    if strategy == "first-member":
        return members[0]
    if strategy not in ("member-median", "member-center"):
        raise ValueError(f"unknown core selection strategy {strategy!r}")
    # Distances from each member to everything (members are few; the
    # network image is shared by all switches so the choice is consistent).
    per_member = {}
    for m in members:
        dist, _ = spf.dijkstra(adj, m)
        per_member[m] = dist
    candidates = sorted(set.intersection(*(set(d) for d in per_member.values())))
    if not candidates:
        raise TreeError("no switch reaches every member")
    if strategy == "member-median":
        return min(candidates, key=lambda c: (sum(per_member[m][c] for m in members), c))
    return min(candidates, key=lambda c: (max(per_member[m][c] for m in members), c))


def core_based_tree(
    adj: Mapping[int, Mapping[int, float]],
    members: Iterable[int],
    core: int,
) -> MulticastTree:
    """Union of unicast shortest paths from every member to the core."""
    members = frozenset(members)
    dist, parent = spf.dijkstra(adj, core)
    missing = members - dist.keys()
    if missing:
        raise TreeError(f"members unreachable from core {core}: {sorted(missing)}")
    edges = set()
    for m in members:
        node = m
        while parent[node] is not None:
            edge = canonical_edge(node, parent[node])  # type: ignore[arg-type]
            if edge in edges:
                break
            edges.add(edge)
            node = parent[node]  # type: ignore[assignment]
    return MulticastTree.build(edges, members, root=core)
