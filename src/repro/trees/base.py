"""Tree and topology value objects shared by all algorithms.

A :class:`MulticastTree` is an immutable set of undirected edges plus the
member set it was built for.  A :class:`McTopology` is the complete
"topological description of the MC" carried in a proposal LSA: for shared
trees (symmetric and receiver-only MCs) it holds one tree under the key
``SHARED``; for asymmetric MCs it maps each sender to its source-rooted
tree.  Both are hashable values, so proposals compare by content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

Edge = Tuple[int, int]

#: Key under which a shared (non-source-specific) tree is stored.
SHARED = -1


class TreeError(ValueError):
    """Raised when a tree violates a structural requirement."""


def canonical_edge(u: int, v: int) -> Edge:
    """Undirected edge as a sorted tuple."""
    return (u, v) if u <= v else (v, u)


def canonical_edges(edges: Iterable[Edge]) -> FrozenSet[Edge]:
    return frozenset(canonical_edge(u, v) for u, v in edges)


@dataclass(frozen=True)
class MulticastTree:
    """An undirected tree (or forest) spanning an MC's members.

    ``edges`` are canonical sorted tuples; ``members`` is the member set
    the tree was computed for; ``root`` is the source for source-rooted
    trees and ``None`` for shared trees.
    """

    edges: FrozenSet[Edge]
    members: FrozenSet[int]
    root: Optional[int] = None

    @staticmethod
    def build(
        edges: Iterable[Edge], members: Iterable[int], root: Optional[int] = None
    ) -> "MulticastTree":
        return MulticastTree(canonical_edges(edges), frozenset(members), root)

    @staticmethod
    def empty(members: Iterable[int] = (), root: Optional[int] = None) -> "MulticastTree":
        return MulticastTree(frozenset(), frozenset(members), root)

    def nodes(self) -> FrozenSet[int]:
        """All switches touched by the tree (members included even if isolated)."""
        touched = {x for e in self.edges for x in e}
        touched.update(self.members)
        if self.root is not None:
            touched.add(self.root)
        return frozenset(touched)

    def adjacency(self) -> Dict[int, list[int]]:
        adj: Dict[int, list[int]] = {}
        for u, v in sorted(self.edges):
            adj.setdefault(u, []).append(v)
            adj.setdefault(v, []).append(u)
        return adj

    def degree(self, node: int) -> int:
        return sum(1 for e in self.edges if node in e)

    def cost(self, weights: Mapping[Edge, float]) -> float:
        """Total edge cost under ``weights`` (keyed by canonical edge)."""
        return sum(weights[e] for e in self.edges)

    def is_tree(self) -> bool:
        """True when the edge set is acyclic and connected (ignoring members)."""
        if not self.edges:
            return True
        adj = self.adjacency()
        nodes = list(adj)
        seen = {nodes[0]}
        stack = [(nodes[0], None)]
        while stack:
            node, came_from = stack.pop()
            for nbr in adj[node]:
                if nbr == came_from:
                    came_from = None  # consume one back-edge (parallel-free)
                    continue
                if nbr in seen:
                    return False
                seen.add(nbr)
                stack.append((nbr, node))
        return len(seen) == len(nodes)

    def spans(self, members: Iterable[int]) -> bool:
        """True when every member is connected into one component of the tree.

        A single member with no edges counts as spanned (trivial tree).
        """
        members = set(members)
        if len(members) <= 1:
            return True
        adj = self.adjacency()
        start = next(iter(members))
        if start not in adj:
            return False
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nbr in adj.get(node, ()):
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return members <= seen

    def validate(self, members: Optional[Iterable[int]] = None) -> None:
        """Raise :class:`TreeError` unless this is a tree spanning ``members``."""
        if not self.is_tree():
            raise TreeError("edge set contains a cycle or is disconnected")
        target = self.members if members is None else frozenset(members)
        if not self.spans(target):
            raise TreeError(f"tree does not span members {sorted(target)}")

    def with_members(self, members: Iterable[int]) -> "MulticastTree":
        return MulticastTree(self.edges, frozenset(members), self.root)

    def __len__(self) -> int:
        return len(self.edges)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MulticastTree(|edges|={len(self.edges)}, "
            f"members={sorted(self.members)}, root={self.root})"
        )


@dataclass(frozen=True)
class McTopology:
    """The complete topological description of an MC, as carried in LSAs.

    ``trees`` maps ``SHARED`` (for symmetric / receiver-only MCs) or a
    sender id (for asymmetric MCs) to a :class:`MulticastTree`.
    """

    trees: Tuple[Tuple[int, MulticastTree], ...]

    @staticmethod
    def shared(tree: MulticastTree) -> "McTopology":
        return McTopology(((SHARED, tree),))

    @staticmethod
    def per_source(trees: Mapping[int, MulticastTree]) -> "McTopology":
        return McTopology(tuple(sorted(trees.items())))

    @staticmethod
    def empty() -> "McTopology":
        return McTopology(())

    def tree_map(self) -> Dict[int, MulticastTree]:
        return dict(self.trees)

    @property
    def shared_tree(self) -> Optional[MulticastTree]:
        return self.tree_map().get(SHARED)

    def all_edges(self) -> FrozenSet[Edge]:
        edges: set[Edge] = set()
        for _, tree in self.trees:
            edges |= tree.edges
        return frozenset(edges)

    def spans(self, members: Iterable[int]) -> bool:
        """True when every constituent tree spans ``members``.

        A topology that fails this is *degraded*: it was computed while
        part of the membership was unreachable (partition, crashed
        switch) and serves only the dominant component.  An empty
        topology spans only an empty-or-singleton membership.
        """
        member_set = frozenset(members)
        if not self.trees:
            return len(member_set) <= 1
        return all(tree.spans(member_set) for _, tree in self.trees)

    def total_cost(self, weights: Mapping[Edge, float]) -> float:
        return sum(tree.cost(weights) for _, tree in self.trees)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        keys = [("shared" if k == SHARED else k) for k, _ in self.trees]
        return f"McTopology(keys={keys})"


def edge_weights(adj: Mapping[int, Mapping[int, float]]) -> Dict[Edge, float]:
    """Canonical-edge weight map from an adjacency view."""
    weights: Dict[Edge, float] = {}
    for u, nbrs in adj.items():
        for v, w in nbrs.items():
            weights[canonical_edge(u, v)] = w
    return weights
