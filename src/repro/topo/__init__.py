"""Network topology model and random topology generators.

The paper's network consists of *switches* joined by point-to-point
*links*, with *hosts* attached to ingress switches.  :class:`Network`
captures that model; :mod:`repro.topo.generators` builds the random graphs
used by the simulation study ("10 graphs were generated randomly for each
network size").
"""

from repro.topo.graph import Host, Link, Network
from repro.topo.generators import (
    clustered_network,
    dumbbell_network,
    grid_network,
    random_connected_network,
    ring_network,
    star_network,
    tree_network,
    waxman_network,
)
from repro.topo.validate import TopologyError, validate_network

__all__ = [
    "Network",
    "Link",
    "Host",
    "waxman_network",
    "random_connected_network",
    "grid_network",
    "ring_network",
    "star_network",
    "tree_network",
    "dumbbell_network",
    "clustered_network",
    "validate_network",
    "TopologyError",
]
