"""Random and structured topology generators.

The paper evaluates on randomly generated graphs ("10 graphs were generated
randomly for each network size", sizes up to 100 switches).  It does not
name the generator; we default to connected **Waxman** graphs -- the
standard random-topology model of mid-1990s multicast studies (Waxman 1988;
Wei & Estrin 1994) -- and also provide flat G(n, m) random graphs and
several structured families for tests and examples.

All generators take an explicit :class:`random.Random` stream and always
return *connected* networks.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.topo.graph import Network


def _spanning_tree_backbone(net: Network, rng: random.Random) -> None:
    """Wire a random spanning tree so the network is connected.

    Uses a random permutation + random-attachment tree (uniform recursive
    tree), which yields realistic low-diameter backbones.
    """
    order = list(net.switches())
    rng.shuffle(order)
    for i in range(1, len(order)):
        parent = order[rng.randrange(i)]
        child = order[i]
        if not net.has_link(parent, child):
            net.add_link(parent, child, delay=1.0)


def waxman_network(
    n: int,
    rng: random.Random,
    alpha: float = 0.25,
    beta: float = 0.4,
    target_degree: float = 4.0,
    delay_per_unit: float = 1.0,
    name: str = "",
) -> Network:
    """Connected Waxman random graph on the unit square.

    Edge (u, v) is included with probability
    ``beta * exp(-d(u, v) / (alpha * L))`` where ``L`` is the maximum
    possible distance; candidate edges are sampled until the average degree
    reaches ``target_degree``.  Link delays are proportional to Euclidean
    distance (``delay_per_unit`` per unit), floored at 5% of a unit so no
    link is free.  A random spanning tree guarantees connectivity.
    """
    if n < 2:
        raise ValueError("waxman_network requires n >= 2")
    net = Network(n, name=name or f"waxman-{n}")
    pos = {x: (rng.random(), rng.random()) for x in range(n)}
    net.positions = pos
    scale = math.sqrt(2.0)  # max distance on the unit square

    def dist(u: int, v: int) -> float:
        (x1, y1), (x2, y2) = pos[u], pos[v]
        return math.hypot(x1 - x2, y1 - y2)

    def delay(u: int, v: int) -> float:
        return max(dist(u, v), 0.05) * delay_per_unit

    # Backbone first so the graph is always connected.
    order = list(net.switches())
    rng.shuffle(order)
    for i in range(1, n):
        parent = order[rng.randrange(i)]
        net.add_link(order[i], parent, delay=delay(order[i], parent))

    target_links = max(n - 1, int(round(target_degree * n / 2.0)))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    rng.shuffle(pairs)
    for u, v in pairs:
        if net.link_count() >= target_links:
            break
        if net.has_link(u, v):
            continue
        p = beta * math.exp(-dist(u, v) / (alpha * scale))
        if rng.random() < p:
            net.add_link(u, v, delay=delay(u, v))
    # Waxman rejection may not reach the target on sparse layouts; top up
    # with the closest remaining pairs so densities stay comparable.
    if net.link_count() < target_links:
        remaining = [(dist(u, v), u, v) for u, v in pairs if not net.has_link(u, v)]
        remaining.sort()
        for _, u, v in remaining:
            if net.link_count() >= target_links:
                break
            net.add_link(u, v, delay=delay(u, v))
    return net


def random_connected_network(
    n: int,
    rng: random.Random,
    extra_links: Optional[int] = None,
    delay_range: tuple[float, float] = (0.5, 1.5),
    name: str = "",
) -> Network:
    """Flat random connected graph: spanning tree + ``extra_links`` chords.

    ``extra_links`` defaults to ``n`` (average degree about 4).  Link delays
    are uniform in ``delay_range``.
    """
    net = Network(n, name=name or f"random-{n}")
    _spanning_tree_backbone(net, rng)
    if extra_links is None:
        extra_links = n
    lo, hi = delay_range
    attempts = 0
    added = 0
    max_possible = n * (n - 1) // 2 - net.link_count()
    extra_links = min(extra_links, max_possible)
    while added < extra_links and attempts < 50 * (extra_links + 1):
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or net.has_link(u, v):
            continue
        net.add_link(u, v, delay=rng.uniform(lo, hi))
        added += 1
    for link in net.links():
        link.delay = rng.uniform(lo, hi)
    return net


def grid_network(rows: int, cols: int, delay: float = 1.0, name: str = "") -> Network:
    """Rows x cols mesh; switch ``r * cols + c`` sits at grid position (r, c)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    net = Network(rows * cols, name=name or f"grid-{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            x = r * cols + c
            net.positions[x] = (float(c), float(r))
            if c + 1 < cols:
                net.add_link(x, x + 1, delay=delay)
            if r + 1 < rows:
                net.add_link(x, x + cols, delay=delay)
    return net


def ring_network(n: int, delay: float = 1.0, name: str = "") -> Network:
    """Cycle of ``n`` switches (n >= 3)."""
    if n < 3:
        raise ValueError("ring requires n >= 3")
    net = Network(n, name=name or f"ring-{n}")
    for x in range(n):
        net.add_link(x, (x + 1) % n, delay=delay)
    return net


def star_network(n: int, delay: float = 1.0, name: str = "") -> Network:
    """Switch 0 at the hub, switches 1..n-1 as leaves."""
    if n < 2:
        raise ValueError("star requires n >= 2")
    net = Network(n, name=name or f"star-{n}")
    for x in range(1, n):
        net.add_link(0, x, delay=delay)
    return net


def tree_network(
    n: int, rng: random.Random, delay: float = 1.0, name: str = ""
) -> Network:
    """Uniform random recursive tree on ``n`` switches."""
    if n < 1:
        raise ValueError("tree requires n >= 1")
    net = Network(n, name=name or f"tree-{n}")
    for x in range(1, n):
        net.add_link(x, rng.randrange(x), delay=delay)
    return net


def clustered_network(
    clusters: int,
    cluster_size: int,
    rng: random.Random,
    inter_links_per_pair: int = 1,
    intra_extra_links: Optional[int] = None,
    inter_delay: float = 3.0,
    delay_range: tuple[float, float] = (0.5, 1.5),
    name: str = "",
) -> tuple[Network, dict[int, int]]:
    """A hierarchy-shaped network: dense clusters, sparse inter-cluster links.

    Models a multi-area routing domain (stub areas + longer inter-area
    trunks): each cluster is a connected random subgraph of
    ``cluster_size`` switches; each *adjacent* cluster pair (ring order)
    gets ``inter_links_per_pair`` trunk links of ``inter_delay`` between
    randomly chosen gateway switches.  Returns ``(network, assignment)``
    where ``assignment`` maps each switch to its cluster id -- directly
    usable as an :class:`repro.hier.partition.AreaPlan` assignment.
    """
    if clusters < 2 or cluster_size < 2:
        raise ValueError("need >= 2 clusters of >= 2 switches")
    n = clusters * cluster_size
    net = Network(n, name=name or f"clustered-{clusters}x{cluster_size}")
    assignment: dict[int, int] = {}
    lo, hi = delay_range
    if intra_extra_links is None:
        intra_extra_links = cluster_size
    for c in range(clusters):
        base = c * cluster_size
        ids = list(range(base, base + cluster_size))
        for x in ids:
            assignment[x] = c
        order = ids[:]
        rng.shuffle(order)
        for i in range(1, cluster_size):
            parent = order[rng.randrange(i)]
            net.add_link(order[i], parent, delay=rng.uniform(lo, hi))
        added = 0
        attempts = 0
        while added < intra_extra_links and attempts < 50 * intra_extra_links:
            attempts += 1
            u, v = rng.sample(ids, 2)
            if not net.has_link(u, v):
                net.add_link(u, v, delay=rng.uniform(lo, hi))
                added += 1
    # Ring of trunks between adjacent clusters keeps the backbone small.
    for c in range(clusters):
        nxt = (c + 1) % clusters
        if clusters == 2 and c == 1:
            break  # avoid doubling the single pair
        for _ in range(inter_links_per_pair):
            for _ in range(50):
                u = c * cluster_size + rng.randrange(cluster_size)
                v = nxt * cluster_size + rng.randrange(cluster_size)
                if not net.has_link(u, v):
                    net.add_link(u, v, delay=inter_delay)
                    break
    return net, assignment


def dumbbell_network(
    side: int, bridge_delay: float = 5.0, delay: float = 1.0, name: str = ""
) -> Network:
    """Two cliques of ``side`` switches joined by one long bridge link.

    Useful for exercising the WAN regime (Experiment 2): the bridge
    dominates the flooding diameter.
    """
    if side < 2:
        raise ValueError("dumbbell sides must have >= 2 switches")
    n = 2 * side
    net = Network(n, name=name or f"dumbbell-{side}")
    for base in (0, side):
        for i in range(side):
            for j in range(i + 1, side):
                net.add_link(base + i, base + j, delay=delay)
    net.add_link(side - 1, side, delay=bridge_delay)
    return net
