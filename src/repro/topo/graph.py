"""The network model: switches, bidirectional links, and attached hosts.

Switches are integers ``0..n-1`` (the paper's LSA source addresses are
drawn from ``{0, 1, ..., n-1}``).  Links are undirected, carry a
propagation ``delay`` and a ``capacity``, and may be administratively or
operationally down -- link failures are the "link/nodal events" that the
D-GMC protocol reacts to.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple

import networkx as nx


def _edge_key(u: int, v: int) -> Tuple[int, int]:
    """Canonical undirected edge key."""
    return (u, v) if u <= v else (v, u)


@dataclass
class Link:
    """An undirected point-to-point link between two switches."""

    u: int
    v: int
    delay: float = 1.0
    capacity: float = 1.0
    up: bool = True

    @property
    def key(self) -> Tuple[int, int]:
        return _edge_key(self.u, self.v)

    def other(self, node: int) -> int:
        """The endpoint opposite ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"{node} is not an endpoint of link {self.key}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "DOWN"
        return f"Link({self.u}-{self.v}, delay={self.delay:.4g}, {state})"


@dataclass
class Host:
    """A host attached to its ingress switch."""

    host_id: str
    ingress: int
    #: Free-form attributes (e.g. application role).
    attrs: dict = field(default_factory=dict)


class Network:
    """A switch-level network graph with link state and host attachments.

    The class intentionally stores its own adjacency (rather than wrapping a
    :class:`networkx.Graph` directly) so that link up/down transitions are a
    single flag flip and so deterministic iteration order is guaranteed;
    :meth:`to_networkx` exports a view for algorithms that want networkx.
    """

    def __init__(self, n: int, name: str = "") -> None:
        if n < 1:
            raise ValueError("network must contain at least one switch")
        self.n = n
        self.name = name
        self._adj: Dict[int, Dict[int, Link]] = {x: {} for x in range(n)}
        self._links: Dict[Tuple[int, int], Link] = {}
        self._hosts: Dict[str, Host] = {}
        #: Optional 2-D coordinates (used by Waxman generation and plotting).
        self.positions: Dict[int, Tuple[float, float]] = {}
        #: Topology version: bumped by every link addition or up/down
        #: transition, so SPF views know when they are stale.
        self._version = 0
        #: Cached SPF views, keyed by include_down (see spf_view).
        self._spf_views: Dict[bool, object] = {}
        #: Views superseded by the last invalidation, kept one step so the
        #: next :meth:`spf_view` can chain them for incremental SPF.
        self._prev_views: Dict[bool, object] = {}
        #: The mutation behind the latest version bump:
        #: ``("add", u, v, delay)`` or ``("state", u, v, delay, old_up, up)``.
        self._last_event: Optional[Tuple] = None
        self._last_event_version = -1
        #: SPF cache counters for this network's views (lazily created).
        self.spf_stats = None

    # -- construction ------------------------------------------------------

    def add_link(
        self, u: int, v: int, delay: float = 1.0, capacity: float = 1.0
    ) -> Link:
        """Add an undirected link; parallel links and self-loops are rejected."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ValueError(f"self-loop at switch {u}")
        key = _edge_key(u, v)
        if key in self._links:
            raise ValueError(f"duplicate link {key}")
        if delay <= 0:
            raise ValueError(f"link delay must be positive, got {delay}")
        link = Link(u, v, delay=delay, capacity=capacity)
        self._links[key] = link
        self._adj[u][v] = link
        self._adj[v][u] = link
        self._invalidate_views(("add", u, v, delay))
        return link

    def attach_host(self, host_id: str, ingress: int, **attrs) -> Host:
        """Attach a host to its ingress switch."""
        self._check_node(ingress)
        if host_id in self._hosts:
            raise ValueError(f"duplicate host {host_id!r}")
        host = Host(host_id, ingress, dict(attrs))
        self._hosts[host_id] = host
        return host

    def _check_node(self, x: int) -> None:
        if not (0 <= x < self.n):
            raise ValueError(f"switch id {x} out of range [0, {self.n})")

    # -- queries -----------------------------------------------------------

    def switches(self) -> range:
        return range(self.n)

    def links(self, include_down: bool = False) -> Iterator[Link]:
        """All links, sorted by key for determinism."""
        for key in sorted(self._links):
            link = self._links[key]
            if include_down or link.up:
                yield link

    def link(self, u: int, v: int) -> Link:
        """The link between ``u`` and ``v`` (KeyError if absent)."""
        return self._links[_edge_key(u, v)]

    def has_link(self, u: int, v: int) -> bool:
        return _edge_key(u, v) in self._links

    def neighbors(self, x: int, include_down: bool = False) -> list[int]:
        """Neighbor switches of ``x`` over (by default) up links, sorted."""
        return sorted(
            y for y, link in self._adj[x].items() if include_down or link.up
        )

    def degree(self, x: int) -> int:
        return len(self.neighbors(x))

    def hosts(self) -> Iterable[Host]:
        return self._hosts.values()

    def host(self, host_id: str) -> Host:
        return self._hosts[host_id]

    def link_count(self, include_down: bool = False) -> int:
        return sum(1 for _ in self.links(include_down=include_down))

    # -- link state --------------------------------------------------------

    def set_link_state(self, u: int, v: int, up: bool) -> Link:
        """Mark a link up or down; returns the link."""
        link = self.link(u, v)
        old_up = link.up
        link.up = up
        self._invalidate_views(("state", u, v, link.delay, old_up, up))
        return link

    # -- SPF views -----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone topology version (bumped per link add / state change)."""
        return self._version

    def _invalidate_views(self, event: Optional[Tuple] = None) -> None:
        self._version += 1
        self._last_event = event
        self._last_event_version = self._version
        if self._spf_views:
            self._prev_views = self._spf_views
            self._spf_views = {}
            if self.spf_stats is not None:
                from repro.lsr.spfcache import count_invalidation

                count_invalidation(self.spf_stats)

    @staticmethod
    def _event_delta(event: Optional[Tuple], include_down: bool):
        """Translate a recorded mutation into a view's single-link delta
        ``(u, v, old_weight, new_weight)``, or None if untranslatable."""
        if event is None:
            return None
        if event[0] == "add":
            _, u, v, delay = event
            return (u, v, None, delay)
        _, u, v, delay, old_up, new_up = event
        if include_down:
            # The all-links view keeps every edge regardless of state, so
            # an up/down flip leaves it unchanged (a no-op delta).
            return (u, v, delay, delay)
        return (u, v, delay if old_up else None, delay if new_up else None)

    def up_delta_since(self, version: int):
        """How the up-link adjacency changed since ``version``.

        Returns ``()`` when nothing changed, a 1-tuple of
        ``(u, v, old_weight, new_weight)`` when exactly one recorded
        mutation happened, and ``None`` when the gap is wider than one
        event (caller must rebuild from scratch).  Lets single-link
        consumers -- the flooding fabric's BFS hop cache -- repair
        derived state instead of discarding it.
        """
        if version == self._version:
            return ()
        if version != self._version - 1 or self._last_event_version != self._version:
            return None
        delta = self._event_delta(self._last_event, include_down=False)
        return None if delta is None else (delta,)

    def spf_view(self, include_down: bool = False):
        """A memoizing adjacency view (delays as weights) of this network.

        Equivalent in content to :func:`repro.lsr.spf.network_adjacency`
        but wrapped in an :class:`~repro.lsr.spfcache.SpfCache`, so SPF
        results are reused until the next link mutation invalidates the
        view.  When exactly one recorded mutation separates the new view
        from its predecessor, the delta is threaded into the cache so
        misses repair the old trees incrementally.  Treat the returned
        mapping as immutable.
        """
        from repro.lsr.spf import network_adjacency
        from repro.lsr.spfcache import CacheStats, SpfCache, enabled, wrap_image

        key = bool(include_down)
        view = self._spf_views.get(key)
        if view is not None:
            return view
        # One edge-iteration builder shared with the uncached path (and
        # the CSR compile downstream of it): see spf.network_adjacency.
        adj = network_adjacency(self, include_down=include_down)
        if not enabled():
            return adj
        if self.spf_stats is None:
            self.spf_stats = CacheStats()
        prev = self._prev_views.pop(key, None)
        delta = None
        if (
            isinstance(prev, SpfCache)
            and prev.generation == self._version - 1
            and self._last_event_version == self._version
        ):
            single = self._event_delta(self._last_event, include_down=key)
            delta = (single,) if single is not None else None
        view = wrap_image(
            adj,
            stats=self.spf_stats,
            generation=self._version,
            prev=prev,
            delta=delta,
        )
        self._spf_views[key] = view
        return view

    # -- graph algorithms ----------------------------------------------------

    def hop_distances(self, source: int) -> Dict[int, int]:
        """BFS hop counts from ``source`` over up links (unreachable omitted)."""
        dist = {source: 0}
        frontier = deque([source])
        while frontier:
            x = frontier.popleft()
            for y in self.neighbors(x):
                if y not in dist:
                    dist[y] = dist[x] + 1
                    frontier.append(y)
        return dist

    def delay_distances(self, source: int) -> Dict[int, float]:
        """Dijkstra cumulative-delay distances from ``source`` over up links."""
        import heapq

        dist: Dict[int, float] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, x = heapq.heappop(heap)
            if x in dist:
                continue
            dist[x] = d
            for y in self.neighbors(x):
                if y not in dist:
                    heapq.heappush(heap, (d + self._adj[x][y].delay, y))
        return dist

    def is_connected(self) -> bool:
        """True when every switch is reachable over up links."""
        return len(self.hop_distances(0)) == self.n

    def bridges(self) -> list[Tuple[int, int]]:
        """All bridge edges over up links, as sorted canonical keys.

        A bridge is an up link whose removal disconnects its component.
        One Tarjan lowpoint pass over the up-link graph (iterative DFS, so
        deep topologies cannot hit the recursion limit): O(V + E) total,
        versus probing connectivity once per link.
        """
        disc: Dict[int, int] = {}
        low: Dict[int, int] = {}
        out: list[Tuple[int, int]] = []
        counter = 0
        for root in self.switches():
            if root in disc:
                continue
            # Stack frames: (node, parent, iterator over up-neighbors).
            disc[root] = low[root] = counter
            counter += 1
            stack = [(root, -1, iter(self.neighbors(root)))]
            # One parent edge may be retraversed per node (parallel links
            # are rejected at add_link, so a single skip is exact).
            skipped_parent = {root: False}
            while stack:
                node, parent, it = stack[-1]
                advanced = False
                for nbr in it:
                    if nbr == parent and not skipped_parent[node]:
                        skipped_parent[node] = True
                        continue
                    if nbr in disc:
                        low[node] = min(low[node], disc[nbr])
                        continue
                    disc[nbr] = low[nbr] = counter
                    counter += 1
                    skipped_parent[nbr] = False
                    stack.append((nbr, node, iter(self.neighbors(nbr))))
                    advanced = True
                    break
                if advanced:
                    continue
                stack.pop()
                if parent >= 0:
                    low[parent] = min(low[parent], low[node])
                    if low[node] > disc[parent]:
                        out.append(_edge_key(parent, node))
        return sorted(out)

    def diameter_hops(self) -> int:
        """Largest hop distance between any pair of switches (up links)."""
        worst = 0
        for x in self.switches():
            dist = self.hop_distances(x)
            if len(dist) < self.n:
                return -1  # disconnected
            worst = max(worst, max(dist.values()))
        return worst

    def flooding_diameter(self, per_hop_delay: Optional[float] = None) -> float:
        """Worst-case time for a flood to reach all switches (paper's Tf).

        With ``per_hop_delay`` given, the flood takes ``hops * per_hop_delay``
        along the fastest hop path; otherwise actual link delays are summed.
        """
        worst = 0.0
        for x in self.switches():
            if per_hop_delay is not None:
                dist = self.hop_distances(x)
                if len(dist) < self.n:
                    return math.inf
                worst = max(worst, max(dist.values()) * per_hop_delay)
            else:
                dist = self.delay_distances(x)
                if len(dist) < self.n:
                    return math.inf
                worst = max(worst, max(dist.values()))
        return worst

    # -- export / copy ---------------------------------------------------------

    def to_networkx(self, include_down: bool = False) -> nx.Graph:
        """Export to :class:`networkx.Graph` with ``delay`` edge weights."""
        g = nx.Graph()
        g.add_nodes_from(self.switches())
        for link in self.links(include_down=include_down):
            g.add_edge(link.u, link.v, delay=link.delay, capacity=link.capacity)
        return g

    def copy(self) -> "Network":
        """Deep copy (hosts and link states included)."""
        net = Network(self.n, name=self.name)
        for link in self.links(include_down=True):
            new = net.add_link(link.u, link.v, delay=link.delay, capacity=link.capacity)
            new.up = link.up
        for host in self.hosts():
            net.attach_host(host.host_id, host.ingress, **host.attrs)
        net.positions = dict(self.positions)
        return net

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Network({self.name!r}, n={self.n}, "
            f"links={self.link_count(include_down=True)})"
        )
