"""Topology sanity checks used by generators, tests, and the harness."""

from __future__ import annotations

from repro.topo.graph import Network


class TopologyError(ValueError):
    """Raised when a network violates a structural requirement."""


def validate_network(net: Network, require_connected: bool = True) -> None:
    """Raise :class:`TopologyError` when ``net`` is structurally unsound.

    Checks: positive link delays, endpoints in range, no self-loops (the
    :class:`~repro.topo.graph.Network` constructor enforces most of this;
    the function re-verifies in case callers mutated links directly), and,
    optionally, connectivity over up links.
    """
    for link in net.links(include_down=True):
        if link.delay <= 0:
            raise TopologyError(f"link {link.key} has non-positive delay")
        if link.u == link.v:
            raise TopologyError(f"self-loop at {link.u}")
        for endpoint in link.key:
            if not (0 <= endpoint < net.n):
                raise TopologyError(f"link endpoint {endpoint} out of range")
    for host in net.hosts():
        if not (0 <= host.ingress < net.n):
            raise TopologyError(
                f"host {host.host_id!r} attached to invalid switch {host.ingress}"
            )
    if require_connected and not net.is_connected():
        raise TopologyError("network is not connected over up links")
