"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures``   -- regenerate the paper's Figures 6-8 (add ``--quick``),
* ``compare``   -- the Section 4 D-GMC / MOSPF / brute-force comparison,
* ``trace``     -- run a small conflict scenario and print the merged
  protocol timeline plus the convergence profile; ``--export-trace``
  writes a Chrome trace (chrome://tracing / Perfetto), ``--export-jsonl``
  streams events as JSONL, ``--metrics`` dumps the Prometheus text of the
  deployment's metrics registry,
* ``profile``   -- per-phase (SPF / flooding / arbitration / kernel
  overhead) wall-time breakdown of a representative run,
* ``hierarchy`` -- flat vs hierarchical D-GMC LSA-scoping comparison,
* ``live``      -- run a scenario on the live asyncio/UDP backend and
  (optionally) check byte-level equivalence against the discrete-event
  run; ``--loss`` injects seeded datagram loss, ``--metrics`` dumps the
  transport's counters as Prometheus text,
* ``chaos``     -- seeded crash/restart/partition/churn soak on the live
  backend with hello-based failure detection and neighbor resync;
  asserts agreement and tree validity at every stable point,
* ``stress``    -- STRESS-style systematic exploration of arbitration
  schedules: enumerate every LSA delivery/loss/event interleaving of a
  small scenario, check the named invariants in every state, and shrink
  any violation to a 1-minimal replayable counterexample
  (``--replay`` re-runs a committed one; see docs/systematic-testing.md),
* ``dataplane`` -- drive a Zipf churn-and-traffic workload through the
  batched forwarding engine, optionally shadowing a packet sample
  through the per-packet reference engine (exit code checks delivery
  equivalence) and contrasting against the MOSPF baseline
  (``--mospf``); ``--metrics`` dumps the ``dataplane_*`` counters
  (see docs/dataplane.md),
* ``obs merge`` -- fuse per-host JSONL traces (``clock_sync``
  epoch-aligned) into one cross-host Chrome trace with causal flow
  arrows intact (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import random
from typing import List, Optional

from repro.core import DgmcNetwork, JoinEvent, ProtocolConfig


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.harness.figures import experiment1, experiment2, experiment3
    from repro.harness.report import render_rows

    if args.quick:
        sizes, graphs = (20, 60), 3
    else:
        sizes, graphs = (20, 40, 60, 80, 100), 10
    print(render_rows(
        experiment1(sizes=sizes, graphs_per_size=graphs, seed=args.seed),
        "Figure 6 -- Experiment 1: bursty, computation dominates",
    ))
    print()
    print(render_rows(
        experiment2(sizes=sizes, graphs_per_size=graphs, seed=args.seed),
        "Figure 7 -- Experiment 2: bursty, communication dominates",
    ))
    print()
    print(render_rows(
        experiment3(sizes=sizes, graphs_per_size=graphs, seed=args.seed),
        "Figure 8 -- Experiment 3: normal traffic",
        include_convergence=False,
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.harness.figures import baseline_comparison
    from repro.harness.report import render_comparison

    sizes = (20, 60) if args.quick else (20, 40, 60, 80, 100)
    graphs = 2 if args.quick else 5
    rows = baseline_comparison(
        sizes=sizes, graphs_per_size=graphs, seed=args.seed, bursty=args.bursty
    )
    flavor = "bursty" if args.bursty else "sparse"
    print(render_comparison(rows, f"computations/event ({flavor} events)"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.tracer import JsonlSink, RingBufferSink, get_tracer
    from repro.topo.generators import waxman_network
    from repro.trace import build_timeline, convergence_profile, render_timeline

    tracer = get_tracer()
    jsonl_sink = None
    tracing = bool(args.export_trace or args.export_jsonl)
    if tracing:
        sinks = [RingBufferSink()]
        if args.export_jsonl:
            jsonl_sink = JsonlSink(args.export_jsonl)
            sinks.append(jsonl_sink)
        tracer.reset()
        tracer.configure(enabled=True, sinks=sinks)

    rng = random.Random(args.seed)
    net = waxman_network(args.switches, rng)
    dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
    dgmc.fabric.record_history = True
    dgmc.register_symmetric(1)
    for sw in rng.sample(range(net.n), args.members):
        dgmc.inject(JoinEvent(sw, 1), at=1.0 + rng.random())  # conflicting burst
    try:
        dgmc.run()
    finally:
        if tracing:
            tracer.enabled = False
    ok, detail = dgmc.agreement(1)
    print(f"burst of {args.members} joins on {net.n} switches; agreement: {ok}\n")
    print(render_timeline(build_timeline(dgmc, connection_id=1), limit=args.limit))
    print("\nconvergence profile (switches settled over time):")
    for t, count in convergence_profile(dgmc, 1):
        print(f"  t={t:9.4f}  {count:3d}/{net.n}")
    if args.export_trace:
        written = tracer.export_chrome(args.export_trace)
        print(f"\nwrote {written} trace events to {args.export_trace}")
    if jsonl_sink is not None:
        jsonl_sink.close()
        print(f"wrote JSONL trace to {args.export_jsonl}")
    if tracing:
        tracer.configure(enabled=False, sinks=[])
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as fh:
            fh.write(dgmc.metrics.to_prometheus())
        print(f"wrote metrics dump to {args.metrics}")
    return 0 if ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import run_profile

    breakdown = run_profile(quick=args.quick, seed=args.seed)
    print(breakdown.render())
    if breakdown.coverage < 0.9:
        print(
            f"warning: phases cover only {breakdown.coverage:.1%} "
            "of the measured wall time (expected >= 90%)"
        )
        return 1
    return 0


def _cmd_hierarchy(args: argparse.Namespace) -> int:
    from repro.hier import AreaPlan, HierDgmcNetwork
    from repro.topo.generators import clustered_network

    rng = random.Random(args.seed)
    net, assignment = clustered_network(args.areas, args.area_size, rng)
    joiners = rng.sample(range(net.n), args.members)
    config = ProtocolConfig(compute_time=0.5, per_hop_delay=0.05)

    flat = DgmcNetwork(net.copy(), config)
    flat.register_symmetric(1)
    for i, sw in enumerate(joiners):
        flat.inject(JoinEvent(sw, 1), at=50.0 * (i + 1))
    flat.run()

    plan = AreaPlan(net.copy(), assignment)
    hier = HierDgmcNetwork(plan, config)
    hier.register_symmetric(1)
    for i, sw in enumerate(joiners):
        hier.inject_join(sw, 1, at=50.0 * (i + 1))
    hier.run()

    ok, detail = hier.agreement(1)
    print(f"{args.areas} areas x {args.area_size} switches; "
          f"{args.members} members; hierarchy agreement: {ok}")
    print(f"{'':>24}{'flat':>10}{'hierarchical':>14}")
    print(f"{'LSA floodings':>24}{flat.fabric.total_floods:>10}"
          f"{hier.total_floodings():>14}")
    print(f"{'LSA deliveries':>24}{flat.fabric.delivery_count:>10}"
          f"{hier.total_lsa_deliveries():>14}")
    print(f"{'topology computations':>24}{flat.total_computations():>10}"
          f"{hier.total_computations():>14}")
    saved = 1.0 - hier.total_lsa_deliveries() / max(flat.fabric.delivery_count, 1)
    print(f"\nhierarchy scopes away {saved:.0%} of LSA deliveries")
    print(f"stitched topology spans all members: {hier.spans_members(1)}")
    return 0 if ok else 1


def _cmd_live(args: argparse.Namespace) -> int:
    import contextlib
    import os

    from repro.net.equiv import (
        check_equivalence,
        make_scenario,
        run_discrete,
        run_live,
    )
    from repro.obs.merge import export_host_traces, merge_traces
    from repro.obs.tracer import RingBufferSink, Tracer, use_tracer

    scenario = make_scenario(
        switches=args.switches, seed=args.seed, events=args.events
    )
    tracer = None
    if args.trace_dir:
        tracer = Tracer(enabled=True, process_name=f"live-s{args.seed}")
        tracer.add_sink(RingBufferSink(200_000))
    scope = (
        use_tracer(tracer) if tracer is not None else contextlib.nullcontext()
    )
    with scope:
        result = run_live(scenario, loss=args.loss, fault_seed=args.fault_seed)
    if tracer is not None:
        paths = export_host_traces(
            tracer, args.trace_dir, prefix=f"live_s{args.seed}"
        )
        for path in paths:
            print(f"wrote host trace to {path}")
        if paths:
            merged = os.path.join(
                args.trace_dir, f"live_s{args.seed}_merged_trace.json"
            )
            merge_traces(paths, out_path=merged)
            print(f"wrote merged cross-host trace to {merged}")
    print(
        f"live run: {scenario.net.n} switches over loopback UDP, "
        f"{len(scenario.timeline)} events, loss={args.loss:g}"
    )
    print(f"agreement: {result.agreed} ({result.detail})")
    print("transport counters:")
    for name, value in sorted(result.counters.items()):
        print(f"  {name} {value:g}")
    ok = result.agreed
    if args.check_equivalence:
        reference = run_discrete(scenario)
        report = check_equivalence(
            reference, result, require_identical_trees=args.loss == 0.0
        )
        print(f"equivalence vs discrete-event backend: {report.ok}")
        print(report.detail)
        ok = ok and report.ok
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as fh:
            fh.write(result.prom)
        print(f"wrote metrics dump to {args.metrics}")
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.net.chaos import ChaosSettings, run_chaos_soak_sync

    settings = ChaosSettings(
        switches=args.switches,
        seed=args.seed,
        actions=args.actions,
        loss=args.loss,
        duplicate_rate=args.duplicate_rate,
        reorder=args.reorder,
        trace_dir=args.trace_dir,
        flight_dir=args.flight_dir,
        ablate_member_stamp=args.disable_m_vector,
        frr=args.frr,
    )
    report = run_chaos_soak_sync(settings)
    for line in report.summary_lines():
        print(line)
    print("schedule: " + "; ".join(report.schedule))
    print("resync/hello counters:")
    for name, value in sorted(report.counters.items()):
        if name.startswith(("resync_", "hello_")):
            print(f"  {name} {value:g}")
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as fh:
            fh.write(report.prom)
        print(f"wrote metrics dump to {args.metrics}")
    for path in report.trace_files:
        print(f"wrote host trace to {path}")
    if report.merged_trace:
        print(f"wrote merged cross-host trace to {report.merged_trace}")
    for path in report.flight_files:
        print(f"wrote flight-recorder artifact to {path}")
    if args.expect_violation:
        if report.violations:
            print("expected violation observed "
                  f"({', '.join(sorted(set(report.violation_names)))})")
            return 0
        print("FAILED: expected a violation, none observed")
        return 1
    if not report.ok:
        for name in sorted(set(report.violation_names)) or ["agreement"]:
            print(f"FAILED invariant: {name}")
    return 0 if report.ok else 1


def _cmd_stress(args: argparse.Namespace) -> int:
    import os

    from repro.obs.attach import attach_stress_metrics
    from repro.stress import (
        Counterexample,
        StressOptions,
        describe_step,
        explore,
        replay_violates,
    )
    from repro.workloads.stress import GATE_SCENARIOS, SCENARIOS, get_scenario

    if args.list:
        for name, scenario in sorted(SCENARIOS.items()):
            print(f"{name} ({scenario.switches} switches): "
                  f"{scenario.description}")
        return 0

    overrides = {}
    if args.disable_m_vector:
        overrides["ablate_member_stamp"] = True
    if args.disable_degraded_repair:
        overrides["ablate_degraded_repair"] = True
    if args.frr:
        overrides["enable_frr"] = True

    if args.replay:
        ce = Counterexample.load(args.replay)
        scenario = get_scenario(ce.scenario)
        config = dict(ce.config)
        config.update(overrides)
        print(f"replaying {args.replay}: scenario {ce.scenario}, "
              f"{len(ce.schedule)} steps, config {config or '{}'}")
        for step in ce.schedule:
            print(f"  {describe_step(step, scenario)}")
        violated = replay_violates(
            scenario, ce.schedule, config_overrides=config,
            invariant=ce.invariant,
        )
        if violated:
            print(f"FAILED invariant: {ce.invariant}")
            return 1
        print(f"invariant {ce.invariant!r} holds under this schedule")
        return 0

    names = args.scenario or list(GATE_SCENARIOS)
    options = StressOptions(
        strategy=args.strategy,
        max_transitions=args.budget,
        max_depth=args.max_depth,
        loss_branching=args.loss_branching,
        max_drops=args.max_drops,
        max_counterexamples=args.max_counterexamples,
        minimize=not args.no_minimize,
        config_overrides=overrides,
    )
    registry = None
    failed_invariants = []
    not_exhaustive = []
    for name in names:
        scenario = get_scenario(name)
        report = explore(scenario, options)
        for line in report.summary_lines():
            print(line)
        registry = attach_stress_metrics(report, registry)
        if not report.exhaustive:
            not_exhaustive.append(name)
        for ce in report.counterexamples:
            failed_invariants.append(ce.invariant)
            if args.out:
                os.makedirs(args.out, exist_ok=True)
                slug = ce.invariant.replace("-", "_")
                path = os.path.join(args.out, f"{name}__{slug}.json")
                ce.save(path)
                print(f"wrote counterexample to {path}")
        print()
    if args.metrics and registry is not None:
        with open(args.metrics, "w", encoding="utf-8") as fh:
            fh.write(registry.to_prometheus())
        print(f"wrote metrics dump to {args.metrics}")

    if args.expect_counterexample:
        if failed_invariants:
            print(f"expected counterexample found "
                  f"({', '.join(sorted(set(failed_invariants)))})")
            return 0
        print("FAILED: expected a counterexample, none found")
        return 1
    rc = 0
    for name in sorted(set(failed_invariants)):
        print(f"FAILED invariant: {name}")
        rc = 1
    if args.require_exhaustive and not_exhaustive:
        print("FAILED exhaustiveness: budget or depth bound truncated "
              + ", ".join(not_exhaustive))
        rc = 1
    return rc


def _cmd_dataplane(args: argparse.Namespace) -> int:
    from repro.topo.generators import waxman_network
    from repro.workloads.zipf import (
        mospf_contrast,
        replay_workload,
        zipf_churn_workload,
    )

    rng = random.Random(args.seed)
    net = waxman_network(args.switches, rng)
    dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
    workload = zipf_churn_workload(
        args.switches,
        args.groups,
        rng,
        s=args.zipf_s,
        phases=args.phases,
        events_per_phase=args.events,
        batches_per_phase=args.batches,
        batch_size=args.batch_size,
        max_initial_members=args.max_members,
    )
    result = replay_workload(
        dgmc, workload, hop_delay=0.05, reference_sample=args.reference_sample
    )
    print(
        f"zipf(s={args.zipf_s:g}) workload: {args.groups} groups on "
        f"{net.n} switches, {result.events} churn events, "
        f"{result.packets} packets in {result.batches} batches"
    )
    report = result.batched_report
    print(
        f"batched engine: {result.batched_pps:>10.0f} pkt/s  "
        f"(wall {result.batched_wall_s:.3f}s, "
        f"delivery ratio {report.mean_delivery_ratio:.3f}, "
        f"{report.total_hops} hops, {report.total_duplicates} duplicates, "
        f"{report.total_ttl_drops} ttl drops)"
    )
    latencies = sorted(result.latencies())
    if latencies:
        p50 = latencies[len(latencies) // 2]
        p99 = latencies[min(len(latencies) - 1, (len(latencies) * 99) // 100)]
        print(f"delivery latency: p50={p50:.3f} p99={p99:.3f} (sim time)")
    ok = True
    if args.reference_sample:
        print(
            f"reference engine: {result.reference_pps:>8.0f} pkt/s over a "
            f"{result.reference_packets}-packet shadow sample "
            f"(speedup {result.speedup:.1f}x)"
        )
        ok = result.identical_deliveries
        print(f"deliveries identical to reference: {ok}")
        for line in result.mismatches[:5]:
            print(f"  mismatch: {line}")
    if args.mospf:
        contrast = mospf_contrast(
            net.copy(), workload, compute_time=0.5, per_hop_delay=0.05
        )
        print(
            f"MOSPF baseline: {contrast['pps']:>8.0f} pkt/s, "
            f"{contrast['tree_computations']:.0f} data-driven tree "
            f"computations ({contrast['computations_per_datagram']:.2f} "
            "per datagram; D-GMC's data plane performs zero)"
        )
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as fh:
            fh.write(dgmc.metrics.to_prometheus())
        print(f"wrote metrics dump to {args.metrics}")
    return 0 if ok else 1


def _cmd_obs_merge(args: argparse.Namespace) -> int:
    from repro.obs.merge import MergeError, merge_traces

    try:
        trace = merge_traces(args.traces, out_path=args.out)
    except (MergeError, OSError) as exc:
        print(f"merge failed: {exc}")
        return 1
    events = trace["traceEvents"]
    pids = {e.get("pid") for e in events if e.get("ph") != "M"}
    flows = sum(1 for e in events if e.get("ph") in ("s", "f"))
    print(
        f"merged {len(args.traces)} trace files: {len(events)} events "
        f"across {len(pids)} host lanes ({flows} causal flow events)"
    )
    print(f"wrote merged Chrome trace to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="D-GMC reproduction (Huang & McKinley, ICDCS 1996)",
    )
    parser.add_argument("--seed", type=int, default=1996)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="regenerate Figures 6-8")
    p.add_argument("--quick", action="store_true")
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("compare", help="D-GMC vs MOSPF vs brute-force")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--bursty", action="store_true")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("trace", help="timeline of a conflicting join burst")
    p.add_argument("--switches", type=int, default=12)
    p.add_argument("--members", type=int, default=4)
    p.add_argument("--limit", type=int, default=40)
    p.add_argument(
        "--export-trace",
        metavar="PATH",
        help="write a Chrome trace JSON (chrome://tracing, Perfetto)",
    )
    p.add_argument(
        "--export-jsonl",
        metavar="PATH",
        help="stream trace events as one JSON object per line",
    )
    p.add_argument(
        "--metrics",
        metavar="PATH",
        help="write the metrics registry as Prometheus text",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "profile", help="per-phase wall-time breakdown (SPF/flood/arbitration)"
    )
    p.add_argument("--quick", action="store_true")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("hierarchy", help="flat vs hierarchical D-GMC")
    p.add_argument("--areas", type=int, default=4)
    p.add_argument("--area-size", type=int, default=16)
    p.add_argument("--members", type=int, default=8)
    p.set_defaults(func=_cmd_hierarchy)

    p = sub.add_parser("live", help="run switches live over loopback UDP")
    p.add_argument("--switches", type=int, default=12)
    p.add_argument("--events", type=int, default=8)
    # SUPPRESS: accept --seed after the subcommand too, without the
    # subparser default clobbering an already-parsed top-level --seed.
    p.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    p.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="injected datagram loss probability (0..1)",
    )
    p.add_argument(
        "--fault-seed",
        type=int,
        default=7,
        help="seed of the fault injector's RNG stream",
    )
    p.add_argument(
        "--check-equivalence",
        action="store_true",
        help="also run the discrete-event backend and compare final trees",
    )
    p.add_argument(
        "--metrics",
        metavar="PATH",
        help="write the transport's metrics registry as Prometheus text",
    )
    p.add_argument(
        "--trace-dir",
        metavar="DIR",
        help="enable causal tracing; write per-host JSONL traces plus a "
        "merged cross-host Chrome trace into this directory",
    )
    p.set_defaults(func=_cmd_live)

    p = sub.add_parser(
        "chaos", help="seeded crash/partition/churn soak on the live backend"
    )
    p.add_argument("--switches", type=int, default=12)
    p.add_argument(
        "--actions",
        type=int,
        default=20,
        help="scheduled fault/churn actions (cleanup actions come on top)",
    )
    p.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    p.add_argument(
        "--loss",
        type=float,
        default=0.10,
        help="injected datagram loss probability (0..1)",
    )
    p.add_argument(
        "--duplicate-rate",
        type=float,
        default=0.02,
        help="injected datagram duplication probability (0..1)",
    )
    p.add_argument(
        "--reorder",
        type=float,
        default=0.0,
        help="probability a frame is held back ~50ms so later frames "
        "overtake it (0..1; the race actions' reordering dial)",
    )
    p.add_argument(
        "--metrics",
        metavar="PATH",
        help="write the fabric's metrics registry as Prometheus text",
    )
    p.add_argument(
        "--trace-dir",
        metavar="DIR",
        help="enable causal tracing; write per-host JSONL traces plus a "
        "merged cross-host Chrome trace into this directory",
    )
    p.add_argument(
        "--flight-dir",
        metavar="DIR",
        help="arm the flight recorder; invariant violations dump "
        "FLIGHT_*.json artifacts into this directory",
    )
    p.add_argument(
        "--disable-m-vector",
        action="store_true",
        help="ablate the membership-ordering vector M (deliberately "
        "broken protocol; pairs with --expect-violation)",
    )
    p.add_argument(
        "--frr",
        action="store_true",
        help="enable fast reroute: precomputed backup fragments activate "
        "on local failure detection and reconcile on repair install",
    )
    p.add_argument(
        "--expect-violation",
        action="store_true",
        help="invert the exit code: succeed only if the soak violated an "
        "invariant",
    )
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "stress",
        help="systematic state-space exploration of arbitration schedules",
    )
    p.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="scenario to explore (repeatable; default: the CI gate set)",
    )
    p.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    p.add_argument(
        "--strategy",
        choices=("dfs", "bfs", "guided"),
        default="dfs",
        help="exploration order (dfs/bfs exhaust, guided chases violations)",
    )
    p.add_argument(
        "--budget",
        type=int,
        default=250_000,
        help="max state transitions (replays included) per scenario",
    )
    p.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="truncate schedules beyond this many steps",
    )
    p.add_argument(
        "--loss-branching",
        action="store_true",
        help="also branch on dropping each pending LSA",
    )
    p.add_argument(
        "--max-drops",
        type=int,
        default=1,
        help="max LSAs dropped along one schedule (with --loss-branching)",
    )
    p.add_argument(
        "--max-counterexamples",
        type=int,
        default=1,
        help="stop a scenario after this many counterexamples",
    )
    p.add_argument(
        "--no-minimize",
        action="store_true",
        help="keep counterexample schedules as found (skip 1-minimization)",
    )
    p.add_argument(
        "--disable-m-vector",
        action="store_true",
        help="ablate the membership-ordering vector M (should break)",
    )
    p.add_argument(
        "--disable-degraded-repair",
        action="store_true",
        help="ablate degraded-tree repair on link-up (should break)",
    )
    p.add_argument(
        "--frr",
        action="store_true",
        help="explore with fast reroute enabled (backup-fragment state "
        "is canonically invisible, so the state space must match)",
    )
    p.add_argument(
        "--out",
        metavar="DIR",
        help="write minimized counterexamples as JSON into this directory",
    )
    p.add_argument(
        "--metrics",
        metavar="PATH",
        help="write exploration counters as Prometheus text",
    )
    p.add_argument(
        "--replay",
        metavar="PATH",
        help="replay a counterexample JSON instead of exploring",
    )
    p.add_argument(
        "--expect-counterexample",
        action="store_true",
        help="invert the exit code: succeed only if a violation was found",
    )
    p.add_argument(
        "--require-exhaustive",
        action="store_true",
        help="fail unless every scenario's state space was exhausted",
    )
    p.set_defaults(func=_cmd_stress)

    p = sub.add_parser(
        "dataplane",
        help="batched Zipf traffic through compiled forwarding state",
    )
    p.add_argument("--switches", type=int, default=30)
    p.add_argument("--groups", type=int, default=100)
    p.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    p.add_argument(
        "--zipf-s",
        type=float,
        default=1.1,
        help="Zipf popularity exponent across group ranks",
    )
    p.add_argument("--phases", type=int, default=2, help="churn phases")
    p.add_argument(
        "--events", type=int, default=16, help="churn events per phase"
    )
    p.add_argument(
        "--batches", type=int, default=2, help="traffic batches per phase"
    )
    p.add_argument(
        "--batch-size", type=int, default=256, help="packets per batch"
    )
    p.add_argument(
        "--max-members",
        type=int,
        default=12,
        help="initial member count of the most popular group",
    )
    p.add_argument(
        "--reference-sample",
        type=int,
        default=64,
        help="packets to shadow through the reference engine for the "
        "delivery-equivalence check (0 disables; exit code reflects it)",
    )
    p.add_argument(
        "--mospf",
        action="store_true",
        help="also replay the workload through the MOSPF baseline",
    )
    p.add_argument(
        "--metrics",
        metavar="PATH",
        help="write the deployment's metrics registry as Prometheus text",
    )
    p.set_defaults(func=_cmd_dataplane)

    p = sub.add_parser(
        "obs", help="observability artifact tools (trace merge)"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    m = obs_sub.add_parser(
        "merge",
        help="fuse per-host JSONL traces into one cross-host Chrome trace",
    )
    m.add_argument(
        "traces",
        nargs="+",
        metavar="JSONL",
        help="per-host JSONL trace files (clock_sync metadata aligns them)",
    )
    m.add_argument(
        "--out",
        required=True,
        metavar="PATH",
        help="path of the merged Chrome trace JSON",
    )
    m.set_defaults(func=_cmd_obs_merge)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
