"""repro: a reproduction of the D-GMC multipoint-connection protocol.

Implements Huang & McKinley, *A Lightweight Protocol for Multipoint
Connections under Link-State Routing* (ICDCS 1996), together with every
substrate the paper depends on: a process-oriented discrete-event
simulation kernel (:mod:`repro.sim`), a network/topology model
(:mod:`repro.topo`), an OSPF-like link-state unicast substrate
(:mod:`repro.lsr`), multicast tree algorithms (:mod:`repro.trees`), the
D-GMC protocol itself (:mod:`repro.core`), the MOSPF / brute-force / CBT
baselines (:mod:`repro.baselines`), workload generators
(:mod:`repro.workloads`), metrics (:mod:`repro.metrics`), and the
experiment harness that regenerates the paper's figures
(:mod:`repro.harness`).

Quickstart::

    import random
    from repro import DgmcNetwork, ProtocolConfig, JoinEvent
    from repro.topo import waxman_network

    net = waxman_network(30, random.Random(7))
    dgmc = DgmcNetwork(net, ProtocolConfig(compute_time=0.5, per_hop_delay=0.05))
    dgmc.register_symmetric(1)
    dgmc.inject(JoinEvent(3, 1), at=1.0)
    dgmc.inject(JoinEvent(11, 1), at=2.0)
    dgmc.run()
    assert dgmc.agreement(1)[0]
"""

from repro.core import (
    ConnectionSpec,
    ConnectionType,
    DgmcNetwork,
    DgmcSwitch,
    JoinEvent,
    LeaveEvent,
    LinkEvent,
    McLsa,
    McEvent,
    McState,
    NodeEvent,
    ProtocolConfig,
    Role,
    VectorTimestamp,
)
from repro.topo import Network
from repro.verify import VerificationError, verify_deployment

__version__ = "1.0.0"

__all__ = [
    "DgmcNetwork",
    "DgmcSwitch",
    "ProtocolConfig",
    "ConnectionSpec",
    "ConnectionType",
    "Role",
    "JoinEvent",
    "LeaveEvent",
    "LinkEvent",
    "NodeEvent",
    "McLsa",
    "McEvent",
    "McState",
    "VectorTimestamp",
    "Network",
    "verify_deployment",
    "VerificationError",
    "__version__",
]
