"""Shortest-path-first computations over an adjacency view.

All functions take an *adjacency mapping* ``{node: {neighbor: weight}}``
(what :meth:`repro.lsr.lsdb.LinkStateDatabase.adjacency` and
:meth:`repro.topo.graph.Network` views produce), keeping the algorithms
independent of the concrete graph container.  Ties are broken by node id so
every switch computing on the same image derives the *same* tree -- a
property both OSPF and the D-GMC protocol rely on.

When the adjacency is a :class:`~repro.lsr.spfcache.SpfCache` (the wrapped
images the LSDB and the Network hand out), every function delegates to the
cache's memoized results, so repeated computations on one network image
run Dijkstra once.  Plain mappings take the uncached path, byte-identical
in output to the cached one.
"""

from __future__ import annotations

import heapq
from typing import Dict, Mapping, Optional

from repro.obs import tracer as obs_tracer
from repro.obs.metrics import REGISTRY as _GLOBAL_REGISTRY


Adjacency = Mapping[int, Mapping[int, float]]


class RunCounter:
    """Process-wide count of full Dijkstra executions (cached misses and
    uncached calls alike); ``benchmarks/regress.py`` diffs it per trial."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def reset(self) -> int:
        previous = self.count
        self.count = 0
        return previous


RUN_COUNTER = RunCounter()

#: Process-wide count of edge relaxations (edges examined), by full runs
#: and by :mod:`repro.lsr.ispf` repairs alike.  This is the unit in which
#: the bench gate verifies that incremental SPF does strictly less work
#: than recomputing from scratch.
RELAX_COUNTER = RunCounter()

#: Process-wide count of first-hop propagation steps spent deriving
#: routing tables.  One step per destination: tables are built by a
#: single pass in nondecreasing-distance order (each destination
#: inherits its parent's first hop), so the total is O(n) per table --
#: the regression suite pins this, guarding against reintroducing the
#: per-destination parent-chain walk that was quadratic on path-like
#: graphs.
TABLE_STEP_COUNTER = RunCounter()


@_GLOBAL_REGISTRY.register_collector
def _collect_dijkstra_runs(reg) -> None:
    reg.counter(
        "spf_dijkstra_runs_total",
        "process-wide full Dijkstra executions (cached misses and uncached calls)",
    ).set_total(RUN_COUNTER.count)
    reg.counter(
        "spf_relaxations_total",
        "process-wide edge relaxations, by full Dijkstra runs and ISPF repairs",
    ).set_total(RELAX_COUNTER.count)


def network_adjacency(net, include_down: bool = False) -> Dict[int, Dict[int, float]]:
    """Build a fresh, plain adjacency mapping (delays as weights) from a
    Network.  For a memoizing view, use :meth:`Network.spf_view` instead."""
    adj: Dict[int, Dict[int, float]] = {x: {} for x in net.switches()}
    for link in net.links(include_down=include_down):
        adj[link.u][link.v] = link.delay
        adj[link.v][link.u] = link.delay
    return adj


def dijkstra(
    adj: Adjacency, source: int
) -> tuple[Dict[int, float], Dict[int, Optional[int]]]:
    """Single-source shortest paths.

    Returns ``(dist, parent)``; unreachable nodes appear in neither map.
    ``parent[source] is None``.  Equal-cost paths are resolved toward the
    lower parent id, deterministically.  Cached adjacencies return their
    memoized result; treat it as immutable.
    """
    sssp = getattr(adj, "sssp", None)
    if sssp is not None:
        return sssp(source)
    return dijkstra_uncached(adj, source)


def dijkstra_uncached(
    adj: Adjacency, source: int
) -> tuple[Dict[int, float], Dict[int, Optional[int]]]:
    """The raw Dijkstra run (no memoization); counts into RUN_COUNTER.

    When tracing is enabled, each run is a ``dijkstra`` span (category
    ``spf``) -- the SPF slice of the ``repro profile`` phase breakdown.
    """
    RUN_COUNTER.count += 1
    tracer = obs_tracer.TRACER
    if not tracer.enabled:
        return _dijkstra_body(adj, source)
    with tracer.span("dijkstra", cat="spf", source=source, nodes=len(adj)):
        return _dijkstra_body(adj, source)


def _dijkstra_body(
    adj: Adjacency, source: int
) -> tuple[Dict[int, float], Dict[int, Optional[int]]]:
    dist: Dict[int, float] = {}
    parent: Dict[int, Optional[int]] = {}
    relaxed = 0
    # Heap entries: (distance, tie-break parent id, node, parent).
    heap: list[tuple[float, int, int, Optional[int]]] = [(0.0, -1, source, None)]
    while heap:
        d, _, node, via = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        parent[node] = via
        nbrs = adj.get(node, {})
        relaxed += len(nbrs)
        for nbr, w in nbrs.items():
            if nbr not in dist:
                heapq.heappush(heap, (d + w, node, nbr, node))
    RELAX_COUNTER.count += relaxed
    return dist, parent


def dijkstra_csr(graph, source: int):
    """One full SSSP on a compiled :class:`repro.lsr.csr.CsrGraph`.

    Returns the solved :class:`~repro.lsr.csr.CsrTree` (flat arrays; the
    dict views materialize lazily).  Counts and traces exactly like
    :func:`dijkstra_uncached` -- one RUN_COUNTER tick, the settled
    nodes' live out-degrees into RELAX_COUNTER, one ``dijkstra`` span --
    so profiles and the bench counter baselines are backend-agnostic.
    """
    RUN_COUNTER.count += 1
    tracer = obs_tracer.TRACER
    if not tracer.enabled:
        return graph.tree(source)
    with tracer.span("dijkstra", cat="spf", source=source, nodes=graph.n):
        return graph.tree(source)


def dijkstra_csr_many(graph, sources):
    """Batched :func:`dijkstra_csr`: one C solve covering all sources."""
    RUN_COUNTER.count += len(sources)
    tracer = obs_tracer.TRACER
    if not tracer.enabled:
        return graph.trees(sources)
    with tracer.span(
        "dijkstra", cat="spf", sources=len(sources), nodes=graph.n
    ):
        return graph.trees(sources)


def shortest_path(adj: Adjacency, source: int, target: int) -> Optional[list[int]]:
    """Node list of the shortest path, or ``None`` if unreachable.

    On a cached adjacency, repeated queries from one source reuse a single
    SSSP solve instead of re-running Dijkstra per ``(source, target)``.
    """
    cached = getattr(adj, "shortest_path", None)
    if cached is not None:
        return cached(source, target)
    dist, parent = dijkstra(adj, source)
    if target not in dist:
        return None
    path = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])  # type: ignore[arg-type]
    path.reverse()
    return path


def path_edges(path: list[int]) -> list[tuple[int, int]]:
    """Canonical (sorted-endpoint) edge list of a node path."""
    return [tuple(sorted((path[i], path[i + 1]))) for i in range(len(path) - 1)]


def next_hop_dag(adj: Adjacency, source: int) -> Dict[int, tuple]:
    """Per-destination next-hop DAG from ``source`` (mDT-style multipath).

    For every reachable destination ``d`` the value is the sorted tuple of
    neighbors ``n`` of ``source`` that are safe first hops toward ``d``:

    * **ECMP**: ``dist_s[d] == w(s, n) + dist_n[d]`` -- ``n`` lies on a
      shortest path, so all equal-cost parallels are kept, not just the
      lowest-parent-id one the Dijkstra tie-break picks;
    * **LFA**: ``dist_n[d] < dist_s[d]`` -- the downstream criterion; the
      neighbor is strictly closer to ``d`` than ``source`` is, so routing
      via ``n`` can never loop back through ``source``.

    The union over all destinations is loop-free per destination (every
    hop strictly decreases the remaining distance bound), which is what
    lets :mod:`repro.frr` pick a detour first hop without re-running SPF.
    Cached adjacencies return their memoized DAG; the per-neighbor SSSP
    solves it needs are exactly the ones :meth:`SpfCache.sssp` already
    memoizes, so on one image the marginal cost is one solve per neighbor.
    """
    cached = getattr(adj, "dag", None)
    if cached is not None:
        return cached(source)
    return dag_body(adj, source)


def dag_body(adj: Adjacency, source: int) -> Dict[int, tuple]:
    """The uncached next-hop DAG computation (see :func:`next_hop_dag`)."""
    dist_s, _ = dijkstra(adj, source)
    neighbors = sorted(adj.get(source, {}).items())
    neighbor_dist = {n: dijkstra(adj, n)[0] for n, _ in neighbors}
    dag: Dict[int, tuple] = {}
    for dest in sorted(dist_s):
        if dest == source:
            continue
        hops = []
        for n, w in neighbors:
            dn = neighbor_dist[n].get(dest)
            if dn is None:
                continue
            if dist_s[dest] == w + dn or dn < dist_s[dest]:
                hops.append(n)
        dag[dest] = tuple(hops)
    return dag


def first_hop_table(
    source: int, dist: Dict[int, float], parent: Dict[int, Optional[int]]
) -> Dict[int, int]:
    """Destination -> first hop, in one pass over a solved SSSP tree.

    Destinations are processed in nondecreasing distance; a parent
    settles strictly before its children (weights are positive), so each
    destination either touches the source directly or inherits its
    parent's already-known first hop.  Total work is O(n log n) for the
    sort plus one :data:`TABLE_STEP_COUNTER` step per destination --
    the old per-destination walk to the source was O(n * depth),
    quadratic on path-like graphs.  The table iterates in ``dist``
    iteration order, byte-identical to the walk it replaced.
    """
    first: Dict[int, int] = {}
    steps = 0
    for dest in sorted(dist, key=dist.__getitem__):
        via = parent.get(dest)
        if via is None:  # the source itself
            continue
        steps += 1
        first[dest] = dest if via == source else first[via]
    TABLE_STEP_COUNTER.count += steps
    return {dest: first[dest] for dest in dist if dest != source}


def routing_table(adj: Adjacency, source: int) -> Dict[int, int]:
    """OSPF-style next-hop table: destination -> first hop from ``source``."""
    cached = getattr(adj, "routing_table", None)
    if cached is not None:
        return cached(source)
    dist, parent = dijkstra(adj, source)
    return first_hop_table(source, dist, parent)


def eccentricity(adj: Adjacency, node: int) -> float:
    """Largest shortest-path distance from ``node`` to any reachable node."""
    cached = getattr(adj, "eccentricity", None)
    if cached is not None:
        return cached(node)
    dist, _ = dijkstra(adj, node)
    return max(dist.values()) if dist else 0.0
