"""Link-state routing (LSR) substrate: the paper's "underlying unicast protocol".

An OSPF-like unicast protocol, built from scratch:

* :mod:`repro.lsr.lsa` -- router LSAs describing a switch's incident links,
* :mod:`repro.lsr.lsdb` -- per-switch link-state database and network image,
* :mod:`repro.lsr.spf` -- Dijkstra shortest-path-first computations,
* :mod:`repro.lsr.ispf` -- incremental SPF repair after single-link deltas,
* :mod:`repro.lsr.spfcache` -- generation-keyed memoization of SPF results,
* :mod:`repro.lsr.flooding` -- the simulated hop-by-hop flooding fabric,
* :mod:`repro.lsr.router` -- the unicast router entity at each switch.

The D-GMC protocol (``repro.core``) rides on this substrate: its MC LSAs
are flooded through the same fabric, and its topology computations run on
the network image assembled here.
"""

from repro.lsr.lsa import NonMcLsa, RouterLsa
from repro.lsr.lsdb import LinkStateDatabase
from repro.lsr.spf import dijkstra, routing_table, shortest_path
from repro.lsr.ispf import MAX_REPAIR_CHAIN, LinkDelta, repair_sssp
from repro.lsr.csr import CsrGraph, CsrTree
from repro.lsr.spfcache import CacheStats, SpfCache
from repro.lsr.flooding import FloodDelivery, FloodingFabric
from repro.lsr.router import UnicastRouter

__all__ = [
    "RouterLsa",
    "NonMcLsa",
    "LinkStateDatabase",
    "dijkstra",
    "shortest_path",
    "routing_table",
    "LinkDelta",
    "MAX_REPAIR_CHAIN",
    "repair_sssp",
    "CsrGraph",
    "CsrTree",
    "SpfCache",
    "CacheStats",
    "FloodingFabric",
    "FloodDelivery",
    "UnicastRouter",
]
