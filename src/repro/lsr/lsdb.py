"""Per-switch link-state database and the derived network image.

Every switch stores the newest :class:`~repro.lsr.lsa.RouterLsa` from each
origin.  The *network image* -- the complete local picture of the network
that LSR gives every switch, and that D-GMC topology computations run on --
is derived from the database with OSPF's two-way check: a link is part of
the image only when **both** endpoints currently advertise it as up.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.lsr.lsa import RouterLsa
from repro.lsr.spfcache import CacheStats, count_invalidation, wrap_image


class LinkStateDatabase:
    """Newest-LSA-per-origin store with a cached adjacency image.

    The image is handed out as a :class:`~repro.lsr.spfcache.SpfCache`
    snapshot keyed by the install generation: every accepted LSA install
    discards the snapshot (and its memoized SPF results) and the next
    :meth:`adjacency` call builds a fresh one.  ``spf_stats`` accumulates
    hit/miss/invalidation counters across generations.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self._entries: Dict[int, RouterLsa] = {}
        self._image: Optional[Mapping[int, Dict[int, float]]] = None
        #: Count of accepted (newer) installs, for diagnostics.  Doubles as
        #: the SPF cache generation: each install starts a new image.
        self.installs = 0
        #: SPF cache counters, shared by every image generation of this db.
        self.spf_stats = CacheStats()

    def install(self, lsa: RouterLsa) -> bool:
        """Install ``lsa`` if it is newer than the stored one; return whether."""
        current = self._entries.get(lsa.origin)
        if current is not None and not lsa.is_newer_than(current):
            return False
        self._entries[lsa.origin] = lsa
        if self._image is not None:
            self._image = None
            count_invalidation(self.spf_stats)
        self.installs += 1
        return True

    def get(self, origin: int) -> Optional[RouterLsa]:
        return self._entries.get(origin)

    def headers(self) -> Dict[int, int]:
        """The database summary: ``{origin: seqnum}`` of every stored LSA.

        This is the payload of a database-description (DBD) frame in the
        neighbor resync protocol -- headers are enough for both sides to
        compute exactly which full LSAs the other is missing.
        """
        return {origin: lsa.seqnum for origin, lsa in self._entries.items()}

    def entries(self) -> Dict[int, RouterLsa]:
        """Snapshot of the stored LSAs by origin (do not mutate the LSAs)."""
        return dict(self._entries)

    def complete(self) -> bool:
        """True when the database holds an LSA from every switch."""
        return len(self._entries) == self.n

    def adjacency(self) -> Mapping[int, Dict[int, float]]:
        """The network image as ``{node: {neighbor: delay}}``.

        A link appears iff both endpoints advertise it up; the delay is the
        mean of the two advertised values (they normally agree).  The
        returned mapping is an SPF-memoizing snapshot (see module
        docstring); treat it as immutable.
        """
        if self._image is not None:
            return self._image
        adj: Dict[int, Dict[int, float]] = {x: {} for x in range(self.n)}
        for origin, lsa in self._entries.items():
            for nbr, delay, up in lsa.links:
                if not up:
                    continue
                peer = self._entries.get(nbr)
                if peer is None:
                    continue
                back = peer.link_map().get(origin)
                if back is None or not back[1]:
                    continue
                adj[origin][nbr] = (delay + back[0]) / 2.0
        self._image = wrap_image(adj, stats=self.spf_stats, generation=self.installs)
        return self._image

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LinkStateDatabase(n={self.n}, origins={len(self._entries)})"
