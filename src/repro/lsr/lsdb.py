"""Per-switch link-state database and the derived network image.

Every switch stores the newest :class:`~repro.lsr.lsa.RouterLsa` from each
origin.  The *network image* -- the complete local picture of the network
that LSR gives every switch, and that D-GMC topology computations run on --
is derived from the database with OSPF's two-way check: a link is part of
the image only when **both** endpoints currently advertise it as up.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.lsr.ispf import MAX_REPAIR_CHAIN, LinkDelta
from repro.lsr.lsa import RouterLsa
from repro.lsr.spfcache import CacheStats, count_invalidation, wrap_image

#: Longest delta sequence worth replaying through incremental SPF; past
#: this, a full Dijkstra is cheaper than the chain of repairs.  Shared
#: with the cache-side repair horizon (see
#: :data:`repro.lsr.ispf.MAX_REPAIR_CHAIN`): tracking more deltas than
#: the cache replays would silently drop them past the horizon.
_MAX_PENDING_DELTAS = MAX_REPAIR_CHAIN


class LinkStateDatabase:
    """Newest-LSA-per-origin store with a cached adjacency image.

    The image is handed out as a :class:`~repro.lsr.spfcache.SpfCache`
    snapshot keyed by the install generation: every accepted LSA install
    discards the snapshot (and its memoized SPF results) and the next
    :meth:`adjacency` call builds a fresh one.  ``spf_stats`` accumulates
    hit/miss/invalidation counters across generations.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self._entries: Dict[int, RouterLsa] = {}
        self._image: Optional[Mapping[int, Dict[int, float]]] = None
        #: Count of accepted (newer) installs, for diagnostics.  Doubles as
        #: the SPF cache generation: each install starts a new image.
        self.installs = 0
        #: SPF cache counters, shared by every image generation of this db.
        self.spf_stats = CacheStats()
        #: The superseded image (when one existed at invalidation time) and
        #: the ordered link deltas leading from it to the next image --
        #: possibly several, when multiple installs land between rebuilds.
        #: Threaded into the next :func:`wrap_image` so incremental SPF can
        #: repair the old generation's trees instead of recomputing them;
        #: ``None`` means the combined change is too large to track.
        self._prev_image: Optional[Mapping[int, Dict[int, float]]] = None
        self._pending_delta: Optional[Tuple[LinkDelta, ...]] = None
        #: Whether the most recent accepted install affected the image
        #: (False only for content-identical refreshes detected against a
        #: live image); consumers may keep image-derived state when False.
        self.last_install_changed_image = True

    def install(self, lsa: RouterLsa) -> bool:
        """Install ``lsa`` if it is newer than the stored one; return whether.

        An accepted install whose link content matches the stored LSA (a
        pure seqnum refresh) keeps the current image -- and its memoized
        SPF results -- valid.  Link changes (from this and any further
        installs before the next rebuild) accumulate as an ordered delta
        sequence for the next image generation; past
        :data:`_MAX_PENDING_DELTAS` changes the sequence degrades to the
        old discard-everything behavior.
        """
        current = self._entries.get(lsa.origin)
        if current is not None and not lsa.is_newer_than(current):
            return False
        changes: Optional[Tuple[LinkDelta, ...]] = None
        if self._image is not None or self._prev_image is not None:
            changes = self._image_delta(current, lsa)
        self._entries[lsa.origin] = lsa
        self.installs += 1
        self.last_install_changed_image = changes != ()
        if self._image is not None:
            if changes == ():
                return True
            self._prev_image = self._image
            self._image = None
            self._pending_delta = (
                changes
                if changes is not None
                and len(changes) <= _MAX_PENDING_DELTAS
                else None
            )
            count_invalidation(self.spf_stats)
        elif self._prev_image is not None and changes:
            # Further image-affecting installs before the rebuild extend
            # the sequence (incremental SPF replays it in order).
            if self._pending_delta is not None:
                combined = self._pending_delta + changes
                self._pending_delta = (
                    combined if len(combined) <= _MAX_PENDING_DELTAS else None
                )
        return True

    def _lsa_edges(self, origin: int, lsa: Optional[RouterLsa]) -> Dict[int, float]:
        """Image edges incident to ``origin`` if ``lsa`` were its entry.

        Applies the same two-way check and mean-delay rule as
        :meth:`adjacency`, against the *current* peer entries.
        """
        edges: Dict[int, float] = {}
        if lsa is None:
            return edges
        for nbr, delay, up in lsa.links:
            if not up:
                continue
            peer = self._entries.get(nbr)
            if peer is None:
                continue
            back = peer.link_map().get(origin)
            if back is None or not back[1]:
                continue
            edges[nbr] = (delay + back[0]) / 2.0
        return edges

    def _image_delta(
        self, old: Optional[RouterLsa], new: RouterLsa
    ) -> Tuple[LinkDelta, ...]:
        """Image edge changes caused by replacing ``old`` with ``new``.

        An install only touches edges incident to the LSA's origin (the
        two-way check consults peers, but peers are unchanged), so diffing
        the origin's effective edge sets captures the whole image delta.
        """
        before = self._lsa_edges(new.origin, old)
        after = self._lsa_edges(new.origin, new)
        changes = []
        for nbr in sorted(set(before) | set(after)):
            old_w = before.get(nbr)
            new_w = after.get(nbr)
            if old_w != new_w:
                changes.append((new.origin, nbr, old_w, new_w))
        return tuple(changes)

    def get(self, origin: int) -> Optional[RouterLsa]:
        return self._entries.get(origin)

    def headers(self) -> Dict[int, int]:
        """The database summary: ``{origin: seqnum}`` of every stored LSA.

        This is the payload of a database-description (DBD) frame in the
        neighbor resync protocol -- headers are enough for both sides to
        compute exactly which full LSAs the other is missing.
        """
        return {origin: lsa.seqnum for origin, lsa in self._entries.items()}

    def entries(self) -> Dict[int, RouterLsa]:
        """Snapshot of the stored LSAs by origin (do not mutate the LSAs)."""
        return dict(self._entries)

    def complete(self) -> bool:
        """True when the database holds an LSA from every switch."""
        return len(self._entries) == self.n

    def adjacency(self) -> Mapping[int, Dict[int, float]]:
        """The network image as ``{node: {neighbor: delay}}``.

        A link appears iff both endpoints advertise it up; the delay is the
        mean of the two advertised values (they normally agree).  The
        returned mapping is an SPF-memoizing snapshot (see module
        docstring); treat it as immutable.
        """
        if self._image is not None:
            return self._image
        adj: Dict[int, Dict[int, float]] = {x: {} for x in range(self.n)}
        for origin, lsa in self._entries.items():
            for nbr, delay, up in lsa.links:
                if not up:
                    continue
                peer = self._entries.get(nbr)
                if peer is None:
                    continue
                back = peer.link_map().get(origin)
                if back is None or not back[1]:
                    continue
                adj[origin][nbr] = (delay + back[0]) / 2.0
        self._image = wrap_image(
            adj,
            stats=self.spf_stats,
            generation=self.installs,
            prev=self._prev_image,
            delta=self._pending_delta,
        )
        self._prev_image = None
        self._pending_delta = None
        return self._image

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LinkStateDatabase(n={self.n}, origins={len(self._entries)})"
