"""Incremental SPF: repair a ``(dist, parent)`` tree after one link delta.

Link-state routers do not re-run Dijkstra from scratch on every LSA.
After a *single* link change they recompute only the affected subtree --
the mDT line of work (see PAPERS.md) and OSPF's iSPF both rest on the
observation that a one-edge delta leaves most of the shortest-path tree
untouched.  This module implements that repair for the canonical trees
produced by :func:`repro.lsr.spf.dijkstra_uncached`:

* unreachable nodes appear in neither map,
* ``parent[source] is None``,
* ties resolve toward the **lowest parent id** -- for every non-source
  reachable node ``x``, ``parent[x] = min{y : dist[y] + w(y, x) == dist[x]}``.

That canonical form is what makes local repair exact: after the distance
update, the correct parent of any node is recomputable from its own
neighborhood alone, so repaired results are byte-identical to a fresh
full run (``benchmarks/regress.py --mode ispf`` and the Hypothesis suite
in ``tests/test_ispf.py`` gate exactly that).

A *weight-decrease* (or link-up) can only shorten distances: a seeded
Dijkstra from the improved endpoints relaxes the strictly-improved
region, then parents are re-canonicalized over that region, its
neighbors, and the delta endpoints (a tie can move a parent without
moving any distance).  A *weight-increase* (or link-down) can only
lengthen distances, and only for nodes whose every shortest path used
the stretched edge -- all of which live in the canonical subtree below
it.  If the edge is not a canonical tree edge, nothing changes at all;
otherwise the subtree is detached and re-attached by a Dijkstra
restricted to it, seeded from the best frontier outside.

Edge relaxations (edges examined) are counted into
:data:`repro.lsr.spf.RELAX_COUNTER`, the currency in which the bench
gate verifies the >= 2x win over full recomputation.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.lsr import spf
from repro.obs import tracer as obs_tracer

Adjacency = Mapping[int, Mapping[int, float]]

#: One image change ``(u, v, old_weight, new_weight)``.  ``None`` on a side
#: means the edge is absent before/after the transition; ``(w, w)`` is a
#: recorded event that left the view unchanged (e.g. a down-link flap seen
#: through an include-down view).
LinkDelta = Tuple[int, int, Optional[float], Optional[float]]

#: Longest delta sequence worth carrying through incremental SPF; past
#: this, a full Dijkstra is cheaper than the chain of repairs.  This is
#: **one** constant shared by both ends of the pipeline: producers
#: (:class:`repro.lsr.lsdb.LinkStateDatabase`) cap how many pending
#: deltas they accumulate between image rebuilds, and the consumer
#: (:class:`repro.lsr.spfcache.SpfCache`) caps how many superseded
#: generations it keeps repairable.  They must agree -- with two
#: independently defined caps, a producer tracking more deltas than the
#: cache replays silently drops the excess past the repair horizon (the
#: historical bug), or tracks fewer and wastes repairable history.
MAX_REPAIR_CHAIN = 8

SsspResult = Tuple[Dict[int, float], Dict[int, Optional[int]]]


def repair_sssp(
    adj: Adjacency,
    source: int,
    dist_old: Dict[int, float],
    parent_old: Dict[int, Optional[int]],
    delta: LinkDelta,
) -> Optional[SsspResult]:
    """Repair one source's tree onto the post-delta adjacency ``adj``.

    ``dist_old`` / ``parent_old`` are the canonical results on the
    pre-delta image; ``adj`` must already reflect ``delta``.  Returns a
    ``(dist, parent)`` pair byte-identical to
    ``dijkstra_uncached(adj, source)`` -- possibly the *same* objects when
    nothing changed, so callers must keep treating results as immutable --
    or ``None`` when the inputs are inconsistent and the caller should
    fall back to a full run.
    """
    u, v, old_w, new_w = delta
    if old_w == new_w:
        return dist_old, parent_old
    tracer = obs_tracer.TRACER
    if not tracer.enabled:
        return _repair_body(adj, source, dist_old, parent_old, u, v, old_w, new_w)
    with tracer.span("ispf_repair", cat="spf", source=source, nodes=len(adj)):
        return _repair_body(adj, source, dist_old, parent_old, u, v, old_w, new_w)


def repair_sssp_chain(
    adj: Adjacency,
    source: int,
    dist_old: Dict[int, float],
    parent_old: Dict[int, Optional[int]],
    deltas: Tuple[LinkDelta, ...],
) -> Optional[SsspResult]:
    """Repair one source's tree through a *sequence* of link deltas.

    ``adj`` is the adjacency after **all** of ``deltas`` (in order); the
    intermediate adjacencies are reconstructed by reverting the later
    deltas one edge at a time, so each single-link repair sees exactly
    the image it transformed.  This is what lets an LSDB that absorbed
    several installs between image rebuilds still repair instead of
    recomputing.
    """
    if not deltas:
        return dist_old, parent_old
    if len(deltas) == 1:
        return repair_sssp(adj, source, dist_old, parent_old, deltas[0])
    # states[i] is the adjacency after deltas[:i+1]; walk backward from
    # the final image, undoing one delta per step.
    states: List[Adjacency] = [adj]
    current = adj
    for u, v, old_w, _ in reversed(deltas[1:]):
        current = _with_edge(current, u, v, old_w)
        states.append(current)
    states.reverse()
    dist, parent = dist_old, parent_old
    for state, delta in zip(states, deltas):
        repaired = repair_sssp(state, source, dist, parent, delta)
        if repaired is None:  # pragma: no cover - inconsistent chain
            return None
        dist, parent = repaired
    return dist, parent


def _with_edge(
    adj: Adjacency, u: int, v: int, w: Optional[float]
) -> Adjacency:
    """Copy of ``adj`` with the undirected edge ``u--v`` set to ``w``
    (removed when ``w`` is None).  Only the two touched rows are copied."""
    out: Dict[int, Mapping[int, float]] = dict(adj)
    for a, b in ((u, v), (v, u)):
        row = dict(out.get(a, {}))
        if w is None:
            row.pop(b, None)
        else:
            row[b] = w
        out[a] = row
    return out


def _repair_body(
    adj: Adjacency,
    source: int,
    dist_old: Dict[int, float],
    parent_old: Dict[int, Optional[int]],
    u: int,
    v: int,
    old_w: Optional[float],
    new_w: Optional[float],
) -> Optional[SsspResult]:
    if new_w is not None and (old_w is None or new_w < old_w):
        return _repair_decrease(adj, source, dist_old, parent_old, u, v, new_w)
    return _repair_increase(adj, source, dist_old, parent_old, u, v)


def _repair_decrease(
    adj: Adjacency,
    source: int,
    dist_old: Dict[int, float],
    parent_old: Dict[int, Optional[int]],
    u: int,
    v: int,
    w: float,
) -> Optional[SsspResult]:
    """Weight decrease / link up: distances can only shrink.

    Any newly-shorter path crosses the improved edge, so seeding a
    lazy-deletion Dijkstra with the two cross-edge candidates reaches the
    whole strictly-improved region and nothing else.
    """
    dist = dict(dist_old)
    parent = dict(parent_old)
    relaxed = 2  # the two seed examinations of the changed edge
    heap: List[Tuple[float, int, int]] = []
    for a, b in ((u, v), (v, u)):
        da = dist.get(a)
        if da is None:
            continue
        cand = da + w
        db = dist.get(b)
        if db is None or cand < db:
            heapq.heappush(heap, (cand, a, b))
    changed: Set[int] = set()
    while heap:
        d, via, x = heapq.heappop(heap)
        dx = dist.get(x)
        if dx is not None and dx <= d:
            continue  # lazy deletion: a better entry already settled x
        dist[x] = d
        parent[x] = via  # provisional; canonicalized below
        changed.add(x)
        nbrs = adj.get(x, {})
        relaxed += len(nbrs)
        for y, wy in nbrs.items():
            cand = d + wy
            dy = dist.get(y)
            if dy is None or cand < dy:
                heapq.heappush(heap, (cand, x, y))
    # Distances outside ``changed`` kept their value, but a parent can
    # still move where the predecessor *set* moved: next to an improved
    # node, or across the re-weighted edge itself (a new exact tie).
    recheck = set(changed)
    for x in changed:
        recheck.update(adj.get(x, {}))
    if u in dist:
        recheck.add(u)
    if v in dist:
        recheck.add(v)
    fixed = _fix_parents(adj, source, dist, parent, recheck)
    if fixed is None:  # pragma: no cover - inconsistent inputs
        return None
    spf.RELAX_COUNTER.count += relaxed + fixed
    return dist, parent


def _repair_increase(
    adjacency: Adjacency,
    source: int,
    dist_old: Dict[int, float],
    parent_old: Dict[int, Optional[int]],
    u: int,
    v: int,
) -> Optional[SsspResult]:
    """Weight increase / link down: only the canonical subtree can move.

    A node's distance grows only if *every* shortest path used the edge,
    which forces the edge to be the parent edge of ``u`` or ``v`` in the
    canonical tree.  Otherwise the predecessor relation -- hence every
    distance and every lowest-id parent -- is untouched and the old
    results are returned as-is.
    """
    if parent_old.get(v) == u:
        child = v
    elif parent_old.get(u) == v:
        child = u
    else:
        return dist_old, parent_old
    # Detach the canonical subtree below ``child``.
    children: Dict[int, List[int]] = {}
    for x, p in parent_old.items():
        if p is not None:
            children.setdefault(p, []).append(x)
    affected: Set[int] = {child}
    stack = [child]
    while stack:
        for c in children.get(stack.pop(), ()):
            if c not in affected:
                affected.add(c)
                stack.append(c)
    dist = {x: d for x, d in dist_old.items() if x not in affected}
    parent = {x: p for x, p in parent_old.items() if x not in affected}
    # Seed with the best re-attachment frontier: every edge from a kept
    # node into the subtree (including the stretched edge, at its new
    # weight, when it survived in ``adjacency``).
    relaxed = 0
    heap: List[Tuple[float, int, int]] = []
    for x in affected:
        nbrs = adjacency.get(x, {})
        relaxed += len(nbrs)
        for y, wy in nbrs.items():
            dy = dist.get(y)
            if dy is not None:
                heapq.heappush(heap, (dy + wy, y, x))
    while heap:
        d, via, x = heapq.heappop(heap)
        if x in dist:
            continue
        dist[x] = d
        parent[x] = via  # provisional; canonicalized below
        nbrs = adjacency.get(x, {})
        relaxed += len(nbrs)
        for y, wy in nbrs.items():
            if y in affected and y not in dist:
                heapq.heappush(heap, (d + wy, x, y))
    # Subtree nodes never popped are now unreachable and stay absent.
    # Parents outside the subtree cannot move (their predecessors kept
    # their distances and the only re-weighted edge leads into the
    # subtree), so canonicalizing the re-attached nodes suffices.
    recheck = {x for x in affected if x in dist}
    fixed = _fix_parents(adjacency, source, dist, parent, recheck)
    if fixed is None:  # pragma: no cover - inconsistent inputs
        return None
    spf.RELAX_COUNTER.count += relaxed + fixed
    return dist, parent


def _fix_parents(
    adjacency: Adjacency,
    source: int,
    dist: Dict[int, float],
    parent: Dict[int, Optional[int]],
    nodes: Set[int],
) -> Optional[int]:
    """Recompute canonical (lowest-id exact-predecessor) parents in place.

    Returns the number of edges examined, or ``None`` when a reachable
    node has no exact predecessor -- impossible for consistent inputs,
    and the signal for the caller to fall back to a full run.
    """
    relaxed = 0
    for x in nodes:
        if x == source or x not in dist:
            continue
        dx = dist[x]
        best: Optional[int] = None
        nbrs = adjacency.get(x, {})
        relaxed += len(nbrs)
        for y, wy in nbrs.items():
            dy = dist.get(y)
            if dy is not None and dy + wy == dx and (best is None or y < best):
                best = y
        if best is None:  # pragma: no cover - inconsistent inputs
            return None
        parent[x] = best
    return relaxed
