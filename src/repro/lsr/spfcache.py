"""LSDB-generation-keyed SPF result cache.

D-GMC's cost model charges *one* topology computation per event, yet the
substrate underneath used to re-run full Dijkstra from scratch on every
``shortest_path`` / ``routing_table`` / tree computation -- even when the
link-state image was unchanged.  Link-state routers avoid exactly that
cost by reusing SPF results until the next LSA invalidates them (see the
mDT line of work in PAPERS.md); this module gives the reproduction the
same property.

:class:`SpfCache` wraps an adjacency mapping ``{node: {neighbor: weight}}``
and *is itself* such a mapping, so it can flow unchanged through every
consumer of a network image (tree algorithms, routing tables, the
dataplane, the baselines).  On top of the mapping protocol it memoizes

* :meth:`sssp` -- the ``(dist, parent)`` pair of one full Dijkstra run,
* :meth:`routing_table` -- the OSPF next-hop table derived from it,
* :meth:`eccentricity` and :meth:`shortest_path` -- cheap derivations.

:mod:`repro.lsr.spf` duck-types on these methods: ``spf.dijkstra(adj, s)``
delegates to ``adj.sssp(s)`` whenever ``adj`` is a cache, so callers never
change.  Producers -- :class:`~repro.lsr.lsdb.LinkStateDatabase` and
:class:`~repro.topo.graph.Network` -- hand out cache-wrapped images and
replace them wholesale on invalidation (LSA install, link up/down), which
preserves snapshot semantics: a computation that captured the old image
keeps computing on the old image.

Memoized results are shared; callers must treat the returned ``dist`` /
``parent`` mappings as immutable (every in-tree consumer already does).
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.lsr import csr as _csr
from repro.lsr import ispf as _ispf
from repro.lsr.spf import (
    RELAX_COUNTER,
    dijkstra_csr,
    dijkstra_csr_many,
    dijkstra_uncached,
    first_hop_table,
)
from repro.obs.metrics import REGISTRY as _GLOBAL_REGISTRY

_enabled = True
_ispf_on = True

#: Longest chain of single-link repairs applied before giving up and
#: running full Dijkstra; also bounds how many superseded generations a
#: live cache can keep reachable.  One shared constant with the
#: producer-side pending-delta cap -- see
#: :data:`repro.lsr.ispf.MAX_REPAIR_CHAIN` for why they must agree.
_MAX_REPAIR_CHAIN = _ispf.MAX_REPAIR_CHAIN


def set_enabled(flag: bool) -> bool:
    """Globally enable/disable cache wrapping; returns the previous value.

    When disabled, image producers hand out plain dicts, so every SPF
    query pays a full Dijkstra -- the pre-cache behavior.  Used by
    ``benchmarks/regress.py`` to prove cached and uncached runs produce
    byte-identical topologies.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def enabled() -> bool:
    return _enabled


@contextmanager
def disabled():
    """Context manager: run a block with cache wrapping turned off."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


def set_ispf_enabled(flag: bool) -> bool:
    """Globally enable/disable incremental SPF repair; returns the previous
    value.  When disabled, every cache miss pays a full Dijkstra even if a
    single-link delta from the previous generation is known -- the
    pre-ISPF behavior.  ``benchmarks/regress.py --mode ispf`` flips this
    to prove repaired and recomputed trees are byte-identical.
    """
    global _ispf_on
    previous = _ispf_on
    _ispf_on = bool(flag)
    return previous


def ispf_enabled() -> bool:
    return _ispf_on


@contextmanager
def ispf_disabled():
    """Context manager: run a block with incremental SPF repair off."""
    previous = set_ispf_enabled(False)
    try:
        yield
    finally:
        set_ispf_enabled(previous)


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters, shared across cache generations.

    A producer keeps one ``CacheStats`` for the lifetime of the image
    source (an LSDB, a Network) and threads it through every cache
    instance it creates, so counters accumulate across invalidations.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    #: Full Dijkstra executions performed on behalf of this cache.
    full_runs: int = 0
    #: Misses answered by incremental repair instead of a full Dijkstra.
    ispf_repairs: int = 0
    #: Misses where repair history existed but ISPF still fell back to a
    #: full run (multi-link delta, broken chain, or source never solved).
    ispf_full_fallbacks: int = 0
    #: Edge relaxations spent on behalf of this cache (full runs and
    #: repairs alike).
    relaxations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits + other.hits,
            self.misses + other.misses,
            self.invalidations + other.invalidations,
            self.full_runs + other.full_runs,
            self.ispf_repairs + other.ispf_repairs,
            self.ispf_full_fallbacks + other.ispf_full_fallbacks,
            self.relaxations + other.relaxations,
        )

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits - other.hits,
            self.misses - other.misses,
            self.invalidations - other.invalidations,
            self.full_runs - other.full_runs,
            self.ispf_repairs - other.ispf_repairs,
            self.ispf_full_fallbacks - other.ispf_full_fallbacks,
            self.relaxations - other.relaxations,
        )

    def copy(self) -> "CacheStats":
        return CacheStats(
            self.hits,
            self.misses,
            self.invalidations,
            self.full_runs,
            self.ispf_repairs,
            self.ispf_full_fallbacks,
            self.relaxations,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "full_runs": self.full_runs,
            "ispf_repairs": self.ispf_repairs,
            "ispf_full_fallbacks": self.ispf_full_fallbacks,
            "relaxations": self.relaxations,
            "hit_rate": self.hit_rate,
        }


def combined_stats(parts: Iterable[Optional[CacheStats]]) -> CacheStats:
    """Sum a collection of stats objects, skipping absent (None) ones."""
    total = CacheStats()
    for part in parts:
        if part is not None:
            total = total + part
    return total


#: Process-wide cache counters, mirrored alongside every per-producer
#: :class:`CacheStats` so the global metrics registry can expose SPF
#: cache behavior without enumerating live caches.
GLOBAL_STATS = CacheStats()


def count_invalidation(stats: Optional[CacheStats]) -> None:
    """Record one image invalidation on ``stats`` and the global mirror."""
    if stats is not None:
        stats.invalidations += 1
    GLOBAL_STATS.invalidations += 1


@_GLOBAL_REGISTRY.register_collector
def _collect_cache_totals(reg) -> None:
    reg.counter(
        "spf_cache_hits_total", "process-wide SPF cache hits"
    ).set_total(GLOBAL_STATS.hits)
    reg.counter(
        "spf_cache_misses_total", "process-wide SPF cache misses"
    ).set_total(GLOBAL_STATS.misses)
    reg.counter(
        "spf_cache_invalidations_total",
        "process-wide SPF cache image invalidations",
    ).set_total(GLOBAL_STATS.invalidations)
    reg.counter(
        "spf_cache_full_runs_total",
        "process-wide full Dijkstra executions performed by caches",
    ).set_total(GLOBAL_STATS.full_runs)
    reg.counter(
        "spf_ispf_repairs_total",
        "process-wide cache misses answered by incremental SPF repair",
    ).set_total(GLOBAL_STATS.ispf_repairs)
    reg.counter(
        "spf_ispf_full_fallbacks_total",
        "process-wide cache misses that fell back to full Dijkstra despite "
        "repair history (multi-link delta or unsolved source)",
    ).set_total(GLOBAL_STATS.ispf_full_fallbacks)


class SpfCache(MappingABC):
    """An adjacency mapping with memoized SPF results.

    Instances are immutable snapshots of one network image: producers
    build a *new* cache (sharing the same :class:`CacheStats`) whenever
    the image changes, rather than mutating an existing one.
    """

    __slots__ = (
        "_adj",
        "stats",
        "generation",
        "_sssp",
        "_tables",
        "_dags",
        "_ecc",
        "_prev",
        "_delta",
        "_had_history",
        "_csr",
        "_csr_ready",
        "_trees",
    )

    def __init__(
        self,
        adj: Mapping[int, Mapping[int, float]],
        stats: Optional[CacheStats] = None,
        generation: int = 0,
        prev: Optional[object] = None,
        delta: Optional[Tuple[_ispf.LinkDelta, ...]] = None,
    ) -> None:
        self._adj = adj
        self.stats = stats if stats is not None else CacheStats()
        #: The producer's image version this snapshot was built from.
        self.generation = generation
        self._sssp: Dict[int, Tuple[Dict[int, float], Dict[int, Optional[int]]]] = {}
        self._tables: Dict[int, Dict[int, int]] = {}
        self._dags: Dict[int, Dict[int, tuple]] = {}
        self._ecc: Dict[int, float] = {}
        #: The superseded generation plus the ordered link deltas leading
        #: here, when the producer knows them -- the ISPF repair chain.  A
        #: ``prev`` without a usable ``delta`` only marks that history
        #: existed (for fallback accounting) and is not retained.
        usable = bool(delta) and isinstance(prev, SpfCache)
        self._prev: Optional[SpfCache] = prev if usable else None
        self._delta = delta if usable else None
        self._had_history = prev is not None
        #: Lazily compiled flat-array core (see :mod:`repro.lsr.csr`);
        #: ``_csr_ready`` distinguishes "not compiled yet" from "tried,
        #: unavailable".  Solved trees kept in array form for bulk
        #: consumers; their dict views materialize on first sssp() hit.
        self._csr: Optional[_csr.CsrGraph] = None
        self._csr_ready = False
        self._trees: Dict[int, _csr.CsrTree] = {}
        if self._prev is not None:
            self._trim_chain()

    def _trim_chain(self) -> None:
        """Cap the repair chain so superseded images can be collected."""
        depth = 1
        node = self._prev
        while node is not None and node._prev is not None:
            depth += 1
            if depth >= _MAX_REPAIR_CHAIN:
                node._prev = None
                node._delta = None
                return
            node = node._prev

    # -- mapping protocol (read-only view of the wrapped adjacency) --------

    def __getitem__(self, node: int) -> Mapping[int, float]:
        return self._adj[node]

    def __iter__(self) -> Iterator[int]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SpfCache):
            return dict(self._adj) == dict(other._adj)
        if isinstance(other, MappingABC):
            return dict(self._adj) == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:  # Mapping sets __hash__ = None otherwise
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SpfCache(nodes={len(self._adj)}, gen={self.generation}, "
            f"sssp={len(self._sssp)}, hit_rate={self.stats.hit_rate:.2f})"
        )

    # -- memoized SPF results ----------------------------------------------

    def sssp(
        self, source: int
    ) -> Tuple[Dict[int, float], Dict[int, Optional[int]]]:
        """Memoized single-source shortest paths (``spf.dijkstra``).

        On a miss, when this generation descends from a superseded one by
        a chain of known single-link deltas and that ancestor already
        solved ``source``, the old tree is *repaired* (see
        :mod:`repro.lsr.ispf`) instead of re-running full Dijkstra;
        otherwise -- and whenever ISPF is globally disabled -- the miss
        pays a full run, exactly as before.
        """
        entry = self._sssp.get(source)
        if entry is not None:
            self.stats.hits += 1
            GLOBAL_STATS.hits += 1
            return entry
        tree = self._trees.get(source)
        if tree is not None:
            # Solved (e.g. by prewarm) but never read as dicts: the
            # solve was already accounted, materializing is a hit.
            entry = tree.dicts()
            self._sssp[source] = entry
            self.stats.hits += 1
            GLOBAL_STATS.hits += 1
            return entry
        self.stats.misses += 1
        GLOBAL_STATS.misses += 1
        before = RELAX_COUNTER.count
        entry = self._repair_from_chain(source) if _ispf_on else None
        if entry is not None:
            self.stats.ispf_repairs += 1
            GLOBAL_STATS.ispf_repairs += 1
        else:
            if _ispf_on and self._had_history:
                self.stats.ispf_full_fallbacks += 1
                GLOBAL_STATS.ispf_full_fallbacks += 1
            self.stats.full_runs += 1
            GLOBAL_STATS.full_runs += 1
            entry = self._full_run(source)
        spent = RELAX_COUNTER.count - before
        self.stats.relaxations += spent
        GLOBAL_STATS.relaxations += spent
        self._sssp[source] = entry
        return entry

    def _full_run(
        self, source: int
    ) -> Tuple[Dict[int, float], Dict[int, Optional[int]]]:
        """One full SSSP: the CSR core when compiled, the dict core
        otherwise -- byte-identical output and identical counters."""
        graph = self.csr_graph()
        if graph is not None and source in graph.index_of:
            tree = dijkstra_csr(graph, source)
            self._trees[source] = tree
            return tree.dicts()
        return dijkstra_uncached(self._adj, source)

    def csr_graph(self) -> Optional[_csr.CsrGraph]:
        """The compiled flat-array core for this image, or ``None`` when
        no CSR backend is engaged (see :func:`repro.lsr.csr.default_backend`)
        or the image is below the :func:`repro.lsr.csr.min_nodes` floor
        (small images solve faster on dicts than they compile).

        Compiled lazily on the first full SSSP of a generation.  When
        the superseded generation already compiled and the producer
        tracked the link deltas leading here (the same chain incremental
        SPF replays), the new graph is a cloned-weights patch of the old
        one instead of an O(V+E) rebuild.
        """
        if not self._csr_ready:
            self._csr_ready = True
            backend = _csr.default_backend()
            if backend is not None and len(self._adj) >= _csr.min_nodes():
                graph = None
                prev = self._prev
                if prev is not None and prev._csr is not None and self._delta:
                    if prev._csr.backend == backend:
                        graph = prev._csr.patched(self._delta, self._adj)
                if graph is None:
                    graph = _csr.CsrGraph.from_adjacency(
                        self._adj, backend=backend
                    )
                self._csr = graph
        return self._csr

    def sssp_tree(self, source: int) -> Optional[_csr.CsrTree]:
        """The flat-array form of the memoized SSSP, when the CSR core
        solved it; ``None`` when the entry came from the dict core or an
        incremental repair (callers fall back to :meth:`sssp` dicts)."""
        tree = self._trees.get(source)
        if tree is None and source not in self._sssp:
            self.sssp(source)
            tree = self._trees.get(source)
        return tree

    def prewarm(self, sources) -> int:
        """Solve SSSP for every source not yet memoized; returns how many
        solves ran.  With the CSR core engaged and no repairable history,
        all misses go through **one** batched C solve, and the solved
        trees stay in array form -- their dict views materialize only
        when someone asks (counted as hits, like any memoized read).
        This is the bulk-ingest path for image rebuilds: the data plane
        re-warming tree roots, the bench, eccentricity sweeps.
        """
        pending = [
            s
            for s in sources
            if s not in self._sssp and s not in self._trees
        ]
        if not pending:
            return 0
        graph = self.csr_graph()
        repairable = _ispf_on and self._prev is not None
        if (
            graph is None
            or repairable
            or any(s not in graph.index_of for s in pending)
        ):
            for s in pending:
                self.sssp(s)
            return len(pending)
        before = RELAX_COUNTER.count
        trees = dijkstra_csr_many(graph, pending)
        spent = RELAX_COUNTER.count - before
        count = len(trees)
        self.stats.misses += count
        GLOBAL_STATS.misses += count
        if _ispf_on and self._had_history:
            self.stats.ispf_full_fallbacks += count
            GLOBAL_STATS.ispf_full_fallbacks += count
        self.stats.full_runs += count
        GLOBAL_STATS.full_runs += count
        self.stats.relaxations += spent
        GLOBAL_STATS.relaxations += spent
        for s, tree in zip(pending, trees):
            self._trees[s] = tree
        return count

    def _repair_from_chain(
        self, source: int
    ) -> Optional[Tuple[Dict[int, float], Dict[int, Optional[int]]]]:
        """Walk superseded generations for a solved tree and repair it
        forward through each intervening delta; None when impossible."""
        steps: list = []
        node = self
        while node._prev is not None and len(steps) < _MAX_REPAIR_CHAIN:
            steps.append((node._adj, node._delta))
            node = node._prev
            base = node._sssp.get(source)
            if base is None:
                tree = node._trees.get(source)
                if tree is None:
                    continue
                # A CSR-solved ancestor never read as dicts: materialize
                # its view so the repair chain can start from it.
                base = tree.dicts()
                node._sssp[source] = base
            dist, parent = base
            for adj_i, delta_i in reversed(steps):
                repaired = _ispf.repair_sssp_chain(
                    adj_i, source, dist, parent, delta_i
                )
                if repaired is None:  # pragma: no cover - inconsistent chain
                    return None
                dist, parent = repaired
            return dist, parent
        return None

    def routing_table(self, source: int) -> Dict[int, int]:
        """Memoized OSPF-style next-hop table from ``source``."""
        table = self._tables.get(source)
        if table is not None:
            self.stats.hits += 1
            GLOBAL_STATS.hits += 1
            return table
        dist, parent = self.sssp(source)
        table = first_hop_table(source, dist, parent)
        self._tables[source] = table
        return table

    def dag(self, source: int) -> Dict[int, tuple]:
        """Memoized per-destination next-hop DAG (``spf.next_hop_dag``).

        The per-neighbor SSSP solves the DAG derivation needs go through
        :meth:`sssp`, so on one image they are shared with every other
        consumer (routing tables, tree computations, other sources' DAGs).
        """
        dag = self._dags.get(source)
        if dag is not None:
            self.stats.hits += 1
            GLOBAL_STATS.hits += 1
            return dag
        from repro.lsr import spf as _spf

        dag = _spf.dag_body(self, source)
        self._dags[source] = dag
        return dag

    def eccentricity(self, node: int) -> float:
        """Memoized largest shortest-path distance from ``node``."""
        value = self._ecc.get(node)
        if value is not None:
            self.stats.hits += 1
            GLOBAL_STATS.hits += 1
            return value
        dist, _ = self.sssp(node)
        value = max(dist.values()) if dist else 0.0
        self._ecc[node] = value
        return value

    def shortest_path(self, source: int, target: int) -> Optional[list]:
        """Shortest node path, reconstructed from the memoized SSSP.

        Repeated ``(source, *)`` queries on one image solve the SSSP once
        -- previously every query paid a full Dijkstra.
        """
        dist, parent = self.sssp(source)
        if target not in dist:
            return None
        path = [target]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path


def wrap_image(
    adj: Dict[int, Dict[int, float]],
    stats: Optional[CacheStats] = None,
    generation: int = 0,
    prev: Optional[object] = None,
    delta: Optional[Tuple[_ispf.LinkDelta, ...]] = None,
):
    """Wrap a freshly built image in a cache, honoring the global switch.

    Producers that know *how* the image changed pass the superseded
    ``prev`` snapshot plus the ordered link ``delta`` sequence leading
    here, making the new generation repairable by incremental SPF.
    ``prev`` with ``delta=None`` records that history existed but the
    change was too large to track (fallback accounting only).
    """
    if not _enabled:
        return adj
    return SpfCache(adj, stats=stats, generation=generation, prev=prev, delta=delta)
