"""Flat-array CSR graph core: index-based SPF at n=10k.

The dict-of-dict adjacency that :mod:`repro.lsr.spf` computes on is
pleasant to produce (it *is* the LSDB image) but its per-node hash
lookups dominate SPF cost at large n.  This module compiles one network
image into compressed-sparse-row form -- a node-index remap plus three
flat arrays -- and solves single-source shortest paths on it:

* ``nodes`` / ``index_of`` -- the sorted node-id remap (monotone, so
  index order equals id order and tie-breaks survive the remap),
* ``indptr`` / ``indices`` / ``weights`` -- the CSR rows, neighbor
  indices sorted within each row,
* ``by_src`` / ``by_dst`` -- the same edge set sorted by (dst, src),
  which is what derives canonical parents without replaying a heap.

Two backends produce **byte-identical** results (gated by the
differential suite in ``tests/test_csr.py`` and by
``benchmarks/regress.py --mode csr``):

* ``"scipy"`` -- :func:`scipy.sparse.csgraph.dijkstra` computes the
  distance array in C.  Distances are bit-exact against the dict core
  by induction: both compute every candidate as the IEEE-754 sum
  ``dist[y] + w(y, x)`` over the *same* candidate set, and the minimum
  of a float set does not depend on evaluation order.  Canonical
  parents (``parent[x] = min{y : dist[y] + w(y, x) == dist[x]}`` --
  the :mod:`repro.lsr.ispf` invariant) then come from one vectorized
  pass over the (dst, src)-sorted edges, and the settle order is
  recovered by sorting on ``(dist, parent, node)``: every exact
  predecessor settles strictly earlier (weights are positive), so the
  dict core's heap order *is* that sort order.
* ``"python"`` -- an array-backed 4-ary heap over the CSR rows, for
  environments without scipy.  Same entries ``(dist, parent, node)``
  as the dict core's binary heap, so pop order and parents match by
  construction.  (Measured ~0.4x the dict core at n=1000 -- a 4-ary
  sift does more comparisons per level than C ``heapq`` -- so
  :class:`~repro.lsr.spfcache.SpfCache` only engages the CSR core when
  the scipy backend is available; the python backend keeps the array
  layer testable and usable everywhere.)

Solving yields a :class:`CsrTree` -- ``(dist, parent, settled)``
*arrays*; the dict views the rest of the tree (and every existing
caller) consumes are materialized lazily, so bulk consumers like
:meth:`SpfCache.prewarm` and the data plane pay only for the solve.

Single-link deltas (the :data:`repro.lsr.ispf.LinkDelta` sequences the
producers already track for incremental SPF) patch weights in place on
a cloned array via :meth:`CsrGraph.patched` -- no O(V+E) rebuild per
generation on churn.  Removed edges become ``inf`` slots, which both
backends treat as absent (and exclude from relaxation counts, keeping
:data:`repro.lsr.spf.RELAX_COUNTER` parity with the dict core).

See ``docs/graph-core.md`` for the layout and invalidation story.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:  # gated: the container may lack the scientific stack
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None  # type: ignore[assignment]

try:
    from scipy.sparse import csr_array as _scipy_csr_array
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_csr_array = None  # type: ignore[assignment]
    _scipy_dijkstra = None  # type: ignore[assignment]

from repro.lsr.spf import RELAX_COUNTER

Adjacency = Mapping[int, Mapping[int, float]]

_INF = float("inf")

#: Environment override for backend selection: ``scipy``, ``python`` or
#: ``off`` (disable CSR engagement entirely).
_BACKEND_ENV = "REPRO_CSR_BACKEND"

#: Environment override for the engagement size floor (see :func:`min_nodes`).
_MIN_NODES_ENV = "REPRO_CSR_MIN_NODES"

#: Below this image size the compile cost (O(V+E) python loop) outweighs
#: the per-solve win for the handful of sources a churn generation
#: actually solves; measured crossover is a few hundred nodes, so the
#: small-n simulator workloads stay on the dict core byte-for-byte AND
#: cycle-for-cycle.  ``REPRO_CSR_MIN_NODES`` overrides (tests set 0).
_DEFAULT_MIN_NODES = 256


def available() -> bool:
    """Whether the CSR core can be built at all (numpy present)."""
    return _np is not None


def scipy_available() -> bool:
    """Whether the C-speed scipy backend is present."""
    return _np is not None and _scipy_dijkstra is not None


def default_backend() -> Optional[str]:
    """The backend :class:`~repro.lsr.spfcache.SpfCache` should engage.

    ``None`` means "do not engage the CSR core" -- the dict path is
    faster than the pure-python backend, so without scipy the cache
    sticks to dicts.  ``REPRO_CSR_BACKEND`` forces a choice for tests
    and experiments.
    """
    forced = os.environ.get(_BACKEND_ENV)
    if forced == "off":
        return None
    if forced in ("scipy", "python"):
        want_scipy = forced == "scipy"
        if (scipy_available() if want_scipy else available()):
            return forced
        return None
    return "scipy" if scipy_available() else None


def min_nodes() -> int:
    """Smallest image size :class:`~repro.lsr.spfcache.SpfCache` compiles
    a CSR core for (smaller images solve faster on dicts than they
    compile)."""
    forced = os.environ.get(_MIN_NODES_ENV)
    if forced is not None:
        try:
            return int(forced)
        except ValueError:
            pass
    return _DEFAULT_MIN_NODES


class CsrTree:
    """One solved SSSP tree in flat-array form.

    ``dist`` (float64, ``inf`` for unreachable), ``parent`` (int32 node
    *indices*, ``-1`` for the source and unreachable nodes) and
    ``settled`` (int64 node indices in dict-core settle order) are
    shared, immutable views; :meth:`dicts` materializes -- once -- the
    ``(dist, parent)`` dict pair byte-identical to
    :func:`repro.lsr.spf.dijkstra_uncached`, including iteration order.
    """

    __slots__ = ("graph", "source", "dist", "parent", "settled", "_dicts")

    def __init__(self, graph: "CsrGraph", source: int, dist, parent, settled):
        self.graph = graph
        self.source = source
        self.dist = dist
        self.parent = parent
        self.settled = settled
        self._dicts: Optional[
            Tuple[Dict[int, float], Dict[int, Optional[int]]]
        ] = None

    def dicts(self) -> Tuple[Dict[int, float], Dict[int, Optional[int]]]:
        if self._dicts is None:
            nodes_arr = self.graph.nodes_arr
            settled = self.settled
            ids = nodes_arr[settled].tolist()
            dist_d: Dict[int, float] = dict(
                zip(ids, self.dist[settled].tolist())
            )
            parent_d: Dict[int, Optional[int]] = dict(
                zip(ids, nodes_arr[self.parent[settled]].tolist())
            )
            parent_d[self.source] = None
            self._dicts = (dist_d, parent_d)
        return self._dicts


class CsrGraph:
    """A compiled network image (see module docstring for the layout)."""

    __slots__ = (
        "nodes",
        "index_of",
        "n",
        "indptr",
        "indices",
        "weights",
        "eorder",
        "by_src",
        "by_dst",
        "nodes_arr",
        "degrees",
        "dead_out",
        "backend",
        "_container",
        "_py_rows",
        "_by_w",
    )

    def __init__(
        self,
        nodes: List[int],
        indptr,
        indices,
        weights,
        backend: str,
    ) -> None:
        self.nodes = nodes
        self.index_of = {u: i for i, u in enumerate(nodes)}
        self.n = len(nodes)
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        esrc = _np.repeat(
            _np.arange(self.n, dtype=_np.int32), _np.diff(indptr)
        )
        # Edges sorted by (dst, src): within each dst run the first
        # exact-predecessor hit is the lowest parent id -- canonical.
        self.eorder = _np.lexsort((esrc, indices))
        self.by_dst = indices[self.eorder]
        self.by_src = esrc[self.eorder]
        self.nodes_arr = _np.asarray(nodes, dtype=_np.int64)
        self.degrees = _np.diff(indptr).astype(_np.int64)
        #: Per-node count of dead (``inf``) out-slots from weight patches;
        #: live out-degree is ``degrees - dead_out`` -- the exact count the
        #: dict core would charge to RELAX_COUNTER for a settled node.
        self.dead_out = _np.zeros(self.n, dtype=_np.int64)
        self.backend = backend
        self._container = None
        self._py_rows: Optional[Tuple[list, list, list]] = None
        self._by_w = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_adjacency(
        cls, adj: Adjacency, backend: Optional[str] = None
    ) -> Optional["CsrGraph"]:
        """Compile ``adj`` (``{node: {neighbor: weight}}``), or ``None``
        when no backend is available."""
        if backend is None:
            backend = default_backend()
        if backend is None or _np is None:
            return None
        universe = set(adj)
        for row in adj.values():
            universe.update(row)
        nodes = sorted(universe)
        index_of = {u: i for i, u in enumerate(nodes)}
        indptr = _np.zeros(len(nodes) + 1, dtype=_np.int32)
        idx_chunks: List[list] = []
        w_chunks: List[list] = []
        total = 0
        for i, u in enumerate(nodes):
            row = adj.get(u)
            if row:
                items = sorted((index_of[v], w) for v, w in row.items())
                total += len(items)
                idx_chunks.append([p for p, _ in items])
                w_chunks.append([w for _, w in items])
            indptr[i + 1] = total
        if idx_chunks:
            indices = _np.concatenate(
                [_np.asarray(c, dtype=_np.int32) for c in idx_chunks]
            )
            weights = _np.concatenate(
                [_np.asarray(c, dtype=_np.float64) for c in w_chunks]
            )
        else:
            indices = _np.zeros(0, dtype=_np.int32)
            weights = _np.zeros(0, dtype=_np.float64)
        return cls(nodes, indptr, indices, weights, backend)

    def patched(
        self,
        deltas: Sequence[Tuple[int, int, Optional[float], Optional[float]]],
        new_adj: Adjacency,
    ) -> Optional["CsrGraph"]:
        """A clone of this graph with ``deltas`` applied as in-place
        weight patches, or ``None`` when a patch cannot express the
        change (new node or new edge -> rebuild from ``new_adj``).

        ``new_adj`` is the authoritative post-delta image: patched slot
        values are read from it, so a patched graph always equals
        ``from_adjacency(new_adj)``.  Absent edges become ``inf`` slots.
        """
        if len(new_adj) != len(self.nodes):
            return None
        resolved: List[Tuple[int, int, float]] = []  # (slot, src index, weight)
        for u, v, _old_w, _new_w in deltas:
            for a, b in ((u, v), (v, u)):
                slot = self._slot(a, b)
                if slot is None:
                    return None  # edge not representable in this layout
                row = new_adj.get(a)
                w = row.get(b) if row is not None else None
                resolved.append(
                    (slot, self.index_of[a], _INF if w is None else w)
                )
        weights = self.weights.copy()
        dead_out = self.dead_out.copy()
        clone = CsrGraph.__new__(CsrGraph)
        clone.nodes = self.nodes
        clone.index_of = self.index_of
        clone.n = self.n
        clone.indptr = self.indptr
        clone.indices = self.indices
        clone.weights = weights
        clone.eorder = self.eorder
        clone.by_src = self.by_src
        clone.by_dst = self.by_dst
        clone.nodes_arr = self.nodes_arr
        clone.degrees = self.degrees
        clone.dead_out = dead_out
        clone.backend = self.backend
        clone._container = None
        clone._py_rows = None
        clone._by_w = None
        for slot, src, w in resolved:
            old = weights[slot]
            if (old == _INF) != (w == _INF):
                dead_out[src] += 1 if w == _INF else -1
            weights[slot] = w
        return clone

    def _slot(self, u: int, v: int) -> Optional[int]:
        """Flat index of the ``u -> v`` slot, or ``None`` if absent."""
        ui = self.index_of.get(u)
        vi = self.index_of.get(v)
        if ui is None or vi is None:
            return None
        lo = int(self.indptr[ui])
        hi = int(self.indptr[ui + 1])
        pos = lo + int(_np.searchsorted(self.indices[lo:hi], vi))
        if pos < hi and self.indices[pos] == vi:
            return pos
        return None

    def weight_of(self, u: int, v: int) -> Optional[float]:
        """The ``u -> v`` edge weight, ``None`` when absent (or dead)."""
        slot = self._slot(u, v)
        if slot is None:
            return None
        w = float(self.weights[slot])
        return None if w == _INF else w

    # -- solving -----------------------------------------------------------

    def _scipy_graph(self):
        if self._container is None:
            self._container = _scipy_csr_array(
                (self.weights, self.indices, self.indptr), shape=(self.n, self.n)
            )
        return self._container

    def tree(self, source: int, count: bool = True) -> CsrTree:
        """Solve one source into a :class:`CsrTree`.

        ``count=True`` charges the settled nodes' live out-degrees to
        :data:`repro.lsr.spf.RELAX_COUNTER` -- exactly the relaxations
        the dict core would record, keeping counter baselines stable.
        """
        src = self.index_of[source]
        if self.backend == "scipy":
            dist = _scipy_dijkstra(
                self._scipy_graph(),
                directed=True,
                indices=src,
                return_predecessors=False,
            )
            parent, settled = self._derive(src, dist)
        else:
            dist, parent, settled = self._solve_python(src, self.weights)
        if count:
            live = self.degrees[settled] - self.dead_out[settled]
            RELAX_COUNTER.count += int(live.sum())
        return CsrTree(self, source, dist, parent, settled)

    def trees(self, sources: Sequence[int], count: bool = True) -> List[CsrTree]:
        """Batched :meth:`tree`: one C solve for all sources at once."""
        if not sources:
            return []
        if self.backend != "scipy":
            return [self.tree(s, count=count) for s in sources]
        srcs = [self.index_of[s] for s in sources]
        dmat = _scipy_dijkstra(
            self._scipy_graph(),
            directed=True,
            indices=srcs,
            return_predecessors=False,
        )
        out = []
        for k, src in enumerate(srcs):
            dist = dmat[k]
            parent, settled = self._derive(src, dist)
            if count:
                live = self.degrees[settled] - self.dead_out[settled]
                RELAX_COUNTER.count += int(live.sum())
            out.append(CsrTree(self, sources[k], dist, parent, settled))
        return out

    def _derive(self, src: int, dist, weights=None):
        """Canonical parents + settle order from a solved distance row."""
        n = self.n
        if weights is None:
            # A graph's weight array is immutable (patches clone), so the
            # (dst, src)-ordered gather is shared across every solve.
            if self._by_w is None:
                self._by_w = self.weights[self.eorder]
            by_w = self._by_w
        else:
            by_w = weights[self.eorder]
        cand = dist[self.by_src] + by_w
        # inf == inf would pair unreachable nodes with unreachable (or
        # dead-slot) "predecessors"; exact finite sums only.
        mask = cand == dist[self.by_dst]
        mask &= _np.isfinite(cand)
        connected = bool(_np.isfinite(dist).all())
        mdst = self.by_dst[mask]
        msrc = self.by_src[mask]
        parent = _np.full(n, -1, dtype=_np.int32)
        if mdst.size:
            first = _np.empty(mdst.size, dtype=bool)
            first[0] = True
            _np.not_equal(mdst[1:], mdst[:-1], out=first[1:])
            parent[mdst[first]] = msrc[first]
        parent[src] = -1
        if connected:
            rid = _np.arange(n, dtype=_np.int64)
            prid = parent
            dr = dist
        else:
            rid = _np.flatnonzero(_np.isfinite(dist))
            prid = parent[rid]
            dr = dist[rid]
        # Settle order == sort by (dist, parent, node).  Ties in dist are
        # rare with float weights: try the single-key sort first and only
        # fall back to the packed (parent, node) tie-break when needed.
        perm = _np.argsort(dr, kind="stable")
        if (dr[perm][1:] == dr[perm][:-1]).any():
            packed = (prid.astype(_np.int64) + 1) * n + rid
            perm = _np.lexsort((packed, dr))
        settled = rid[perm]
        return parent, settled

    def _rows(self) -> Tuple[list, list, list]:
        """Python-list mirror of the CSR rows for the python backend."""
        if self._py_rows is None:
            self._py_rows = (
                self.indptr.tolist(),
                self.indices.tolist(),
                self.weights.tolist(),
            )
        return self._py_rows

    def _solve_python(self, src: int, weights_arr):
        """Array-backed 4-ary heap Dijkstra over the CSR rows.

        Entries order by ``(dist, parent, node)`` exactly like the dict
        core's heap tuples, packed as ``(key, (parent+1)*n + node)``, so
        pop order and recorded parents match by construction.
        """
        indptr, indices, _ = self._rows()
        weights = (
            self._rows()[2]
            if weights_arr is self.weights
            else weights_arr.tolist()
        )
        n = self.n
        dist = [_INF] * n
        parent = [-1] * n
        settled: List[int] = []
        hk: List[float] = [0.0]  # heap keys (distance)
        hv: List[int] = [src]  # heap payloads ((parent+1)*n + node)
        size = 1
        while size:
            d = hk[0]
            packed = hv[0]
            size -= 1
            lk = hk[size]
            lv = hv[size]
            del hk[size], hv[size]
            if size:
                pos = 0
                while True:
                    child = (pos << 2) + 1
                    if child >= size:
                        break
                    end = min(child + 4, size)
                    best = child
                    bk = hk[child]
                    bv = hv[child]
                    for c in range(child + 1, end):
                        ck = hk[c]
                        if ck < bk or (ck == bk and hv[c] < bv):
                            best = c
                            bk = ck
                            bv = hv[c]
                    if bk < lk or (bk == lk and bv < lv):
                        hk[pos] = bk
                        hv[pos] = bv
                        pos = best
                    else:
                        break
                hk[pos] = lk
                hv[pos] = lv
            x = packed % n
            if dist[x] != _INF:
                continue
            dist[x] = d
            parent[x] = packed // n - 1
            settled.append(x)
            base = (x + 1) * n
            for i in range(indptr[x], indptr[x + 1]):
                w = weights[i]
                if w == _INF:
                    continue  # dead (patched-out) slot
                y = indices[i]
                if dist[y] == _INF:
                    nd = d + w
                    nv = base + y
                    hk.append(nd)
                    hv.append(nv)
                    pos = size
                    size += 1
                    while pos:
                        par = (pos - 1) >> 2
                        pk = hk[par]
                        if nd < pk or (nd == pk and nv < hv[par]):
                            hk[pos] = pk
                            hv[pos] = hv[par]
                            pos = par
                        else:
                            break
                    hk[pos] = nd
                    hv[pos] = nv
        parent_arr = _np.asarray(parent, dtype=_np.int32)
        parent_arr[src] = -1
        return (
            _np.asarray(dist, dtype=_np.float64),
            parent_arr,
            _np.asarray(settled, dtype=_np.int64),
        )

    def masked_path(
        self, source: int, target: int, banned: Tuple[int, int]
    ) -> Optional[List[int]]:
        """Shortest ``source -> target`` node path avoiding the ``banned``
        edge; ``None`` when unreachable.  Counter-free (FRR contract:
        backup computations must not perturb SPF counter baselines), and
        byte-identical to :func:`repro.frr.backup._masked_shortest_path`:
        that walk records the canonical lowest-id parent for every node
        it settles, so reconstructing through canonical parents yields
        the same node list.
        """
        if source == target:
            return [source]
        src = self.index_of.get(source)
        tgt = self.index_of.get(target)
        if src is None or tgt is None:
            return None
        weights = self.weights
        bu, bv = banned
        s1 = self._slot(bu, bv)
        s2 = self._slot(bv, bu)
        if s1 is not None or s2 is not None:
            weights = weights.copy()
            if s1 is not None:
                weights[s1] = _INF
            if s2 is not None:
                weights[s2] = _INF
        if self.backend == "scipy":
            if weights is self.weights:
                g = self._scipy_graph()
            else:
                g = _scipy_csr_array(
                    (weights, self.indices, self.indptr), shape=(self.n, self.n)
                )
            dist = _scipy_dijkstra(
                g, directed=True, indices=src, return_predecessors=False
            )
            if not _np.isfinite(dist[tgt]):
                return None
            parent, _ = self._derive(src, dist, weights=weights)
        else:
            dist, parent, _ = self._solve_python(src, weights)
            if dist[tgt] == _INF:
                return None
        path = []
        x = tgt
        while x != -1:
            path.append(self.nodes[x])
            x = int(parent[x])
        path.reverse()
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CsrGraph(n={self.n}, edges={len(self.indices)}, "
            f"backend={self.backend!r})"
        )
