"""Unicast (non-MC) link-state advertisement formats.

The paper's non-MC LSA is the tuple ``(S, F, D)`` where ``S`` is the source
switch, ``F = ~mc`` marks it as a unicast LSA, and ``D`` "encodes a
description of the event" in a format "defined by the underlying unicast
LSR protocol".  Here ``D`` is a :class:`RouterLsa`: the advertising
switch's current incident-link list, with an OSPF-style sequence number so
stale advertisements are recognized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.obs.context import TraceContext


@dataclass(frozen=True)
class RouterLsa:
    """A switch's advertisement of its own incident links.

    ``links`` maps neighbor id to ``(delay, up)``.  ``seqnum`` increases
    monotonically per origin; a database replaces an entry only with a
    strictly newer one.
    """

    origin: int
    seqnum: int
    links: Tuple[Tuple[int, float, bool], ...]  # (neighbor, delay, up)

    def link_map(self) -> Dict[int, Tuple[float, bool]]:
        """``{neighbor: (delay, up)}`` view of :attr:`links`."""
        return {nbr: (delay, up) for nbr, delay, up in self.links}

    def is_newer_than(self, other: "RouterLsa") -> bool:
        if other.origin != self.origin:
            raise ValueError("comparing LSAs from different origins")
        return self.seqnum > other.seqnum


@dataclass(frozen=True)
class NonMcLsa:
    """The paper's non-MC LSA tuple ``(S, F=~mc, D)``.

    ``F`` is implicit in the Python type; ``description`` is the
    :class:`RouterLsa` payload.
    """

    source: int
    description: RouterLsa
    #: Causal trace context (observability only -- never protocol input;
    #: excluded from equality so traced and untraced LSAs compare equal).
    ctx: Optional[TraceContext] = field(default=None, compare=False, repr=False)

    @property
    def is_mc(self) -> bool:
        """The F flag: always False for non-MC LSAs."""
        return False
