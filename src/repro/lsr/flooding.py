"""The simulated flooding fabric.

Flooding in a link-state network is hop-by-hop: a switch that originates or
first receives an LSA forwards it on every other incident up link, and
duplicates are dropped.  The net effect is that a copy reaches every
reachable switch along a *fastest* path.  The fabric simulates exactly that
effect: at flood time it computes, per destination, the earliest arrival
time over the current up-link topology, and schedules one delivery there.

Two timing models are supported, matching the paper's experiments:

* ``per_hop_delay`` set: every hop costs the same fixed time (the paper's
  "per-hop LSA transmission time"); arrival time is ``hops * per_hop_delay``.
* ``per_hop_delay`` unset: each hop costs the link's propagation delay;
  arrival time is the Dijkstra delay distance.

The fabric also keeps the flood counters ("flooding operations per event")
that the evaluation section reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.lsr import spf
from repro.net.transport import KernelTransport, Transport
from repro.obs import tracer as obs_tracer
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.sim.kernel import Simulator
from repro.topo.graph import Network

#: Signature of a switch-side delivery hook: (switch_id, payload).
DeliverFn = Callable[[int, Any], None]


@dataclass
class FloodDelivery:
    """Record of one flooding operation (for tests and tracing)."""

    origin: int
    kind: str
    start_time: float
    payload: Any
    #: switch -> scheduled arrival time
    arrivals: Dict[int, float] = field(default_factory=dict)


class FloodingFabric:
    """Delivers flooded payloads to every reachable switch.

    ``register`` installs each switch's delivery hook; ``flood`` performs
    one flooding operation.  The origin switch does *not* receive its own
    flood (it already acted on the local event), matching the D-GMC
    algorithms in which the flooding switch updates its state before
    flooding.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        per_hop_delay: Optional[float] = None,
        record_history: bool = False,
        transport: Optional[Transport] = None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.per_hop_delay = per_hop_delay
        self.record_history = record_history
        #: Delivery backend; the default schedules handler callbacks on the
        #: simulation kernel (the fabric's historical in-kernel path).
        self.transport: Transport = transport or KernelTransport(sim)
        #: Total flooding operations initiated, by kind.
        self.flood_counts: Dict[str, int] = {}
        #: Total individual LSA deliveries (diagnostic).
        self.delivery_count = 0
        self.history: list[FloodDelivery] = []
        #: Per-origin BFS hop counts, valid for one topology version
        #: (fixed per-hop timing floods one BFS per event otherwise).
        #: Single-link topology deltas *repair* the cached layers in place
        #: (unit-weight incremental SPF); wider gaps still discard.
        self._hops_cache: Dict[int, Dict[int, int]] = {}
        self._hops_version = -1
        #: Hop-cache maintenance counters (diagnostics / tests).
        self.hops_repairs = 0
        self.hops_drops = 0
        self.hops_invalidations = 0
        #: Optional per-flood histograms, created by :meth:`bind_metrics`.
        self._fanout_hist: Optional[Histogram] = None
        self._hops_hist: Optional[Histogram] = None

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Observe per-flood distributions into ``registry``.

        Fan-out (deliveries per flooding operation) is always recorded;
        per-delivery hop counts only under fixed per-hop timing, where
        they are known without extra SPF work.
        """
        self._fanout_hist = registry.histogram(
            "flood_fanout",
            "deliveries scheduled per flooding operation",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        )
        if self.per_hop_delay is not None:
            self._hops_hist = registry.histogram(
                "flood_hops",
                "hop count of each scheduled LSA delivery",
                buckets=(1, 2, 3, 4, 6, 8, 12, 16),
            )

    def register(self, switch_id: int, deliver: DeliverFn) -> None:
        """Install the delivery hook for ``switch_id`` (one per switch)."""
        self.transport.register(switch_id, deliver)

    @property
    def total_floods(self) -> int:
        return sum(self.flood_counts.values())

    def count_for(self, kind: str) -> int:
        return self.flood_counts.get(kind, 0)

    def arrival_times(self, origin: int) -> Dict[int, float]:
        """Earliest arrival time at each reachable switch for a flood now.

        Evaluated against the network's *current* up-link topology.
        """
        if self.per_hop_delay is not None:
            if self._hops_version != self.net.version:
                deltas = self.net.up_delta_since(self._hops_version)
                if deltas is None:
                    if self._hops_cache:
                        self._hops_cache.clear()
                        self.hops_invalidations += 1
                else:
                    for delta in deltas:
                        self._repair_hops(delta)
                self._hops_version = self.net.version
            hops = self._hops_cache.get(origin)
            if hops is None:
                hops = self.net.hop_distances(origin)
                self._hops_cache[origin] = hops
            return {x: h * self.per_hop_delay for x, h in hops.items()}
        dist, _ = spf.dijkstra(self.net.spf_view(), origin)
        return dist

    def _repair_hops(self, delta) -> None:
        """Repair every cached BFS layer map for one up-link delta.

        The hop metric is unit-weight, so incremental SPF degenerates to
        two rules: a *new* link can only improve levels, fixed by a BFS
        seeded from the nearer endpoint; a *vanished* link leaves an
        origin's layers intact whenever it connected equal levels or the
        farther endpoint keeps another neighbor one level up.  Only the
        (rare) remaining case discards that origin's entry for lazy
        recomputation.
        """
        u, v, old_w, new_w = delta
        if (old_w is None) == (new_w is None):
            return  # presence unchanged: hop counts cannot move
        if new_w is not None:
            for hops in self._hops_cache.values():
                hu = hops.get(u)
                hv = hops.get(v)
                if hu is None and hv is None:
                    continue
                if hu is not None and hv is not None and abs(hu - hv) <= 1:
                    continue
                seeds = []
                if hu is not None and (hv is None or hv > hu + 1):
                    seeds.append((v, hu + 1))
                if hv is not None and (hu is None or hu > hv + 1):
                    seeds.append((u, hv + 1))
                self._improve_hops(hops, seeds)
                self.hops_repairs += 1
            return
        for origin in list(self._hops_cache):
            hops = self._hops_cache[origin]
            hu = hops.get(u)
            hv = hops.get(v)
            if hu is None or hv is None or hu == hv:
                continue
            far, far_level = (v, hv) if hv > hu else (u, hu)
            if any(
                hops.get(y) == far_level - 1 for y in self.net.neighbors(far)
            ):
                self.hops_repairs += 1  # alternate support: layers still exact
                continue
            del self._hops_cache[origin]
            self.hops_drops += 1

    def _improve_hops(self, hops: Dict[int, int], seeds) -> None:
        """Relax-only BFS: apply seed labels and propagate improvements."""
        frontier = deque()
        for node, level in seeds:
            cur = hops.get(node)
            if cur is None or level < cur:
                hops[node] = level
                frontier.append(node)
        while frontier:
            x = frontier.popleft()
            nxt = hops[x] + 1
            for y in self.net.neighbors(x):
                cur = hops.get(y)
                if cur is None or nxt < cur:
                    hops[y] = nxt
                    frontier.append(y)

    def flood(self, origin: int, payload: Any, kind: str = "lsa") -> FloodDelivery:
        """Perform one flooding operation from ``origin``.

        Schedules one delivery per reachable switch (excluding the origin)
        at its earliest arrival time, and bumps the per-kind flood counter.
        Returns the :class:`FloodDelivery` record.
        """
        tracer = obs_tracer.TRACER
        if not tracer.enabled:
            return self._flood(origin, payload, kind)
        with tracer.span(
            "flood", cat="flood", tid=origin, sim_time=self.sim.now, kind=kind
        ) as span:
            record = self._flood(origin, payload, kind)
            span.args["fanout"] = len(record.arrivals)
            return record

    def _flood(self, origin: int, payload: Any, kind: str) -> FloodDelivery:
        self.flood_counts[kind] = self.flood_counts.get(kind, 0) + 1
        record = FloodDelivery(origin, kind, self.sim.now, payload)
        for switch, delay in sorted(self.arrival_times(origin).items()):
            if switch == origin:
                continue
            if not self.transport.has_handler(switch):
                continue
            record.arrivals[switch] = self.sim.now + delay
            self.delivery_count += 1
            if self._hops_hist is not None:
                self._hops_hist.observe(round(delay / self.per_hop_delay))
            self.transport.send(origin, switch, payload, delay)
        if self._fanout_hist is not None:
            self._fanout_hist.observe(len(record.arrivals))
        if self.record_history:
            self.history.append(record)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FloodingFabric(floods={self.total_floods}, "
            f"hooks={self.transport.handler_count})"
        )
