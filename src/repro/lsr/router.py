"""The unicast router entity at each switch.

One :class:`UnicastRouter` runs per switch.  It originates router LSAs
describing its incident links (at startup and whenever an incident link
changes state), floods them as non-MC LSAs, installs received LSAs into its
link-state database, and keeps an OSPF-style next-hop routing table.

The D-GMC switch composes with this entity: the unicast layer discovers
"much of the network status information needed by the MC protocol" (link
delays, reachability), and its network image is what MC topology
computations run on.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.lsr.flooding import FloodingFabric
from repro.lsr.lsa import NonMcLsa, RouterLsa
from repro.lsr.lsdb import LinkStateDatabase
from repro.lsr import spf
from repro.topo.graph import Network


class UnicastRouter:
    """Per-switch unicast LSR state machine."""

    def __init__(
        self,
        switch_id: int,
        net: Network,
        fabric: FloodingFabric,
        on_image_change: Optional[Callable[[], None]] = None,
    ) -> None:
        self.switch_id = switch_id
        self.net = net
        self.fabric = fabric
        self.lsdb = LinkStateDatabase(net.n)
        self._seqnum = 0
        self._routing_table: Optional[Dict[int, int]] = None
        #: Hook invoked whenever the network image changes (used by D-GMC
        #: to notice link/nodal events learned via the unicast layer).
        self.on_image_change = on_image_change

    # -- origination ---------------------------------------------------------

    def _build_own_lsa(self) -> RouterLsa:
        links = tuple(
            (link.other(self.switch_id), link.delay, link.up)
            for link in sorted(
                (
                    self.net.link(self.switch_id, nbr)
                    for nbr in self.net.neighbors(self.switch_id, include_down=True)
                ),
                key=lambda lk: lk.key,
            )
        )
        self._seqnum += 1
        return RouterLsa(self.switch_id, self._seqnum, links)

    def originate(self, flood: bool = True) -> RouterLsa:
        """Build, self-install, and (optionally) flood this switch's LSA."""
        lsa = self._build_own_lsa()
        self.lsdb.install(lsa)
        self._routing_table = None
        if flood:
            self.fabric.flood(self.switch_id, NonMcLsa(self.switch_id, lsa), kind="non-mc")
        return lsa

    def notify_incident_link_event(self) -> RouterLsa:
        """React to a local link up/down: re-originate and flood.

        This is the "exactly one non-MC LSA" per link event of Figure 2.
        """
        lsa = self.originate(flood=True)
        if self.on_image_change is not None:
            self.on_image_change()
        return lsa

    @property
    def seqnum(self) -> int:
        """The last sequence number this router originated."""
        return self._seqnum

    def ensure_seqnum_above(self, seq: int) -> None:
        """Raise the origination counter past ``seq`` (crash recovery).

        OSPF's self-originated-LSA rule: when a restarted router hears a
        pre-crash LSA of its own with a sequence number at or above its
        counter, it must jump past it before re-originating, or peers will
        discard the fresh LSA as stale.
        """
        self._seqnum = max(self._seqnum, seq)

    # -- reception -------------------------------------------------------------

    def receive(self, lsa: NonMcLsa) -> bool:
        """Install a flooded non-MC LSA; returns True if it was news.

        A content-identical refresh (newer seqnum, same links) leaves the
        network image -- and with it the locally memoized routing table --
        intact; the image-change hook still fires for any accepted
        install, preserving the MC layer's triggering behavior.
        """
        changed = self.lsdb.install(lsa.description)
        if changed:
            if self.lsdb.last_install_changed_image:
                self._routing_table = None
            if self.on_image_change is not None:
                self.on_image_change()
        return changed

    # -- derived state -----------------------------------------------------------

    def network_image(self):
        """The complete local image of the network (adjacency with delays).

        An SPF-memoizing snapshot; LSA installs replace it wholesale, so
        holders of an old reference keep a consistent old image.
        """
        return self.lsdb.adjacency()

    def routing_table(self) -> Dict[int, int]:
        """Next-hop table from this switch (computed lazily, cached).

        With a cache-wrapped image the table is memoized per image
        generation in the LSDB's SPF cache; the local memo only serves
        plain (cache-disabled) images.
        """
        image = self.network_image()
        cached = getattr(image, "routing_table", None)
        if cached is not None:
            return cached(self.switch_id)
        if self._routing_table is None:
            self._routing_table = spf.routing_table(image, self.switch_id)
        return self._routing_table

    def next_hop(self, dest: int) -> Optional[int]:
        return self.routing_table().get(dest)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UnicastRouter(switch={self.switch_id})"


def bring_up_unicast(
    net: Network,
    fabric: FloodingFabric,
    deliver_via_fabric: bool = False,
) -> Dict[int, UnicastRouter]:
    """Create one router per switch with fully synchronized databases.

    For experiments that start from a converged unicast layer (the paper's
    setting: membership events arrive on a stable network), the routers'
    databases are populated directly rather than simulating the initial
    flood storm.  Set ``deliver_via_fabric`` to instead flood the initial
    LSAs through the fabric (requires hooks registered by the caller).
    """
    routers = {x: UnicastRouter(x, net, fabric) for x in net.switches()}
    lsas = {x: routers[x].originate(flood=deliver_via_fabric) for x in net.switches()}
    if not deliver_via_fabric:
        for x, router in routers.items():
            for origin, lsa in lsas.items():
                if origin != x:
                    router.lsdb.install(lsa)
    return routers
